//! Golden test: the seed-42 fleet is byte-identical across runs, thread
//! counts, and — via the committed fixture — across commits. Any change to
//! the generator's draw sequence shows up here as a diff, which is the
//! point: synthetic Green500 results must be reproducible from `(seed,
//! config)` alone.
//!
//! Regenerate the fixture after an *intentional* generator change with
//! `TGI_REGEN_GOLDEN=1 cargo test -p cluster-sim --test golden_fleet`.

use cluster_sim::FleetConfig;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fleet_seed42.json");

fn render(specs: &[cluster_sim::ClusterSpec]) -> String {
    let mut out = String::new();
    for spec in specs {
        out.push_str(&serde_json::to_string(spec).expect("spec serializes"));
        out.push('\n');
    }
    out
}

#[test]
fn seed_42_fleet_matches_committed_golden_bytes() {
    let cfg = FleetConfig::new(42).systems(8);
    let rendered = render(&cfg.generate());
    if std::env::var("TGI_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden fixture");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden fixture committed");
    assert_eq!(rendered, golden, "seed-42 fleet drifted from the committed fixture");
}

#[test]
fn seed_42_fleet_is_byte_identical_across_runs_and_thread_counts() {
    let cfg = FleetConfig::new(42).systems(8);
    let sequential = render(&cfg.generate());
    // A second run and parallel generation (whatever TGI_NUM_THREADS says —
    // CI runs this under a {1,4}-thread matrix) must produce the same bytes.
    assert_eq!(sequential, render(&cfg.generate()));
    assert_eq!(sequential, render(&cfg.generate_par()));
    // And under explicit pools of several sizes.
    for threads in [1, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let par = pool.install(|| render(&cfg.generate_par()));
        assert_eq!(sequential, par, "thread count {threads} changed the fleet bytes");
    }
}
