//! Workload descriptors: a fixed amount of work per benchmark.
//!
//! The paper's sweeps vary the *core count* while each benchmark does a
//! fixed job (solve one system of order N, stream a fixed volume, write a
//! fixed volume), so execution time shrinks as performance grows. The §III
//! derivations (Eqs. 13–15) assume exactly this "given the performance …
//! for a given amount of work" framing.

use serde::{Deserialize, Serialize};

/// A benchmark workload with a fixed amount of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// HPL: solve a dense system of order `n`.
    Hpl {
        /// Problem order N.
        n: usize,
    },
    /// STREAM: move `total_bytes` of memory traffic (all kernels combined).
    Stream {
        /// Total bytes of traffic to generate.
        total_bytes: f64,
    },
    /// IOzone write test: each client writes its share of `total_bytes` to
    /// the shared filesystem.
    Iozone {
        /// Total bytes written across all clients.
        total_bytes: f64,
    },
}

impl Workload {
    /// The benchmark id this workload corresponds to (matching the suite and
    /// reference-system keys).
    pub fn benchmark_id(&self) -> &'static str {
        match self {
            Workload::Hpl { .. } => "hpl",
            Workload::Stream { .. } => "stream",
            Workload::Iozone { .. } => "iozone",
        }
    }

    /// Total FLOPs for HPL workloads (`2/3·N³ + 2·N²`), 0 otherwise.
    pub fn flops(&self) -> f64 {
        match self {
            Workload::Hpl { n } => {
                let n = *n as f64;
                (2.0 / 3.0) * n * n * n + 2.0 * n * n
            }
            _ => 0.0,
        }
    }

    /// The standard Fire-sweep workload set: sized so the three benchmarks
    /// have comparable (minutes-scale) runtimes at full cluster utilization,
    /// as in the paper's evaluation runs.
    pub fn fire_suite() -> Vec<Workload> {
        vec![
            // N = 57344 ⇒ ~1.26e14 FLOPs ⇒ ~23 min at 90 GFLOPS.
            Workload::Hpl { n: 57_344 },
            // 126 TB of traffic ⇒ ~12–20 min at 100–170 GB/s aggregate.
            Workload::Stream { total_bytes: 1.2613e14 },
            // ~43 GB written ⇒ ~2–11 min at 65–375 MB/s aggregate.
            Workload::Iozone { total_bytes: 4.278e10 },
        ]
    }

    /// The SystemG reference workload set (larger machine, larger jobs).
    pub fn system_g_suite() -> Vec<Workload> {
        vec![
            // N = 131072 ⇒ ~1.5e15 FLOPs ⇒ ~3 min at 8.1 TFLOPS.
            Workload::Hpl { n: 131_072 },
            // 300 TB of traffic across 128 nodes.
            Workload::Stream { total_bytes: 3.0e14 },
            // 300 GB written against the shared filesystem.
            Workload::Iozone { total_bytes: 3.0e11 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_match_suite_keys() {
        assert_eq!(Workload::Hpl { n: 10 }.benchmark_id(), "hpl");
        assert_eq!(Workload::Stream { total_bytes: 1.0 }.benchmark_id(), "stream");
        assert_eq!(Workload::Iozone { total_bytes: 1.0 }.benchmark_id(), "iozone");
    }

    #[test]
    fn hpl_flop_count() {
        let w = Workload::Hpl { n: 1000 };
        assert!((w.flops() - (2.0 / 3.0 * 1e9 + 2e6)).abs() < 1.0);
        assert_eq!(Workload::Stream { total_bytes: 1.0 }.flops(), 0.0);
    }

    #[test]
    fn suites_cover_all_three_benchmarks() {
        for suite in [Workload::fire_suite(), Workload::system_g_suite()] {
            let ids: Vec<&str> = suite.iter().map(|w| w.benchmark_id()).collect();
            assert_eq!(ids, vec!["hpl", "stream", "iozone"]);
        }
    }

    #[test]
    fn serde_round_trip() {
        let w = Workload::Hpl { n: 40_960 };
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
