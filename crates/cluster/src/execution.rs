//! The execution engine: run a workload on a simulated cluster.
//!
//! For a given workload and process count the engine derives
//!
//! 1. aggregate performance from the scaling models ([`crate::scaling`]);
//! 2. wall time from `work / performance` (fixed-work framing);
//! 3. a per-node utilization assignment (compute jobs spread round-robin
//!    across all nodes, I/O clients packed) — idle nodes stay powered, as
//!    they would behind the paper's single wall meter;
//! 4. cluster ground-truth power from the node power models, observed
//!    through a simulated Watts Up? PRO at the PDU (1 Hz, quantized, with
//!    calibration error) — the measured average power and energy come from
//!    that trace, exactly like the physical setup of Figure 1.
//!
//! The result carries a ready-made [`tgi_core::Measurement`].

use crate::scaling;
use crate::spec::ClusterSpec;
use crate::workload::Workload;
use power_model::meter::{PowerMeter, WattsUpPro};
use power_model::trace::PowerTrace;
use power_model::utilization::UtilizationSample;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tgi_core::{Measurement, Perf, Seconds, Watts};

/// Outcome of one simulated benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedRun {
    /// Benchmark id (`"hpl"`, `"stream"`, `"iozone"`).
    pub benchmark: String,
    /// Process count (HPL/STREAM) or client-node count × cores (IOzone).
    pub processes: usize,
    /// Aggregate performance.
    pub performance: Perf,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Average wall power over the metered trace.
    pub average_power: Watts,
    /// Energy integrated from the metered trace.
    pub energy_joules: f64,
    /// The metered power trace (1 Hz samples, possibly long).
    pub trace: PowerTrace,
}

impl SimulatedRun {
    /// Converts to a `tgi-core` measurement (energy taken from the trace).
    pub fn measurement(&self) -> Measurement {
        Measurement::new(
            self.benchmark.clone(),
            self.performance.clone(),
            self.average_power,
            Seconds::new(self.seconds),
        )
        .expect("simulated runs produce valid quantities")
        .with_energy(tgi_core::Joules::new(self.energy_joules))
        .expect("trace energy is positive")
    }

    /// Energy efficiency (performance per watt, canonical units).
    pub fn energy_efficiency(&self) -> f64 {
        self.performance.value() / self.average_power.value()
    }
}

/// Executes workloads on one cluster.
#[derive(Debug, Clone)]
pub struct ExecutionEngine {
    cluster: ClusterSpec,
    meter_serial: u64,
    /// Cap on metered samples per run; traces longer than this are sampled
    /// at a coarser, even stride (a logging meter's memory is finite too).
    max_trace_samples: usize,
    /// DVFS setting: CPU clock as a fraction of nominal (1.0 = full clock).
    freq_ratio: f64,
    /// Optional run-to-run performance noise: (relative σ, stream seed).
    noise: Option<(f64, u64)>,
    /// Optional node thermal model: adds warm-up transients and fan power
    /// to the metered traces.
    thermal: Option<power_model::ThermalModel>,
}

impl ExecutionEngine {
    /// Creates an engine for a cluster with a deterministic meter device.
    pub fn new(cluster: ClusterSpec) -> Self {
        ExecutionEngine {
            cluster,
            meter_serial: 0xF17E,
            max_trace_samples: 8192,
            freq_ratio: 1.0,
            noise: None,
            thermal: None,
        }
    }

    /// Adds per-node thermal dynamics: cluster power then includes fan
    /// spin-up and the warm-up transient instead of being flat over a run.
    pub fn with_thermal(mut self, model: power_model::ThermalModel) -> Self {
        self.thermal = Some(model);
        self
    }

    /// Adds run-to-run performance noise: each run's achieved performance
    /// is perturbed by a deterministic ≈N(0, σ·perf) draw keyed on
    /// `(seed, workload, processes)` — OS jitter, cache luck, and thermal
    /// variation, reproducibly. σ is relative (0.01 = 1%).
    ///
    /// # Panics
    /// Panics on a negative or non-finite σ.
    pub fn with_run_noise(mut self, sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "noise sigma must be non-negative");
        self.noise = Some((sigma, seed));
        self
    }

    /// The multiplicative noise factor for a run (1.0 when noise is off).
    fn noise_factor(&self, workload: &Workload, processes: usize) -> f64 {
        let Some((sigma, seed)) = self.noise else {
            return 1.0;
        };
        // SplitMix over a key of (seed, benchmark, processes); a 12-uniform
        // sum gives an approximately normal z in [-6, 6].
        let mut state = seed
            ^ (processes as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (workload.benchmark_id().len() as u64) << 32
            ^ workload
                .benchmark_id()
                .bytes()
                .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let z: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0;
        (1.0 + sigma * z).max(0.5)
    }

    /// Overrides the meter serial (distinct instruments differ slightly).
    pub fn with_meter_serial(mut self, serial: u64) -> Self {
        self.meter_serial = serial;
        self
    }

    /// Runs the cluster at a reduced CPU clock (DVFS). Compute-bound
    /// performance (HPL) scales linearly with the clock; memory- and
    /// I/O-bound benchmarks are unaffected; CPU dynamic power follows the
    /// cubic law.
    ///
    /// # Panics
    /// Panics unless `ratio ∈ [0.1, 1.5]`.
    pub fn with_frequency_ratio(mut self, ratio: f64) -> Self {
        assert!(
            (0.1..=1.5).contains(&ratio),
            "frequency ratio {ratio} outside the supported DVFS range"
        );
        self.freq_ratio = ratio;
        self
    }

    /// The cluster this engine runs on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Runs a workload with `processes` MPI ranks.
    ///
    /// # Panics
    /// Panics if `processes` is 0 or exceeds the cluster's core count.
    pub fn run(&self, workload: Workload, processes: usize) -> SimulatedRun {
        let _span = tgi_telemetry::span_cat("sim.run", "cluster")
            .field("benchmark", workload.benchmark_id())
            .field("processes", processes);
        if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("tgi_sim_runs_total").inc();
        }
        let spec = &self.cluster;
        assert!(processes > 0, "need at least one process");
        assert!(
            processes <= spec.total_cores(),
            "cannot run {processes} processes on {} cores",
            spec.total_cores()
        );
        let cores_per_node = spec.node.cores() as f64;

        // Performance, time, and per-node utilization by workload type.
        let (performance, seconds, active, active_util) = match workload {
            Workload::Hpl { .. } => {
                let gflops = scaling::hpl_gflops(spec, processes) * self.freq_ratio;
                let seconds = workload.flops() / (gflops * 1e9);
                let ppn = processes as f64 / spec.nodes as f64;
                let cpu = (ppn / cores_per_node).min(1.0);
                let mut util = UtilizationSample::new(cpu, 0.5 * cpu, 0.02, 0.3 * cpu);
                if spec.scaling.hpl_accelerator_factor > 1.0 {
                    // Accelerated HPL: GPUs run the DGEMM, scaled by how much
                    // of the machine the job occupies.
                    util = util.with_accelerator(cpu);
                }
                (Perf::gflops(gflops), seconds, spec.nodes, util)
            }
            Workload::Stream { total_bytes } => {
                let mbps = scaling::stream_mbps(spec, processes);
                let seconds = total_bytes / (mbps * 1e6);
                let ppn = processes as f64 / spec.nodes as f64;
                // STREAM threads are memory-stalled: their effective CPU
                // draw is a fraction of an FPU-saturated HPL process's.
                let cpu = (spec.scaling.stream_cpu_factor * ppn / cores_per_node).min(1.0);
                let mem = scaling::saturation(ppn, spec.scaling.stream_k);
                let util = UtilizationSample::new(cpu, mem, 0.0, 0.05);
                (Perf::mbps(mbps), seconds, spec.nodes, util)
            }
            Workload::Iozone { total_bytes } => {
                // Clients are packed: one node per `cores()` processes.
                let clients =
                    ((processes as f64 / cores_per_node).ceil() as usize).clamp(1, spec.nodes);
                let mbps = scaling::io_mbps(spec, clients);
                let seconds = total_bytes / (mbps * 1e6);
                let per_client = mbps / clients as f64 / spec.shared_fs.per_client_mbps;
                let util = UtilizationSample::io_bound(per_client.min(1.0));
                (Perf::mbps(mbps), seconds, clients, util)
            }
        };

        // Run-to-run noise: the achieved rate wobbles; with fixed work the
        // wall time moves inversely.
        let noise = self.noise_factor(&workload, processes);
        let (performance, seconds) = if noise != 1.0 {
            let perturbed = Perf::new(performance.value() * noise, performance.unit().clone())
                .expect("noise factor keeps performance positive");
            (perturbed, seconds / noise)
        } else {
            (performance, seconds)
        };

        // Ground-truth cluster power: active nodes at `active_util`, the
        // rest idle but powered (all behind the same meter).
        let node_model = spec.node_power_model();
        let active_w = node_model.wall_power_scaled(active_util, self.freq_ratio).value();
        let idle_w = node_model.idle_wall_power().value();
        let idle_nodes = (spec.nodes - active) as f64;
        // With a thermal model, active nodes start at warm-idle temperature
        // and follow the RC warm-up toward the run's steady state; fans add
        // the temperature-dependent term. Idle nodes sit at their steady
        // point throughout.
        let thermal = self.thermal.clone();
        let (idle_fan_w, active_steady_c, idle_steady_c) = match &thermal {
            Some(m) => {
                let idle_dc = node_model.dc_power(power_model::UtilizationSample::IDLE);
                let active_dc = node_model.dc_power_scaled(active_util, self.freq_ratio);
                let idle_c = m.steady_temp(idle_dc);
                (m.fan_power(idle_c).value(), m.steady_temp(active_dc), idle_c)
            }
            None => (0.0, 0.0, 0.0),
        };
        let active_f = active as f64;
        // Facility overhead: the meter sits behind cooling/distribution, so
        // it reads IT power × PUE (`pue * x` is exact for the default 1.0).
        let pue = spec.pue;
        let ground_truth = move |t: f64| {
            let active_fan = match &thermal {
                Some(m) => {
                    let temp =
                        active_steady_c + (idle_steady_c - active_steady_c) * (-t / m.tau_s).exp();
                    m.fan_power(temp).value()
                }
                None => 0.0,
            };
            Watts::new(
                pue * (active_f * (active_w + active_fan) + idle_nodes * (idle_w + idle_fan_w)),
            )
        };

        // Meter the run. For very long runs, stretch the sampling interval
        // to bound trace memory (and scale timestamps back afterwards).
        // Fleet-scale clusters can draw more than a 60 kW PDU measures, so
        // the ceiling grows with the cluster's theoretical envelope (plus
        // fan headroom); clusters under the PDU ceiling meter identically.
        let envelope = spec.pue * spec.nodes as f64 * (node_model.peak_wall_power().value() + 64.0);
        let mut meter = WattsUpPro::pdu(self.meter_serial).with_ceiling(1.5 * envelope);
        let native_interval = meter.spec().sample_interval_s;
        let stride = ((seconds / native_interval) / self.max_trace_samples as f64).ceil().max(1.0);
        let trace = if stride > 1.0 {
            let compressed = meter.record(&ground_truth, seconds / stride);
            // Stretch the timestamps back in one batch ingest: a single
            // validation pass instead of per-sample re-checks.
            let times: Vec<f64> = compressed.times().iter().map(|t| t * stride).collect();
            let mut scaled = PowerTrace::with_capacity(times.len());
            scaled.extend_from_slices(&times, compressed.watts());
            scaled
        } else {
            meter.record(&ground_truth, seconds)
        };

        // Energy = metered average power × stopwatch wall time: the trace
        // quantizes to whole sample intervals, so integrating it directly
        // would truncate short runs at the last sample boundary.
        let average_power = trace.average_power();
        SimulatedRun {
            benchmark: workload.benchmark_id().to_string(),
            processes,
            performance,
            seconds,
            average_power,
            energy_joules: average_power.value() * seconds,
            trace,
        }
    }

    /// Runs the full three-benchmark suite at one process count.
    pub fn run_suite(&self, workloads: &[Workload], processes: usize) -> Vec<SimulatedRun> {
        workloads.iter().map(|w| self.run(*w, processes)).collect()
    }
}

/// Cache key for one `run_suite` invocation: the process count plus each
/// workload's benchmark id and exact problem size. Fractional sizes are
/// keyed by their IEEE bit pattern (`f64::to_bits`), so equal workloads hit
/// and nearly-equal ones don't — no tolerance surprises in `Eq`/`Hash`.
///
/// Suites of up to [`KEY_INLINE`] workloads are stored inline, so building
/// a key for a cache *lookup* allocates nothing — warm sweeps stay
/// allocation-free end to end. Longer suites spill to a `Vec`; equality and
/// hashing see one uniform item sequence either way.
const KEY_INLINE: usize = 12;

#[derive(Debug, Clone)]
struct SuiteKey {
    processes: usize,
    len: usize,
    inline: [(u8, u64); KEY_INLINE],
    spill: Vec<(u8, u64)>,
}

impl SuiteKey {
    fn new(workloads: &[Workload], processes: usize) -> Self {
        let encode = |w: &Workload| {
            let size = match w {
                Workload::Hpl { n } => *n as u64,
                Workload::Stream { total_bytes } | Workload::Iozone { total_bytes } => {
                    total_bytes.to_bits()
                }
            };
            let tag = match w {
                Workload::Hpl { .. } => 0u8,
                Workload::Stream { .. } => 1,
                Workload::Iozone { .. } => 2,
            };
            (tag, size)
        };
        let mut inline = [(0u8, 0u64); KEY_INLINE];
        for (slot, w) in inline.iter_mut().zip(workloads) {
            *slot = encode(w);
        }
        let spill = if workloads.len() > KEY_INLINE {
            workloads[KEY_INLINE..].iter().map(encode).collect()
        } else {
            Vec::new()
        };
        SuiteKey { processes, len: workloads.len(), inline, spill }
    }

    fn items(&self) -> impl Iterator<Item = &(u8, u64)> {
        self.inline[..self.len.min(KEY_INLINE)].iter().chain(self.spill.iter())
    }

    /// Shard selector: a deterministic (per-process) hash of the key.
    fn shard(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish() as usize & (MEMO_SHARDS - 1)
    }
}

impl PartialEq for SuiteKey {
    fn eq(&self, other: &Self) -> bool {
        self.processes == other.processes && self.len == other.len && self.items().eq(other.items())
    }
}

impl Eq for SuiteKey {}

impl std::hash::Hash for SuiteKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.processes.hash(state);
        self.len.hash(state);
        for item in self.items() {
            item.hash(state);
        }
    }
}

/// One cached simulation: the runs plus their ready-made measurements, so
/// sweeps that only need [`tgi_core::Measurement`]s (the TGI hot path)
/// never re-derive them — warm lookups are allocation-free.
#[derive(Debug)]
struct CachedSuite {
    runs: Arc<Vec<SimulatedRun>>,
    measurements: Arc<Vec<Measurement>>,
}

/// Per-key cache slot: either being simulated by exactly one thread
/// (single-flight), ready, or poisoned by a panicking simulation.
#[derive(Debug)]
enum SuiteState {
    InFlight,
    Ready(CachedSuite),
    Poisoned,
}

#[derive(Debug)]
struct SuiteEntry {
    state: Mutex<SuiteState>,
    ready: Condvar,
}

/// Number of cache shards — a fixed power of two so the shard index is a
/// mask of the key hash. 64 shards keep the collision probability of a
/// 16-thread sweep's *lock* acquisitions low without bloating the struct.
const MEMO_SHARDS: usize = 64;

type Shard = Mutex<HashMap<SuiteKey, Arc<SuiteEntry>>>;

/// An [`ExecutionEngine`] that memoizes [`ExecutionEngine::run_suite`] per
/// (workload set, process count).
///
/// Grid and fleet sweeps evaluate many (weighting × mean) cells over the
/// *same* simulated measurements; the simulation is by far the expensive
/// part, so caching it lets those axes reuse runs instead of re-running
/// cluster-sim. Results are shared via `Arc` and one `MemoizedEngine` can
/// serve many threads (`&self` everywhere).
///
/// Internally the cache is **sharded** (64 shards selected by
/// the key hash) so concurrent hits on different keys contend on different
/// locks, and **single-flight**: a missed key is simulated exactly once —
/// the first thread to miss installs an in-flight slot and simulates
/// *outside* every lock, while later threads for the same key block on that
/// slot's condvar (counted by [`MemoizedEngine::inflight_waits`]) instead
/// of re-simulating or contending on the map. A panicking simulation
/// poisons its slot, wakes all waiters (which propagate a panic), and
/// removes the key so later calls can retry.
///
/// Statistics are relaxed atomics read without touching any shard lock, so
/// stats scraping (telemetry, benches) never contends with simulation.
#[derive(Debug)]
pub struct MemoizedEngine {
    engine: ExecutionEngine,
    shards: [Shard; MEMO_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
    simulations: AtomicU64,
    completed: AtomicU64,
}

impl MemoizedEngine {
    /// Wraps an engine with an empty cache.
    pub fn new(engine: ExecutionEngine) -> Self {
        MemoizedEngine {
            engine,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
            simulations: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// The wrapped engine (uncached access, cluster spec, …).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Looks up (or simulates, single-flight) the suite for `key`.
    fn lookup(&self, workloads: &[Workload], processes: usize) -> CachedSuite {
        let key = SuiteKey::new(workloads, processes);
        let shard = &self.shards[key.shard()];
        let (entry, owner) = {
            let mut map = shard.lock().expect("suite cache shard poisoned");
            match map.get(&key) {
                Some(entry) => (Arc::clone(entry), false),
                None => {
                    let entry = Arc::new(SuiteEntry {
                        state: Mutex::new(SuiteState::InFlight),
                        ready: Condvar::new(),
                    });
                    map.insert(key.clone(), Arc::clone(&entry));
                    (entry, true)
                }
            }
        };

        if owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if tgi_telemetry::enabled() {
                tgi_telemetry::counter!("tgi_memo_misses_total").inc();
            }
            return self.simulate_into(&key, shard, &entry, workloads, processes);
        }

        let mut state = entry.state.lock().expect("suite entry poisoned");
        match &*state {
            SuiteState::Ready(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if tgi_telemetry::enabled() {
                    tgi_telemetry::counter!("tgi_memo_hits_total").inc();
                }
                return CachedSuite {
                    runs: Arc::clone(&cached.runs),
                    measurements: Arc::clone(&cached.measurements),
                };
            }
            SuiteState::InFlight => {
                self.inflight_waits.fetch_add(1, Ordering::Relaxed);
                if tgi_telemetry::enabled() {
                    tgi_telemetry::counter!("tgi_memo_inflight_waits_total").inc();
                }
            }
            SuiteState::Poisoned => panic!("suite simulation panicked in another thread"),
        }
        loop {
            state = entry.ready.wait(state).expect("suite entry poisoned");
            match &*state {
                SuiteState::Ready(cached) => {
                    // Served by the in-flight simulation: a hit — this
                    // thread never simulated.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if tgi_telemetry::enabled() {
                        tgi_telemetry::counter!("tgi_memo_hits_total").inc();
                    }
                    return CachedSuite {
                        runs: Arc::clone(&cached.runs),
                        measurements: Arc::clone(&cached.measurements),
                    };
                }
                SuiteState::InFlight => continue,
                SuiteState::Poisoned => panic!("suite simulation panicked in another thread"),
            }
        }
    }

    /// Simulates `key` as the single in-flight owner, publishing the result
    /// (or poisoning the slot on panic) and waking all waiters.
    fn simulate_into(
        &self,
        key: &SuiteKey,
        shard: &Shard,
        entry: &Arc<SuiteEntry>,
        workloads: &[Workload],
        processes: usize,
    ) -> CachedSuite {
        /// Unwind guard: if the simulation panics, poison the slot, wake
        /// every waiter, and drop the key so later calls can retry.
        struct Unpoison<'a> {
            key: &'a SuiteKey,
            shard: &'a Shard,
            entry: &'a Arc<SuiteEntry>,
            armed: bool,
        }
        impl Drop for Unpoison<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                if let Ok(mut state) = self.entry.state.lock() {
                    *state = SuiteState::Poisoned;
                }
                self.entry.ready.notify_all();
                if let Ok(mut map) = self.shard.lock() {
                    map.remove(self.key);
                }
            }
        }

        let mut guard = Unpoison { key, shard, entry, armed: true };
        self.simulations.fetch_add(1, Ordering::Relaxed);
        let sim_span = tgi_telemetry::span_cat("sim.run_suite", "cluster")
            .field("workloads", workloads.len())
            .field("processes", processes);
        let runs = Arc::new(self.engine.run_suite(workloads, processes));
        let measurements = Arc::new(runs.iter().map(|r| r.measurement()).collect::<Vec<_>>());
        sim_span.end();
        guard.armed = false;

        let result =
            CachedSuite { runs: Arc::clone(&runs), measurements: Arc::clone(&measurements) };
        let mut state = entry.state.lock().expect("suite entry poisoned");
        *state = SuiteState::Ready(CachedSuite { runs, measurements });
        drop(state);
        self.completed.fetch_add(1, Ordering::Relaxed);
        entry.ready.notify_all();
        result
    }

    /// Runs the suite at one process count, returning the cached runs when
    /// this (workload set, process count) has been simulated before. Under
    /// concurrency, a missed key is simulated exactly once (single-flight).
    ///
    /// # Panics
    /// As [`ExecutionEngine::run`]: `processes` must be in
    /// `1..=total_cores`. Panics also if the in-flight simulation of the
    /// same key panicked in another thread.
    pub fn run_suite(&self, workloads: &[Workload], processes: usize) -> Arc<Vec<SimulatedRun>> {
        self.lookup(workloads, processes).runs
    }

    /// The suite's measurements at one process count — the same cache entry
    /// as [`MemoizedEngine::run_suite`], with the `Measurement` conversion
    /// done once at simulation time. Warm calls are allocation-free, which
    /// is what keeps sweep hot loops zero-allocation per point.
    ///
    /// # Panics
    /// As [`MemoizedEngine::run_suite`].
    pub fn suite_measurements(
        &self,
        workloads: &[Workload],
        processes: usize,
    ) -> Arc<Vec<Measurement>> {
        self.lookup(workloads, processes).measurements
    }

    /// Number of `run_suite`/`suite_measurements` calls served from the
    /// cache (including calls that waited on an in-flight simulation).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed) as usize
    }

    /// Number of calls that had to simulate.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed) as usize
    }

    /// Number of calls that found their key in flight and blocked on its
    /// completion instead of re-simulating.
    pub fn inflight_waits(&self) -> usize {
        self.inflight_waits.load(Ordering::Relaxed) as usize
    }

    /// Number of simulations actually executed.
    pub fn simulations(&self) -> usize {
        self.simulations.load(Ordering::Relaxed) as usize
    }

    /// Simulations that re-computed a key another simulation also computed
    /// — always 0 under single-flight (the invariant the fleet bench
    /// hard-asserts). Transiently counts in-flight simulations.
    pub fn duplicate_simulations(&self) -> usize {
        self.simulations
            .load(Ordering::Relaxed)
            .saturating_sub(self.completed.load(Ordering::Relaxed)) as usize
    }
}

/// Collects the metered traces of several simulated runs into a labeled
/// [`power_model::TraceSet`] (labels are `benchmark@processes`), ready for
/// parallel fleet analysis: aggregate energy, idle floor, window queries.
pub fn fleet_trace_set(runs: &[SimulatedRun]) -> power_model::TraceSet {
    power_model::TraceSet::from_entries(
        runs.iter()
            .map(|r| (format!("{}@{}", r.benchmark, r.processes), r.trace.clone()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_engine() -> ExecutionEngine {
        ExecutionEngine::new(ClusterSpec::fire())
    }

    #[test]
    fn hpl_run_matches_scaling_model() {
        let engine = fire_engine();
        let run = engine.run(Workload::Hpl { n: 40_960 }, 128);
        let expected = scaling::hpl_gflops(engine.cluster(), 128);
        assert!((run.performance.as_gflops() - expected).abs() < 1e-9);
        assert_eq!(run.benchmark, "hpl");
        // Fixed work: time = flops / rate.
        let flops = Workload::Hpl { n: 40_960 }.flops();
        assert!((run.seconds - flops / (expected * 1e9)).abs() < 1e-6 * run.seconds);
    }

    #[test]
    fn measured_power_is_within_cluster_envelope() {
        let engine = fire_engine();
        let node = engine.cluster().node_power_model();
        let lo = 8.0 * node.idle_wall_power().value();
        let hi = 8.0 * node.peak_wall_power().value();
        for (w, p) in [
            (Workload::Hpl { n: 20_000 }, 64),
            (Workload::Stream { total_bytes: 1e12 }, 64),
            (Workload::Iozone { total_bytes: 1e10 }, 64),
        ] {
            let run = engine.run(w, p);
            let pw = run.average_power.value();
            // Allow the meter's 1.5% gain error beyond the envelope.
            assert!(pw > lo * 0.98 && pw < hi * 1.02, "{:?}: {pw} W", run.benchmark);
        }
    }

    #[test]
    fn more_processes_draw_more_power_for_hpl() {
        let engine = fire_engine();
        let low = engine.run(Workload::Hpl { n: 20_000 }, 16);
        let high = engine.run(Workload::Hpl { n: 20_000 }, 128);
        assert!(high.average_power.value() > low.average_power.value());
        // And finish faster.
        assert!(high.seconds < low.seconds);
    }

    #[test]
    fn hpl_energy_efficiency_rises_then_dips_at_full_load() {
        // The Fig. 2 shape: idle power amortizes over more performance up to
        // mid-scale; past ~64 processes the convex CPU power curve and the
        // Amdahl overhead term erode efficiency slightly.
        let engine = fire_engine();
        let ees: Vec<f64> = [16, 32, 48, 64, 128]
            .iter()
            .map(|&p| engine.run(Workload::Hpl { n: 20_000 }, p).energy_efficiency())
            .collect();
        assert!(ees[1] > ees[0] && ees[2] > ees[1] && ees[3] > ees[2], "rising: {ees:?}");
        let peak = ees.iter().cloned().fold(0.0, f64::max);
        assert!(ees[4] < peak, "full load dips below the peak: {ees:?}");
        assert!(ees[4] > 0.7 * peak, "the dip is mild: {ees:?}");
    }

    #[test]
    fn iozone_efficiency_peaks_then_declines() {
        // The Fig. 4 tail: aggregate throughput saturates near 6 clients;
        // beyond that, contention erodes throughput while active-node power
        // keeps rising, so EE dips from its peak.
        let engine = fire_engine();
        let ee6 = engine.run(Workload::Iozone { total_bytes: 6e10 }, 96).energy_efficiency();
        let ee8 = engine.run(Workload::Iozone { total_bytes: 6e10 }, 128).energy_efficiency();
        let ee2 = engine.run(Workload::Iozone { total_bytes: 6e10 }, 32).energy_efficiency();
        assert!(ee6 > ee2, "EE rises toward saturation: {ee2} vs {ee6}");
        assert!(ee8 < ee6, "IOzone EE should dip past saturation: {ee6} vs {ee8}");
    }

    #[test]
    fn energy_consistent_with_power_and_time() {
        let engine = fire_engine();
        let run = engine.run(Workload::Stream { total_bytes: 1e12 }, 64);
        let derived = run.average_power.value() * run.seconds;
        assert!(
            (run.energy_joules - derived).abs() < 1e-9 * derived,
            "energy {} vs derived {derived}",
            run.energy_joules
        );
        // And the trace's own integral agrees within the sample-boundary
        // truncation error (one 1 Hz interval on a ~7 s run).
        let integrated = run.trace.energy().value();
        assert!(
            (run.energy_joules - integrated).abs() < 0.2 * run.energy_joules,
            "trace integral {integrated} far from {}",
            run.energy_joules
        );
    }

    #[test]
    fn measurement_conversion_round_trips() {
        let engine = fire_engine();
        let run = engine.run(Workload::Hpl { n: 20_000 }, 64);
        let m = run.measurement();
        assert_eq!(m.id(), "hpl");
        assert!((m.power().value() - run.average_power.value()).abs() < 1e-9);
        assert!((m.energy().value() - run.energy_joules).abs() < 1e-9);
    }

    #[test]
    fn long_runs_capped_trace_preserves_duration() {
        let engine = fire_engine();
        // A slow IOzone run: 60 GB at ~70 MB/s ≈ 857 s… make it much longer.
        let run = engine.run(Workload::Iozone { total_bytes: 2e12 }, 16);
        assert!(run.trace.len() <= 8192 + 2);
        let dur = run.trace.duration().value();
        assert!(
            (dur - run.seconds).abs() < 0.02 * run.seconds + 2.0,
            "trace duration {dur} vs run {            }",
            run.seconds
        );
    }

    #[test]
    fn suite_runs_all_workloads() {
        let engine = fire_engine();
        let runs = engine.run_suite(&Workload::fire_suite(), 64);
        let ids: Vec<&str> = runs.iter().map(|r| r.benchmark.as_str()).collect();
        assert_eq!(ids, vec!["hpl", "stream", "iozone"]);
    }

    #[test]
    fn fleet_trace_set_labels_and_totals() {
        let engine = fire_engine();
        let runs = engine.run_suite(&Workload::fire_suite(), 64);
        let set = fleet_trace_set(&runs);
        assert_eq!(set.len(), 3);
        assert!(set.get("hpl@64").is_some());
        assert!(set.get("stream@64").is_some());
        let expected: f64 = runs.iter().map(|r| r.trace.energy().value()).sum();
        assert!((set.total_energy().value() - expected).abs() < 1e-6 * expected.max(1.0));
        let summary = set.summarize();
        assert_eq!(summary.nodes.len(), 3);
        assert!(summary.peak_node_w > 0.0);
    }

    #[test]
    fn memoized_engine_caches_per_workloads_and_processes() {
        let memo = MemoizedEngine::new(fire_engine());
        let suite = Workload::fire_suite();
        let a = memo.run_suite(&suite, 64);
        assert_eq!((memo.hits(), memo.misses()), (0, 1));
        let b = memo.run_suite(&suite, 64);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // Cached result is the same allocation, and equals a fresh run.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, fire_engine().run_suite(&suite, 64));
        // A different process count is a distinct key…
        let c = memo.run_suite(&suite, 32);
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
        assert!(!Arc::ptr_eq(&a, &c));
        // …and so is a different workload size at the same count.
        let resized = vec![Workload::Hpl { n: 20_000 }];
        memo.run_suite(&resized, 64);
        assert_eq!((memo.hits(), memo.misses()), (1, 3));
        memo.run_suite(&resized, 64);
        assert_eq!((memo.hits(), memo.misses()), (2, 3));
    }

    #[test]
    fn memoized_engine_exposes_wrapped_engine() {
        let memo = MemoizedEngine::new(fire_engine());
        assert_eq!(memo.engine().cluster().total_cores(), 128);
    }

    #[test]
    fn suite_measurements_share_the_cache_entry() {
        let memo = MemoizedEngine::new(fire_engine());
        let suite = Workload::fire_suite();
        let runs = memo.run_suite(&suite, 64);
        // Same key: the measurements were derived during that simulation.
        let m1 = memo.suite_measurements(&suite, 64);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        let expected: Vec<Measurement> = runs.iter().map(|r| r.measurement()).collect();
        assert_eq!(*m1, expected);
        // Warm calls return the same allocation.
        let m2 = memo.suite_measurements(&suite, 64);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!((memo.hits(), memo.misses()), (2, 1));
    }

    #[test]
    fn concurrent_misses_on_one_key_simulate_once() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let memo = Arc::new(MemoizedEngine::new(fire_engine()));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let memo = Arc::clone(&memo);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    memo.run_suite(&Workload::fire_suite(), 64)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Single-flight: exactly one thread simulated; everyone else hit
        // (waiting on the in-flight entry counts as a hit).
        assert_eq!(memo.simulations(), 1, "single-flight must simulate once");
        assert_eq!(memo.duplicate_simulations(), 0);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), THREADS - 1);
        assert!(memo.inflight_waits() < THREADS);
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all threads share one allocation");
        }
    }

    #[test]
    fn panicking_simulation_clears_its_slot_for_retry() {
        let memo = MemoizedEngine::new(fire_engine());
        let suite = Workload::fire_suite();
        // Oversubscribed process count: the wrapped engine panics mid-flight.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.run_suite(&suite, 100_000)
        }));
        assert!(attempt.is_err());
        assert_eq!((memo.misses(), memo.simulations()), (1, 1));
        // The failed key was removed, not left poisoned forever: retrying
        // the same key misses again (and panics again, same reason).
        let retry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.run_suite(&suite, 100_000)
        }));
        assert!(retry.is_err());
        assert_eq!((memo.misses(), memo.simulations()), (2, 2));
        // A valid key on the same engine still works.
        let runs = memo.run_suite(&suite, 64);
        assert_eq!(runs.len(), 3);
    }

    #[test]
    fn long_suites_spill_but_key_uniformly() {
        // More workloads than the inline key capacity: lookups still match.
        let suite: Vec<Workload> =
            (0..KEY_INLINE + 3).map(|i| Workload::Hpl { n: 10_000 + 1_000 * i }).collect();
        let a = SuiteKey::new(&suite, 64);
        let b = SuiteKey::new(&suite, 64);
        assert_eq!(a, b);
        assert_eq!(a.shard(), b.shard());
        // Differing only in a spilled slot is a different key.
        let mut other = suite.clone();
        other[KEY_INLINE + 1] = Workload::Hpl { n: 99_999 };
        assert_ne!(a, SuiteKey::new(&other, 64));
    }

    #[test]
    fn pue_multiplies_metered_power() {
        let base = fire_engine().run(Workload::Hpl { n: 20_000 }, 64);
        let dc = ExecutionEngine::new(ClusterSpec::fire().with_pue(1.5))
            .run(Workload::Hpl { n: 20_000 }, 64);
        let ratio = dc.average_power.value() / base.average_power.value();
        assert!((ratio - 1.5).abs() < 0.01, "PUE 1.5 should read ~1.5× power, got {ratio}");
        // Performance and time are untouched — PUE is facility overhead.
        assert_eq!(base.seconds, dc.seconds);
        assert_eq!(base.performance, dc.performance);
    }

    #[test]
    fn fleet_scale_cluster_meters_above_pdu_ceiling() {
        // 2000 SystemG-class nodes idle near half a megawatt — far above the
        // 60 kW PDU ceiling. The engine raises the meter ceiling with the
        // cluster envelope, so fleet-scale readings aren't clamped.
        let mut spec = ClusterSpec::system_g();
        spec.nodes = 2000;
        let run = ExecutionEngine::new(spec).run(Workload::Hpl { n: 60_000 }, 1024);
        assert!(
            run.average_power.value() > 60_000.0,
            "megawatt cluster must not clamp at the PDU ceiling: {} W",
            run.average_power.value()
        );
    }

    #[test]
    fn deterministic_given_same_engine_config() {
        let a = fire_engine().run(Workload::Hpl { n: 20_000 }, 64);
        let b = fire_engine().run(Workload::Hpl { n: 20_000 }, 64);
        assert_eq!(a.average_power, b.average_power);
        assert_eq!(a.energy_joules, b.energy_joules);
    }

    #[test]
    fn different_meters_disagree_slightly() {
        let a = ExecutionEngine::new(ClusterSpec::fire())
            .with_meter_serial(1)
            .run(Workload::Hpl { n: 20_000 }, 64);
        let b = ExecutionEngine::new(ClusterSpec::fire())
            .with_meter_serial(2)
            .run(Workload::Hpl { n: 20_000 }, 64);
        let rel =
            (a.average_power.value() - b.average_power.value()).abs() / a.average_power.value();
        assert!(rel < 0.035, "meters should agree within twice the gain spec");
        assert!(rel > 0.0, "distinct devices should not agree exactly");
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn oversubscription_panics() {
        fire_engine().run(Workload::Hpl { n: 1000 }, 1000);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// For any combination of engine knobs (DVFS, noise, thermal) and
        /// any valid process count, every run stays physically sane: power
        /// within the cluster envelope (+fans), positive performance, and
        /// energy ≈ power × time.
        #[test]
        fn prop_engine_runs_physically_sane(
            procs in 1usize..=128,
            dvfs in 0.5..1.0f64,
            sigma in 0.0..0.03f64,
            seed in 0u64..50,
            thermal in proptest::bool::ANY,
            widx in 0usize..3,
        ) {
            let spec = ClusterSpec::fire();
            let mut engine = ExecutionEngine::new(spec.clone())
                .with_frequency_ratio(dvfs)
                .with_run_noise(sigma, seed);
            if thermal {
                engine = engine.with_thermal(power_model::ThermalModel::typical_server());
            }
            let w = Workload::fire_suite()[widx];
            let run = engine.run(w, procs);

            let node = spec.node_power_model();
            let lo = spec.nodes as f64 * node.idle_wall_power().value();
            let fan_headroom = if thermal { spec.nodes as f64 * 48.0 } else { 0.0 };
            let hi = spec.nodes as f64 * node.peak_wall_power().value() + fan_headroom;
            let p = run.average_power.value();
            proptest::prop_assert!(p > lo * 0.97 && p < hi * 1.03, "power {p} outside [{lo}, {hi}]");
            proptest::prop_assert!(run.performance.value() > 0.0);
            proptest::prop_assert!(run.seconds > 0.0);
            let derived = run.average_power.value() * run.seconds;
            proptest::prop_assert!((run.energy_joules - derived).abs() < 1e-6 * derived);
        }
    }

    #[test]
    fn thermal_model_adds_warmup_ramp_and_fan_energy() {
        let flat = fire_engine().run(Workload::Hpl { n: 40_000 }, 128);
        let thermal = ExecutionEngine::new(ClusterSpec::fire())
            .with_thermal(power_model::ThermalModel::typical_server())
            .run(Workload::Hpl { n: 40_000 }, 128);
        // Fans add power overall.
        assert!(
            thermal.average_power.value() > flat.average_power.value(),
            "thermal {} vs flat {}",
            thermal.average_power,
            flat.average_power
        );
        // And the trace ramps up early (warm-up) instead of being flat.
        let samples = thermal.trace.samples();
        let early = samples[1].watts;
        let late = samples[samples.len() / 2].watts;
        // 8 nodes' fans ramping from idle-cool to HPL-steady adds tens of
        // watts — far above the meter's ±0.05% sample jitter.
        assert!(late > early + 25.0, "warm-up ramp: {early} -> {late}");
        // The flat engine's trace varies only by meter jitter (< 1%).
        let f = flat.trace.samples();
        let spread = (f[f.len() / 2].watts - f[1].watts).abs();
        assert!(spread < 0.01 * f[1].watts, "flat trace spread {spread}");
    }

    #[test]
    fn run_noise_perturbs_reproducibly() {
        let quiet = fire_engine().run(Workload::Hpl { n: 20_000 }, 64);
        let noisy1 = ExecutionEngine::new(ClusterSpec::fire())
            .with_run_noise(0.02, 7)
            .run(Workload::Hpl { n: 20_000 }, 64);
        let noisy2 = ExecutionEngine::new(ClusterSpec::fire())
            .with_run_noise(0.02, 7)
            .run(Workload::Hpl { n: 20_000 }, 64);
        let noisy3 = ExecutionEngine::new(ClusterSpec::fire())
            .with_run_noise(0.02, 8)
            .run(Workload::Hpl { n: 20_000 }, 64);
        // Same seed reproduces; different seed differs; deviation is small.
        assert_eq!(noisy1.performance, noisy2.performance);
        assert_ne!(noisy1.performance, noisy3.performance);
        let rel = (noisy1.performance.as_gflops() / quiet.performance.as_gflops() - 1.0).abs();
        assert!(rel > 0.0 && rel < 0.15, "relative perturbation {rel}");
        // Work is fixed: perf × time is invariant.
        let work_quiet = quiet.performance.as_gflops() * quiet.seconds;
        let work_noisy = noisy1.performance.as_gflops() * noisy1.seconds;
        assert!((work_quiet - work_noisy).abs() < 1e-6 * work_quiet);
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let a = fire_engine().run(Workload::Stream { total_bytes: 1e12 }, 32);
        let b = ExecutionEngine::new(ClusterSpec::fire())
            .with_run_noise(0.0, 1)
            .run(Workload::Stream { total_bytes: 1e12 }, 32);
        assert_eq!(a.performance, b.performance);
    }

    #[test]
    fn dvfs_slows_hpl_but_can_improve_its_energy() {
        let full = fire_engine().run(Workload::Hpl { n: 40_000 }, 128);
        let slow = ExecutionEngine::new(ClusterSpec::fire())
            .with_frequency_ratio(0.7)
            .run(Workload::Hpl { n: 40_000 }, 128);
        // Linear performance loss…
        assert!((slow.performance.as_gflops() / full.performance.as_gflops() - 0.7).abs() < 1e-9);
        // …cubic dynamic-power saving.
        assert!(slow.average_power.value() < full.average_power.value());
        // Energy per fixed job: runtime grew 1/0.7x but power dropped more
        // at the dynamic margin — the classic DVFS trade-off is visible
        // either way; just require both energies to be positive and within
        // 2x of each other (the sweep bench maps the actual optimum).
        let ratio = slow.energy_joules / full.energy_joules;
        assert!(ratio > 0.5 && ratio < 2.0, "energy ratio {ratio}");
    }

    #[test]
    fn dvfs_leaves_memory_and_io_performance_alone() {
        let full = fire_engine();
        let slow = ExecutionEngine::new(ClusterSpec::fire()).with_frequency_ratio(0.6);
        for w in [Workload::Stream { total_bytes: 1e12 }, Workload::Iozone { total_bytes: 1e10 }] {
            let a = full.run(w, 64);
            let b = slow.run(w, 64);
            assert_eq!(a.performance, b.performance);
            assert!(b.average_power.value() <= a.average_power.value() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "DVFS range")]
    fn absurd_frequency_ratio_panics() {
        let _ = ExecutionEngine::new(ClusterSpec::fire()).with_frequency_ratio(3.0);
    }

    #[test]
    fn gpu_cluster_speeds_up_hpl_at_higher_power() {
        let cpu_run = fire_engine().run(Workload::Hpl { n: 40_000 }, 128);
        let gpu_run =
            ExecutionEngine::new(ClusterSpec::fire_gpu()).run(Workload::Hpl { n: 40_000 }, 128);
        // ~6× the performance…
        assert!(gpu_run.performance.as_gflops() > 5.0 * cpu_run.performance.as_gflops());
        // …at clearly higher wall power (16 Fermi boards at full tilt)…
        assert!(
            gpu_run.average_power.value() > cpu_run.average_power.value() + 2_000.0,
            "gpu {} vs cpu {}",
            gpu_run.average_power,
            cpu_run.average_power
        );
        // …which still nets out to better HPL energy efficiency.
        assert!(gpu_run.energy_efficiency() > cpu_run.energy_efficiency());
    }

    #[test]
    fn gpu_cluster_does_not_change_stream_or_iozone_performance() {
        let fire = fire_engine();
        let gpu = ExecutionEngine::new(ClusterSpec::fire_gpu());
        for w in [Workload::Stream { total_bytes: 1e12 }, Workload::Iozone { total_bytes: 1e10 }] {
            let a = fire.run(w, 64);
            let b = gpu.run(w, 64);
            assert_eq!(a.performance, b.performance, "{:?}", a.benchmark);
            // But the GPU hosts idle hotter, so the same work costs more.
            assert!(b.average_power.value() > a.average_power.value());
        }
    }
}
