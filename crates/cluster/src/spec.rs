//! Machine descriptions for the simulated clusters.
//!
//! A [`ClusterSpec`] bundles node hardware, interconnect, shared-filesystem
//! characteristics, and the scaling-model parameters that the analytic
//! performance models in [`crate::scaling`] consume. The two presets are the
//! paper's systems (§IV): the *Fire* system under test and the *SystemG*
//! reference.

use power_model::NodePowerModel;
use serde::{Deserialize, Serialize};

/// One node's hardware description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU model string (documentation only).
    pub cpu_model: String,
    /// Sockets per node.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Peak double-precision FLOPs per core per cycle (SSE-era: 4).
    pub flops_per_cycle: f64,
    /// Memory per node, GiB.
    pub memory_gib: f64,
    /// Peak memory bandwidth per node, GB/s (decimal).
    pub mem_bandwidth_gbps: f64,
}

impl NodeSpec {
    /// Cores per node.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Theoretical peak GFLOPS per node.
    pub fn peak_gflops(&self) -> f64 {
        self.cores() as f64 * self.clock_ghz * self.flops_per_cycle
    }
}

/// Interconnect characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// One-way small-message latency, microseconds.
    pub latency_us: f64,
    /// Per-link bandwidth, Gbit/s.
    pub bandwidth_gbps: f64,
}

/// Shared (cluster-wide) filesystem characteristics — the resource IOzone
/// contends for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedFsSpec {
    /// A single client's streaming-write throughput, MB/s.
    pub per_client_mbps: f64,
    /// The file server's saturation throughput, MB/s.
    pub server_cap_mbps: f64,
    /// Fractional aggregate-throughput loss per client beyond saturation
    /// (lock/metadata contention).
    pub contention_loss: f64,
}

/// Parameters of the analytic scaling models (see [`crate::scaling`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingParams {
    /// Fraction of per-core peak a single HPL process sustains (kernel
    /// efficiency of the local GEMM).
    pub hpl_serial_efficiency: f64,
    /// Logarithmic parallel-efficiency decay κ in
    /// `e(p) = 1/(1 + κ·log₂ p + μ·(p−1)/(P−1))`.
    pub hpl_kappa: f64,
    /// Amdahl-style linear overhead μ (panel broadcast / update skew),
    /// normalized so μ is the full-machine overhead.
    pub hpl_mu: f64,
    /// STREAM saturation constant: per-node bandwidth fraction reached by
    /// `ppn` processes is `ppn / (ppn + k)`.
    pub stream_k: f64,
    /// Fraction of peak memory bandwidth STREAM triad can sustain.
    pub stream_peak_fraction: f64,
    /// CPU-utilization equivalent of a STREAM process relative to an HPL
    /// process (memory-stalled threads draw far less dynamic power).
    pub stream_cpu_factor: f64,
    /// HPL speedup factor from accelerators (1.0 on CPU-only clusters).
    pub hpl_accelerator_factor: f64,
}

/// A whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Display name.
    pub name: String,
    /// Node count available to jobs.
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Interconnect.
    pub interconnect: InterconnectSpec,
    /// Shared filesystem.
    pub shared_fs: SharedFsSpec,
    /// Scaling-model parameters.
    pub scaling: ScalingParams,
    /// Facility power-usage effectiveness: the wall meter sits behind the
    /// datacenter's cooling and distribution overhead, so metered power is
    /// IT power × PUE. `1.0` (the default, and the paper's single-room
    /// setup) means the meter sees IT power directly.
    #[serde(default = "default_pue")]
    pub pue: f64,
    /// Explicit per-node power model. `None` (the default) selects a preset
    /// by cluster name, preserving the paper systems' behavior; generated
    /// fleet specs carry their sampled idle/peak power curves here.
    #[serde(default)]
    pub power: Option<NodePowerModel>,
}

fn default_pue() -> f64 {
    1.0
}

/// A spec field that fails validation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidSpec {
    /// Which field is invalid.
    pub field: &'static str,
    /// Why.
    pub reason: &'static str,
}

impl std::fmt::Display for InvalidSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cluster spec: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidSpec {}

impl ClusterSpec {
    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores()
    }

    /// Checks a (possibly user-assembled or deserialized) spec for values
    /// the scaling models cannot handle. The built-in presets always pass.
    pub fn validate(&self) -> Result<(), InvalidSpec> {
        let positive = |field: &'static str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(InvalidSpec { field, reason: "must be a positive, finite number" })
            }
        };
        if self.nodes == 0 {
            return Err(InvalidSpec { field: "nodes", reason: "must be at least 1" });
        }
        if self.node.cores() == 0 {
            return Err(InvalidSpec {
                field: "node.sockets/cores_per_socket",
                reason: "must give at least one core",
            });
        }
        positive("node.clock_ghz", self.node.clock_ghz)?;
        positive("node.flops_per_cycle", self.node.flops_per_cycle)?;
        positive("node.memory_gib", self.node.memory_gib)?;
        positive("node.mem_bandwidth_gbps", self.node.mem_bandwidth_gbps)?;
        positive("shared_fs.per_client_mbps", self.shared_fs.per_client_mbps)?;
        positive("shared_fs.server_cap_mbps", self.shared_fs.server_cap_mbps)?;
        if !(0.0..1.0).contains(&self.shared_fs.contention_loss) {
            return Err(InvalidSpec {
                field: "shared_fs.contention_loss",
                reason: "must be in [0, 1)",
            });
        }
        positive("scaling.hpl_serial_efficiency", self.scaling.hpl_serial_efficiency)?;
        if self.scaling.hpl_serial_efficiency > 1.0 {
            return Err(InvalidSpec {
                field: "scaling.hpl_serial_efficiency",
                reason: "cannot exceed 1 (fraction of peak)",
            });
        }
        if self.scaling.hpl_kappa < 0.0 || self.scaling.hpl_mu < 0.0 {
            return Err(InvalidSpec {
                field: "scaling.hpl_kappa/hpl_mu",
                reason: "overhead terms cannot be negative",
            });
        }
        positive("scaling.stream_k", self.scaling.stream_k)?;
        positive("scaling.stream_peak_fraction", self.scaling.stream_peak_fraction)?;
        if self.scaling.stream_peak_fraction > 1.0 {
            return Err(InvalidSpec {
                field: "scaling.stream_peak_fraction",
                reason: "cannot exceed 1 (fraction of peak)",
            });
        }
        if !(0.0..=1.0).contains(&self.scaling.stream_cpu_factor) {
            return Err(InvalidSpec {
                field: "scaling.stream_cpu_factor",
                reason: "must be in [0, 1]",
            });
        }
        if self.scaling.hpl_accelerator_factor < 1.0 {
            return Err(InvalidSpec {
                field: "scaling.hpl_accelerator_factor",
                reason: "must be at least 1 (1 = no accelerators)",
            });
        }
        if !self.pue.is_finite() || self.pue < 1.0 {
            return Err(InvalidSpec {
                field: "pue",
                reason: "must be a finite number of at least 1 (1 = no facility overhead)",
            });
        }
        if let Some(power) = &self.power {
            let idle = power.idle_wall_power().value();
            let peak = power.peak_wall_power().value();
            if !(idle.is_finite() && idle > 0.0 && peak.is_finite() && peak >= idle) {
                return Err(InvalidSpec {
                    field: "power",
                    reason: "node power model must have 0 < idle <= peak wall power",
                });
            }
        }
        Ok(())
    }

    /// Sets the facility PUE multiplier (builder style).
    ///
    /// # Panics
    /// Panics unless `pue` is finite and at least 1.
    pub fn with_pue(mut self, pue: f64) -> Self {
        assert!(pue.is_finite() && pue >= 1.0, "PUE must be finite and >= 1, got {pue}");
        self.pue = pue;
        self
    }

    /// Overrides the per-node power model (builder style). Generated fleet
    /// specs use this so their sampled idle/peak watts survive serde and
    /// drive the simulation instead of a name-matched preset.
    pub fn with_node_power(mut self, power: NodePowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// Theoretical peak GFLOPS of the whole cluster.
    pub fn peak_gflops(&self) -> f64 {
        self.nodes as f64 * self.node.peak_gflops()
    }

    /// The node power model for this cluster: the explicit [`ClusterSpec::power`]
    /// override when present, otherwise a preset matched to the cluster name's
    /// hardware generation.
    pub fn node_power_model(&self) -> NodePowerModel {
        if let Some(power) = &self.power {
            return power.clone();
        }
        match self.name.as_str() {
            "SystemG" => NodePowerModel::system_g_node(),
            name if name.contains("GPU") => NodePowerModel::gpu_node(),
            name if name.contains("Sandy") => NodePowerModel::sandy_bridge_node(),
            _ => NodePowerModel::fire_node(),
        }
    }

    /// The *Fire* cluster (§IV): 8 nodes × 2× AMD Opteron 6134 (8 cores,
    /// 2.3 GHz), 32 GB/node, 128 cores total; "capable of delivering
    /// 90 GFLOPS on the LINPACK benchmark".
    pub fn fire() -> Self {
        ClusterSpec {
            name: "Fire".to_string(),
            nodes: 8,
            node: NodeSpec {
                cpu_model: "AMD Opteron 6134".to_string(),
                sockets: 2,
                cores_per_socket: 8,
                clock_ghz: 2.3,
                flops_per_cycle: 4.0,
                memory_gib: 32.0,
                // 4× DDR3-1333 channels/socket ≈ 42 GB/s peak; realistic
                // sustained fraction handled by stream_peak_fraction.
                mem_bandwidth_gbps: 42.0,
            },
            interconnect: InterconnectSpec { latency_us: 2.5, bandwidth_gbps: 20.0 },
            shared_fs: SharedFsSpec {
                per_client_mbps: 65.3,
                server_cap_mbps: 379.2,
                contention_loss: 0.046,
            },
            scaling: ScalingParams {
                // Calibrated to the paper's 90 GFLOPS at 128 processes:
                // 128 cores × 9.2 peak × serial_eff × e(128) ≈ 90, with
                // e(128) = 1/(1 + 0.0506·7 + 0.7322) ≈ 0.479.
                hpl_serial_efficiency: 0.1595,
                hpl_kappa: 0.0506,
                hpl_mu: 0.7322,
                stream_k: 1.5528,
                stream_peak_fraction: 0.55,
                stream_cpu_factor: 0.12,
                hpl_accelerator_factor: 1.0,
            },
            pue: 1.0,
            power: None,
        }
    }

    /// A GPU-accelerated variant of Fire for the paper's §VI platform
    /// extension ("the suitability of TGI to various kind of platforms,
    /// such as GPU based system, is of particular interest"): the same
    /// 8 hosts, each with two Fermi-class boards that take over the HPL
    /// DGEMM work. Only HPL accelerates — STREAM measures *host* memory and
    /// IOzone the shared filesystem, which is exactly why the GPU system's
    /// FLOPS/W and its TGI tell different stories.
    pub fn fire_gpu() -> Self {
        let mut spec = ClusterSpec::fire();
        spec.name = "Fire-GPU".to_string();
        // Two Fermi-class boards sustain ~6× the host's HPL throughput.
        spec.scaling.hpl_accelerator_factor = 6.0;
        spec
    }

    /// A 2012-generation cluster ("Sandy"): 8 nodes of 2× 8-core Sandy
    /// Bridge-EP at 2.6 GHz with AVX (8 FLOPs/cycle), DDR3-1600, and a
    /// faster file server — the generation the paper's §VI "benchmark more
    /// systems" agenda would have evaluated next.
    pub fn sandy() -> Self {
        ClusterSpec {
            name: "Sandy".to_string(),
            nodes: 8,
            node: NodeSpec {
                cpu_model: "Intel Xeon E5-2670".to_string(),
                sockets: 2,
                cores_per_socket: 8,
                clock_ghz: 2.6,
                flops_per_cycle: 8.0,
                memory_gib: 64.0,
                mem_bandwidth_gbps: 102.0,
            },
            interconnect: InterconnectSpec { latency_us: 1.2, bandwidth_gbps: 56.0 },
            shared_fs: SharedFsSpec {
                per_client_mbps: 180.0,
                server_cap_mbps: 900.0,
                contention_loss: 0.02,
            },
            scaling: ScalingParams {
                // Tuned BLAS on AVX: far better serial efficiency than Fire.
                hpl_serial_efficiency: 0.62,
                hpl_kappa: 0.04,
                hpl_mu: 0.35,
                stream_k: 1.4,
                stream_peak_fraction: 0.72,
                stream_cpu_factor: 0.2,
                hpl_accelerator_factor: 1.0,
            },
            pue: 1.0,
            power: None,
        }
    }

    /// The *SystemG* reference (§IV): Mac Pros with 2× 2.8 GHz quad-core
    /// Xeon 5462, 8 GB/node, QDR InfiniBand; 128 nodes / 1024 cores used;
    /// Table I reports 8.1 TFLOPS on HPL.
    pub fn system_g() -> Self {
        ClusterSpec {
            name: "SystemG".to_string(),
            nodes: 128,
            node: NodeSpec {
                cpu_model: "Intel Xeon 5462".to_string(),
                sockets: 2,
                cores_per_socket: 4,
                clock_ghz: 2.8,
                flops_per_cycle: 4.0,
                memory_gib: 8.0,
                // FB-DIMM platform: 256-bit DDR2-800 gives ~16 GB/s peak.
                mem_bandwidth_gbps: 16.0,
            },
            interconnect: InterconnectSpec { latency_us: 1.5, bandwidth_gbps: 40.0 },
            shared_fs: SharedFsSpec {
                // A production parallel filesystem: 128 clients sustain
                // ~2.8 GB/s aggregate against multiple OSTs.
                per_client_mbps: 270.0,
                server_cap_mbps: 3600.0,
                contention_loss: 0.002,
            },
            scaling: ScalingParams {
                // Calibrated to Table I's 8.1 TFLOPS at 1024 processes:
                // 1024 × 11.2 peak × serial_eff × e(1024) ≈ 8100.
                hpl_serial_efficiency: 0.885,
                hpl_kappa: 0.025,
                hpl_mu: 0.0,
                stream_k: 0.9,
                stream_peak_fraction: 0.60,
                // Penryn-era FSB platform: STREAM keeps the front-side bus
                // and both sockets fully busy.
                stream_cpu_factor: 1.0,
                hpl_accelerator_factor: 1.0,
            },
            pue: 1.0,
            power: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_matches_paper_description() {
        let f = ClusterSpec::fire();
        assert_eq!(f.nodes, 8);
        assert_eq!(f.node.cores(), 16);
        assert_eq!(f.total_cores(), 128);
        assert!((f.node.clock_ghz - 2.3).abs() < 1e-12);
        // Per-node peak: 16 × 2.3 × 4 = 147.2 GFLOPS.
        assert!((f.node.peak_gflops() - 147.2).abs() < 1e-9);
        assert!((f.peak_gflops() - 1177.6).abs() < 1e-6);
    }

    #[test]
    fn system_g_matches_paper_description() {
        let g = ClusterSpec::system_g();
        assert_eq!(g.nodes, 128);
        assert_eq!(g.node.cores(), 8);
        assert_eq!(g.total_cores(), 1024);
        // Per-node peak: 8 × 2.8 × 4 = 89.6 GFLOPS; cluster 11.47 TFLOPS.
        assert!((g.node.peak_gflops() - 89.6).abs() < 1e-9);
        assert!((g.peak_gflops() - 11_468.8).abs() < 1e-6);
    }

    #[test]
    fn power_models_are_distinct_per_cluster() {
        let f = ClusterSpec::fire().node_power_model();
        let g = ClusterSpec::system_g().node_power_model();
        assert_ne!(f, g);
    }

    #[test]
    fn fire_gpu_accelerates_hpl_only() {
        let gpu = ClusterSpec::fire_gpu();
        assert_eq!(gpu.nodes, 8);
        assert!(gpu.scaling.hpl_accelerator_factor > 1.0);
        // Same host platform: STREAM and I/O characteristics unchanged.
        let fire = ClusterSpec::fire();
        assert_eq!(gpu.node.mem_bandwidth_gbps, fire.node.mem_bandwidth_gbps);
        assert_eq!(gpu.shared_fs, fire.shared_fs);
        // Power model picks up the GPU boards.
        let model = gpu.node_power_model();
        assert!(model.accelerator.is_present());
        assert!(!fire.node_power_model().accelerator.is_present());
    }

    #[test]
    fn all_presets_validate() {
        for spec in [
            ClusterSpec::fire(),
            ClusterSpec::fire_gpu(),
            ClusterSpec::sandy(),
            ClusterSpec::system_g(),
        ] {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn validation_rejects_broken_specs() {
        let cases: Vec<(&str, Box<dyn Fn(&mut ClusterSpec)>)> = vec![
            ("zero nodes", Box::new(|s| s.nodes = 0)),
            ("zero clock", Box::new(|s| s.node.clock_ghz = 0.0)),
            ("nan bandwidth", Box::new(|s| s.node.mem_bandwidth_gbps = f64::NAN)),
            ("loss >= 1", Box::new(|s| s.shared_fs.contention_loss = 1.0)),
            ("eff > 1", Box::new(|s| s.scaling.hpl_serial_efficiency = 1.5)),
            ("negative kappa", Box::new(|s| s.scaling.hpl_kappa = -0.1)),
            ("stream frac > 1", Box::new(|s| s.scaling.stream_peak_fraction = 1.2)),
            ("cpu factor > 1", Box::new(|s| s.scaling.stream_cpu_factor = 2.0)),
            ("accel < 1", Box::new(|s| s.scaling.hpl_accelerator_factor = 0.5)),
        ];
        for (label, mutate) in cases {
            let mut s = ClusterSpec::fire();
            mutate(&mut s);
            let err = s.validate().expect_err(label);
            assert!(err.to_string().contains("invalid cluster spec"), "{label}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let f = ClusterSpec::fire();
        let json = serde_json::to_string(&f).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn pre_fleet_json_defaults_pue_and_power() {
        // Specs serialized before the pue/power fields existed still load:
        // cut the trailing `"pue": …, "power": …` fields out of the JSON.
        let json = serde_json::to_string(&ClusterSpec::fire()).unwrap();
        let cut = json.find(",\"pue\"").expect("pue is serialized after the scaling params");
        let legacy = format!("{}}}", &json[..cut]);
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.pue, 1.0);
        assert!(back.power.is_none());
        assert_eq!(back, ClusterSpec::fire());
    }

    #[test]
    fn validation_rejects_bad_pue_and_power() {
        let mut sub_unity = ClusterSpec::fire();
        sub_unity.pue = 0.9;
        assert_eq!(sub_unity.validate().unwrap_err().field, "pue");
        let mut nan = ClusterSpec::fire();
        nan.pue = f64::NAN;
        assert_eq!(nan.validate().unwrap_err().field, "pue");
        // A power override whose idle draw exceeds its peak is rejected.
        let mut model = power_model::NodePowerModel::fire_node();
        model.cpu.idle_w = model.cpu.max_w + 10_000.0;
        let mut inverted = ClusterSpec::fire();
        inverted.power = Some(model);
        assert_eq!(inverted.validate().unwrap_err().field, "power");
    }

    #[test]
    fn with_pue_builder_sets_and_validates() {
        let spec = ClusterSpec::fire().with_pue(1.6);
        assert_eq!(spec.pue, 1.6);
        spec.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "PUE must be finite")]
    fn with_pue_rejects_sub_unity() {
        let _ = ClusterSpec::fire().with_pue(0.5);
    }

    #[test]
    fn node_power_override_beats_name_matching() {
        // A spec named like SystemG but carrying an explicit model uses it.
        let custom = power_model::NodePowerModel::sandy_bridge_node();
        let spec = ClusterSpec::system_g().with_node_power(custom.clone());
        assert_eq!(spec.node_power_model(), custom);
        spec.validate().unwrap();
        // And it survives serde, unlike name matching which is lossy.
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_power_model(), custom);
    }
}
