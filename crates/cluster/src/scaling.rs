//! Analytic performance-scaling models for the three benchmarks.
//!
//! These are the models that replace the physical clusters (DESIGN.md §2).
//! Each takes a [`ClusterSpec`] and a parallelism level and returns the
//! aggregate performance the cluster would report:
//!
//! * **HPL** — per-process performance is `clock × flops/cycle ×
//!   serial_efficiency`; parallel efficiency decays logarithmically with
//!   process count, `e(p) = 1 / (1 + κ·log₂ p)`, the standard shape for
//!   panel-broadcast-dominated LU at modest scale. Calibrated so Fire hits
//!   ≈ 90 GFLOPS at 128 processes and SystemG ≈ 8.1 TFLOPS at 1024.
//! * **STREAM** — per-node Triad bandwidth saturates with processes-per-node
//!   as `ppn / (ppn + k)` of the node's sustainable bandwidth: a few cores
//!   cannot fill the memory channels, many cores contend.
//! * **IOzone** — aggregate write throughput against the shared filesystem:
//!   linear in clients until the server cap, then degrading slightly per
//!   additional client (lock/metadata contention).

use crate::spec::ClusterSpec;

/// Aggregate HPL performance in GFLOPS for `processes` MPI ranks.
///
/// # Panics
/// Panics if `processes` is zero or exceeds the core count.
pub fn hpl_gflops(spec: &ClusterSpec, processes: usize) -> f64 {
    assert!(processes > 0, "need at least one process");
    assert!(
        processes <= spec.total_cores(),
        "cannot run {processes} processes on {} cores",
        spec.total_cores()
    );
    let per_core_peak = spec.node.clock_ghz * spec.node.flops_per_cycle;
    let serial = per_core_peak * spec.scaling.hpl_serial_efficiency;
    serial
        * processes as f64
        * hpl_parallel_efficiency(spec, processes)
        * spec.scaling.hpl_accelerator_factor
}

/// HPL parallel efficiency `e(p) = 1 / (1 + κ·log₂ p + μ·(p−1)/(P−1))`,
/// where `P` is the machine's core count. The logarithmic term models
/// pivot/panel broadcast depth; the linear Amdahl-style term models the
/// per-process update skew that eventually saturates aggregate performance.
pub fn hpl_parallel_efficiency(spec: &ClusterSpec, processes: usize) -> f64 {
    let p = processes as f64;
    let full = (spec.total_cores() as f64 - 1.0).max(1.0);
    1.0 / (1.0 + spec.scaling.hpl_kappa * p.log2() + spec.scaling.hpl_mu * (p - 1.0) / full)
}

/// Aggregate STREAM Triad bandwidth in MB/s (decimal) for `processes` ranks
/// spread round-robin across all nodes.
///
/// # Panics
/// Panics if `processes` is zero or exceeds the core count.
pub fn stream_mbps(spec: &ClusterSpec, processes: usize) -> f64 {
    assert!(processes > 0, "need at least one process");
    assert!(
        processes <= spec.total_cores(),
        "cannot run {processes} processes on {} cores",
        spec.total_cores()
    );
    let ppn = processes as f64 / spec.nodes as f64;
    let per_node_gbps = spec.node.mem_bandwidth_gbps
        * spec.scaling.stream_peak_fraction
        * saturation(ppn, spec.scaling.stream_k);
    per_node_gbps * spec.nodes as f64 * 1e3 // GB/s → MB/s
}

/// The saturation fraction achieved by `ppn` processes per node.
pub fn saturation(ppn: f64, k: f64) -> f64 {
    ppn / (ppn + k)
}

/// Aggregate IOzone write throughput in MB/s for `clients` nodes writing to
/// the shared filesystem.
///
/// # Panics
/// Panics if `clients` is zero or exceeds the node count.
pub fn io_mbps(spec: &ClusterSpec, clients: usize) -> f64 {
    assert!(clients > 0, "need at least one client");
    assert!(clients <= spec.nodes, "cannot run {clients} clients on {} nodes", spec.nodes);
    let fs = &spec.shared_fs;
    let ideal = (clients as f64 * fs.per_client_mbps).min(fs.server_cap_mbps);
    // Clients beyond the saturation point add contention, not throughput.
    let saturation_clients = fs.server_cap_mbps / fs.per_client_mbps;
    let excess = (clients as f64 - saturation_clients).max(0.0);
    ideal * (1.0 - fs.contention_loss * excess).max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fire_hits_paper_hpl_anchor() {
        // "The cluster is capable of delivering 90 GFLOPS on the LINPACK
        // benchmark" — calibration must land within 2%.
        let fire = ClusterSpec::fire();
        let g = hpl_gflops(&fire, 128);
        assert!((g - 90.0).abs() < 1.8, "Fire HPL at 128 procs: {g} GFLOPS");
    }

    #[test]
    fn system_g_hits_table1_anchor() {
        // Table I: 8.1 TFLOPS on 1024 cores.
        let g = hpl_gflops(&ClusterSpec::system_g(), 1024);
        assert!((g - 8100.0).abs() < 162.0, "SystemG HPL: {g} GFLOPS");
    }

    #[test]
    fn hpl_performance_monotone_in_processes() {
        let fire = ClusterSpec::fire();
        let mut prev = 0.0;
        for p in [1, 2, 4, 8, 16, 32, 64, 128] {
            let g = hpl_gflops(&fire, p);
            assert!(g > prev, "HPL perf must grow with processes (p={p})");
            prev = g;
        }
    }

    #[test]
    fn hpl_efficiency_decays_but_stays_positive() {
        let fire = ClusterSpec::fire();
        let e1 = hpl_parallel_efficiency(&fire, 1);
        let e128 = hpl_parallel_efficiency(&fire, 128);
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!(e128 < e1);
        // κ·log₂128 + μ ≈ 1.09 overhead ⇒ ~48% efficiency at full scale.
        assert!(e128 > 0.4);
    }

    #[test]
    fn stream_bandwidth_saturates() {
        let fire = ClusterSpec::fire();
        let bw16 = stream_mbps(&fire, 16);
        let bw64 = stream_mbps(&fire, 64);
        let bw128 = stream_mbps(&fire, 128);
        assert!(bw64 > bw16);
        assert!(bw128 > bw64);
        // Diminishing returns: the second doubling gains less than the first.
        assert!(bw128 / bw64 < bw64 / bw16);
        // Never exceeds the sustainable ceiling.
        let ceiling = fire.node.mem_bandwidth_gbps * fire.scaling.stream_peak_fraction * 8.0 * 1e3;
        assert!(bw128 < ceiling);
    }

    #[test]
    fn io_throughput_rises_then_declines() {
        // The server cap sits near 6 clients (379.2 / 65.3 ≈ 5.8): aggregate
        // rises until then, and contention erodes it afterwards.
        let fire = ClusterSpec::fire();
        let t1 = io_mbps(&fire, 1);
        let t2 = io_mbps(&fire, 2);
        let t6 = io_mbps(&fire, 6);
        let t8 = io_mbps(&fire, 8);
        assert!(t2 > t1, "second client should add throughput");
        assert!(t6 > t2, "aggregate grows until the server cap");
        assert!(t8 < t6, "contention should reduce aggregate past saturation");
        assert!(t8 > 0.8 * t6, "decline is gentle, not a collapse");
    }

    #[test]
    fn io_single_client_gets_its_full_rate() {
        let fire = ClusterSpec::fire();
        assert!((io_mbps(&fire, 1) - fire.shared_fs.per_client_mbps).abs() < 1e-9);
    }

    #[test]
    fn saturation_function_shape() {
        assert!(saturation(0.0, 1.0) == 0.0);
        assert!((saturation(1.0, 1.0) - 0.5).abs() < 1e-12);
        assert!(saturation(100.0, 1.0) > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        hpl_gflops(&ClusterSpec::fire(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn too_many_processes_panics() {
        hpl_gflops(&ClusterSpec::fire(), 129);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn too_many_clients_panics() {
        io_mbps(&ClusterSpec::fire(), 9);
    }

    proptest! {
        /// HPL perf never exceeds theoretical peak, for either cluster.
        #[test]
        fn prop_hpl_below_peak(p in 1usize..128) {
            for spec in [ClusterSpec::fire(), ClusterSpec::system_g()] {
                if p <= spec.total_cores() {
                    prop_assert!(hpl_gflops(&spec, p) < spec.peak_gflops());
                }
            }
        }

        /// STREAM bandwidth is monotone in process count.
        #[test]
        fn prop_stream_monotone(p in 1usize..127) {
            let fire = ClusterSpec::fire();
            prop_assert!(stream_mbps(&fire, p + 1) >= stream_mbps(&fire, p));
        }

        /// IO throughput is always positive and at most the server cap.
        #[test]
        fn prop_io_bounded(c in 1usize..8) {
            let fire = ClusterSpec::fire();
            let t = io_mbps(&fire, c);
            prop_assert!(t > 0.0);
            prop_assert!(t <= fire.shared_fs.server_cap_mbps + 1e-9);
        }
    }
}
