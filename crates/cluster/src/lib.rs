//! # cluster-sim — analytic simulator of the paper's two clusters
//!
//! The paper's experiments run on hardware this reproduction does not have:
//! *Fire* (8 nodes, 2× AMD Opteron 6134, 128 cores, 90 GFLOPS HPL) and the
//! reference *SystemG* (Mac Pros with 2× Xeon 5462; 128 nodes / 1024 cores
//! used; 8.1 TFLOPS HPL). This crate simulates them:
//!
//! * [`spec`] — parameterized machine descriptions with both clusters as
//!   presets, each paired with its [`power_model::NodePowerModel`].
//! * [`scaling`] — analytic performance models for the three benchmarks:
//!   HPL parallel efficiency vs process count, STREAM per-node bandwidth
//!   saturation, and shared-filesystem I/O contention. Model shapes follow
//!   the standard cluster-behaviour literature and are calibrated to the
//!   paper's anchor points (Fire ≈ 90 GFLOPS at 128 processes, SystemG ≈
//!   8.1 TFLOPS at 1024).
//! * [`workload`] — benchmark workload descriptors (which benchmark, how
//!   many processes / active nodes).
//! * [`execution`] — the engine: run a workload on a cluster, producing
//!   wall time, performance, a metered power trace (through the simulated
//!   Watts Up? PRO at the PDU), and a ready-to-use `tgi_core::Measurement`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod execution;
pub mod fleet;
pub mod power_cap;
pub mod scaling;
pub mod spec;
pub mod workload;

pub use execution::{fleet_trace_set, ExecutionEngine, MemoizedEngine, SimulatedRun};
pub use fleet::FleetConfig;
pub use power_cap::{run_capped, CappedRun};
pub use spec::{ClusterSpec, InterconnectSpec, NodeSpec, SharedFsSpec};
pub use workload::Workload;
