//! Power capping: run under a facility power budget.
//!
//! Data centers increasingly operate under hard power caps (breaker limits,
//! demand-response contracts). Given a cap, the operator's lever on this
//! generation of hardware is DVFS: find the highest clock at which the
//! cluster's draw under the workload stays within budget. This module does
//! that by bisection over the frequency ratio, then reports the capped
//! run's performance and energy — the substrate for capped-TGI studies.

use crate::execution::{ExecutionEngine, SimulatedRun};
use crate::spec::ClusterSpec;
use crate::workload::Workload;

/// The DVFS range the search may use.
pub const MIN_RATIO: f64 = 0.1;
/// Upper bound of the DVFS range (nominal clock).
pub const MAX_RATIO: f64 = 1.0;

/// Outcome of a capped run.
#[derive(Debug, Clone, PartialEq)]
pub struct CappedRun {
    /// The clock ratio the search settled on.
    pub freq_ratio: f64,
    /// The run at that setting.
    pub run: SimulatedRun,
    /// The cap that was enforced, watts.
    pub cap_watts: f64,
    /// Whether the cap was satisfiable at all within the DVFS range.
    pub satisfied: bool,
}

/// Finds the highest frequency ratio at which `workload` at `processes`
/// ranks stays within `cap_watts`, by bisection (power is monotone in the
/// clock). If even the lowest clock exceeds the cap, returns the
/// lowest-clock run with `satisfied = false`.
///
/// # Panics
/// Panics if `cap_watts` is not strictly positive.
pub fn run_capped(
    cluster: &ClusterSpec,
    workload: Workload,
    processes: usize,
    cap_watts: f64,
) -> CappedRun {
    assert!(cap_watts > 0.0, "power cap must be positive");
    let power_at = |ratio: f64| {
        ExecutionEngine::new(cluster.clone()).with_frequency_ratio(ratio).run(workload, processes)
    };

    // Fast paths: unconstrained, or unsatisfiable.
    let full = power_at(MAX_RATIO);
    if full.average_power.value() <= cap_watts {
        return CappedRun { freq_ratio: MAX_RATIO, run: full, cap_watts, satisfied: true };
    }
    let floor = power_at(MIN_RATIO);
    if floor.average_power.value() > cap_watts {
        return CappedRun { freq_ratio: MIN_RATIO, run: floor, cap_watts, satisfied: false };
    }

    // Bisection on the monotone power-vs-clock curve.
    let (mut lo, mut hi) = (MIN_RATIO, MAX_RATIO);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid).average_power.value() <= cap_watts {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let run = power_at(lo);
    CappedRun { freq_ratio: lo, run, cap_watts, satisfied: true }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hpl() -> Workload {
        Workload::Hpl { n: 40_000 }
    }

    #[test]
    fn loose_cap_runs_at_full_clock() {
        let capped = run_capped(&ClusterSpec::fire(), hpl(), 128, 100_000.0);
        assert_eq!(capped.freq_ratio, MAX_RATIO);
        assert!(capped.satisfied);
    }

    #[test]
    fn tight_cap_lowers_clock_and_respects_budget() {
        let fire = ClusterSpec::fire();
        let full = ExecutionEngine::new(fire.clone()).run(hpl(), 128);
        let cap = full.average_power.value() * 0.85;
        let capped = run_capped(&fire, hpl(), 128, cap);
        assert!(capped.satisfied);
        assert!(capped.freq_ratio < 1.0, "clock must drop, got {}", capped.freq_ratio);
        assert!(
            capped.run.average_power.value() <= cap * 1.001,
            "{} over cap {cap}",
            capped.run.average_power
        );
        // And the search is tight: within 2% of the cap.
        assert!(
            capped.run.average_power.value() >= cap * 0.97,
            "cap left on the table: {} vs {cap}",
            capped.run.average_power
        );
        // Performance degrades gracefully (linearly in the clock).
        assert!(
            (capped.run.performance.as_gflops() - full.performance.as_gflops() * capped.freq_ratio)
                .abs()
                < 1e-6 * full.performance.as_gflops()
        );
    }

    #[test]
    fn impossible_cap_reports_unsatisfied() {
        let capped = run_capped(&ClusterSpec::fire(), hpl(), 128, 500.0);
        assert!(!capped.satisfied);
        assert_eq!(capped.freq_ratio, MIN_RATIO);
        assert!(capped.run.average_power.value() > 500.0);
    }

    #[test]
    fn tighter_caps_give_lower_clocks() {
        let fire = ClusterSpec::fire();
        let full = ExecutionEngine::new(fire.clone()).run(hpl(), 128);
        let base = full.average_power.value();
        let a = run_capped(&fire, hpl(), 128, base * 0.95).freq_ratio;
        let b = run_capped(&fire, hpl(), 128, base * 0.85).freq_ratio;
        assert!(b < a, "tighter cap must lower the clock more: {a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_panics() {
        run_capped(&ClusterSpec::fire(), hpl(), 16, 0.0);
    }
}
