//! Synthetic Green500 fleet generation.
//!
//! The paper evaluates two machines; the ROADMAP's north star is *fleet*
//! scale — hundreds of parameterized systems ranked by TGI. This module
//! samples [`ClusterSpec`]s from Top500-style distributions ("Green HPC: an
//! analysis of the domain based on Top500" gives the statistical shape):
//!
//! * **node count** — log-normal (the list is dominated by mid-size
//!   clusters with a long tail of huge ones), clamped to `[4, 4096]`;
//! * **cores per node** — categorical over socket × core-count configs of
//!   the 2008–2012 hardware generations the paper spans;
//! * **per-node idle/peak wall watts** — sampled targets realized by
//!   inverting the PSU curve and splitting the DC budget across component
//!   models, so every generated node obeys the same physics as the presets;
//! * **interconnect class** — categorical from GigE to IB-FDR, with the
//!   NIC power model matched to the link generation;
//! * **PUE** — optional facility overhead in `[1.05, 1.9]` (Wattlytics
//!   motivates carrying facility burden into efficiency metrics).
//!
//! Generation is **deterministic and order-independent**: each spec is
//! derived from a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! stream seeded by `(fleet seed, index)` alone, so
//! [`FleetConfig::generate_par`] (over the rayon shim) produces bitwise
//! the same fleet as [`FleetConfig::generate`] at any thread count — the
//! property the golden test pins down.

use crate::spec::{ClusterSpec, InterconnectSpec, NodeSpec, ScalingParams, SharedFsSpec};
use power_model::components::{BaseboardPower, CpuPower, DiskPower, MemoryPower, NicPower};
use power_model::psu::PsuEfficiency;
use power_model::{AcceleratorPower, NodePowerModel};
use rayon::prelude::*;

/// SplitMix64: a tiny, high-quality, seekable PRNG. Each fleet index gets
/// its own stream, which is what makes parallel generation bit-identical
/// to sequential — no shared mutable RNG state, no draw-order coupling.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (two uniforms per draw; the second
    /// variate is discarded to keep the draw count deterministic).
    fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given median and shape σ.
    fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.normal()).exp()
    }

    /// Index into `weights` with probability proportional to the weight.
    fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// One interconnect generation: link characteristics plus the matching
/// host-adapter power band.
struct InterconnectClass {
    name: &'static str,
    latency_us: f64,
    bandwidth_gbps: f64,
    nic_idle_w: f64,
    nic_active_w: f64,
    /// Top500-style prevalence weight.
    weight: f64,
}

const INTERCONNECTS: [InterconnectClass; 5] = [
    InterconnectClass {
        name: "GigE",
        latency_us: 50.0,
        bandwidth_gbps: 1.0,
        nic_idle_w: 2.0,
        nic_active_w: 4.0,
        weight: 0.30,
    },
    InterconnectClass {
        name: "10GigE",
        latency_us: 12.0,
        bandwidth_gbps: 10.0,
        nic_idle_w: 4.0,
        nic_active_w: 10.0,
        weight: 0.15,
    },
    InterconnectClass {
        name: "IB-DDR",
        latency_us: 2.5,
        bandwidth_gbps: 20.0,
        nic_idle_w: 6.0,
        nic_active_w: 14.0,
        weight: 0.20,
    },
    InterconnectClass {
        name: "IB-QDR",
        latency_us: 1.5,
        bandwidth_gbps: 40.0,
        nic_idle_w: 8.0,
        nic_active_w: 18.0,
        weight: 0.25,
    },
    InterconnectClass {
        name: "IB-FDR",
        latency_us: 0.7,
        bandwidth_gbps: 56.0,
        nic_idle_w: 9.0,
        nic_active_w: 21.0,
        weight: 0.10,
    },
];

/// Socket-count × cores-per-socket configurations of the era, with
/// Top500-ish prevalence weights.
const CPU_CONFIGS: [(usize, usize, f64); 6] =
    [(2, 4, 0.30), (2, 6, 0.20), (2, 8, 0.25), (1, 8, 0.05), (4, 8, 0.10), (2, 12, 0.10)];

/// Configuration for one synthetic fleet.
///
/// `FleetConfig::new(seed)` gives the defaults the synthetic Green500 uses:
/// 500 systems with PUE sampling enabled. Every knob is builder-style.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Master seed; the entire fleet is a pure function of this (and the
    /// other fields).
    pub seed: u64,
    /// Number of systems to generate.
    pub systems: usize,
    /// Sample a facility PUE in `[1.05, 1.9]` per system; when `false`
    /// every spec keeps the default PUE of 1 (meter reads IT power).
    pub sample_pue: bool,
}

impl FleetConfig {
    /// Default fleet: 500 systems (a Top500-scale list) with PUE sampling.
    pub fn new(seed: u64) -> Self {
        FleetConfig { seed, systems: 500, sample_pue: true }
    }

    /// Sets the fleet size (builder style).
    pub fn systems(mut self, systems: usize) -> Self {
        assert!(systems > 0, "fleet must contain at least one system");
        self.systems = systems;
        self
    }

    /// Enables or disables PUE sampling (builder style).
    pub fn sample_pue(mut self, sample: bool) -> Self {
        self.sample_pue = sample;
        self
    }

    /// Generates the fleet sequentially. Every spec passes
    /// [`ClusterSpec::validate`] by construction.
    pub fn generate(&self) -> Vec<ClusterSpec> {
        (0..self.systems).map(|i| self.generate_one(i)).collect()
    }

    /// Generates the fleet over the rayon shim. Bitwise identical to
    /// [`FleetConfig::generate`] at any thread count: each index draws
    /// from its own seeded stream, so no ordering effects exist.
    pub fn generate_par(&self) -> Vec<ClusterSpec> {
        (0..self.systems as u64).into_par_iter().map(|i| self.generate_one(i as usize)).collect()
    }

    /// Generates the `index`-th system of this fleet — a pure function of
    /// `(seed, config, index)`.
    pub fn generate_one(&self, index: usize) -> ClusterSpec {
        assert!(index < self.systems, "index {index} out of range for {} systems", self.systems);
        // Decorrelate per-index streams: mix the index into the seed with
        // the golden-gamma stride and one extra SplitMix64 scramble.
        let stream = self.seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ 0x5851_F42D_4C95_7F2D;
        let mut rng = SplitMix64::new(SplitMix64::new(stream).next_u64());

        // --- Scale: node count log-normal, median 64, heavy right tail.
        let nodes = rng.log_normal(64.0, 1.1).round().clamp(4.0, 4096.0) as usize;

        // --- Node hardware.
        let cfg = rng.categorical(&CPU_CONFIGS.map(|(_, _, w)| w));
        let (sockets, cores_per_socket, _) = CPU_CONFIGS[cfg];
        let clock_ghz = (rng.uniform(1.8, 3.2) * 10.0).round() / 10.0;
        // SSE-era (4 FLOPs/cycle) vs AVX-era (8) split.
        let flops_per_cycle = if rng.next_f64() < 0.55 { 4.0 } else { 8.0 };
        let cores = sockets * cores_per_socket;
        let memory_gib = (cores as f64 * rng.uniform(1.0, 4.0)).round().max(4.0);
        // Bandwidth scales with socket count and DRAM generation.
        let mem_bandwidth_gbps = (sockets as f64 * rng.uniform(12.0, 52.0) * 10.0).round() / 10.0;

        // --- Interconnect class.
        let ic = &INTERCONNECTS[rng.categorical(&INTERCONNECTS.map(|c| c.weight))];

        // --- Optional accelerators (a minority of the list, as in the
        // early-2010s Top500): boards speed up HPL and add power draw.
        let accel_boards =
            if rng.next_f64() < 0.15 { 1 + (rng.next_u64() % 2) as usize } else { 0 };

        // --- Per-node power targets (wall watts), Top500-band log-normals.
        let idle_target = rng.log_normal(140.0, 0.30).clamp(60.0, 400.0);
        let dynamic_ratio = rng.uniform(1.8, 3.0);
        let peak_target = (idle_target * dynamic_ratio).clamp(idle_target + 50.0, 1200.0);
        let power = build_node_power(
            &mut rng,
            sockets,
            memory_gib,
            ic,
            accel_boards,
            idle_target,
            peak_target,
        );

        // --- Scaling-model parameters in the band spanned by the presets.
        let scaling = ScalingParams {
            hpl_serial_efficiency: rng.uniform(0.15, 0.9),
            hpl_kappa: rng.uniform(0.02, 0.06),
            hpl_mu: rng.uniform(0.0, 0.8),
            stream_k: rng.uniform(0.9, 1.6),
            stream_peak_fraction: rng.uniform(0.5, 0.75),
            stream_cpu_factor: rng.uniform(0.1, 1.0),
            hpl_accelerator_factor: if accel_boards > 0 {
                1.0 + accel_boards as f64 * rng.uniform(2.0, 3.0)
            } else {
                1.0
            },
        };

        // --- Shared filesystem sized to the cluster.
        let per_client_mbps = rng.uniform(60.0, 300.0);
        let shared_fs = SharedFsSpec {
            per_client_mbps,
            server_cap_mbps: per_client_mbps * rng.uniform(4.0, 16.0),
            contention_loss: rng.uniform(0.001, 0.05),
        };

        let pue =
            if self.sample_pue { (rng.uniform(1.05, 1.9) * 100.0).round() / 100.0 } else { 1.0 };

        let spec = ClusterSpec {
            name: format!("g500-{index:03}"),
            nodes,
            node: NodeSpec {
                cpu_model: format!(
                    "synthetic {sockets}x{cores_per_socket}c @ {clock_ghz:.1} GHz, {}",
                    ic.name
                ),
                sockets,
                cores_per_socket,
                clock_ghz,
                flops_per_cycle,
                memory_gib,
                mem_bandwidth_gbps,
            },
            interconnect: InterconnectSpec {
                latency_us: ic.latency_us,
                bandwidth_gbps: ic.bandwidth_gbps,
            },
            shared_fs,
            scaling,
            pue,
            power: Some(power),
        };
        debug_assert!(spec.validate().is_ok(), "generated spec must validate");
        spec
    }
}

/// Builds a [`NodePowerModel`] whose idle/peak *wall* power lands on the
/// sampled targets: fixed components (memory, disk, NIC, baseboard,
/// accelerator) are set from the hardware config, the PSU curve is
/// inverted by bisection to find the DC budgets, and the CPU model absorbs
/// the remainder.
fn build_node_power(
    rng: &mut SplitMix64,
    sockets: usize,
    memory_gib: f64,
    ic: &InterconnectClass,
    accel_boards: usize,
    idle_target_wall: f64,
    peak_target_wall: f64,
) -> NodePowerModel {
    let dimms = ((memory_gib / 4.0).round() as usize).clamp(2, 16);
    let memory = MemoryPower {
        idle_w_per_dimm: rng.uniform(2.0, 6.0),
        active_w_per_dimm: rng.uniform(6.0, 11.0),
        dimms,
    };
    let disk =
        DiskPower { idle_w: rng.uniform(3.0, 6.0), active_w: rng.uniform(8.0, 12.0), drives: 1 };
    let nic = NicPower { idle_w: ic.nic_idle_w, active_w: ic.nic_active_w };
    let accelerator = if accel_boards > 0 {
        AcceleratorPower::fermi_class(accel_boards)
    } else {
        AcceleratorPower::none()
    };
    let alpha = rng.uniform(1.1, 2.2);

    // Fixed (non-CPU) DC draw at the two anchor points.
    let accel_idle = accelerator.power(0.0).value();
    let accel_peak = accelerator.power(1.0).value();
    let baseboard_w = rng.uniform(20.0, 50.0);
    let fixed_idle = memory.power(0.0).value()
        + disk.power(0.0).value()
        + nic.power(0.0).value()
        + baseboard_w
        + accel_idle;
    let fixed_peak = memory.power(1.0).value()
        + disk.power(1.0).value()
        + nic.power(1.0).value()
        + baseboard_w
        + accel_peak;

    // Rated PSU comfortably above the peak DC draw (efficiency curves are
    // defined on load fraction of rating).
    let rated_w = (peak_target_wall * 1.3).max(500.0);
    let psu = PsuEfficiency::bronze(rated_w);

    // Invert wall → DC at both anchors, then give the CPU the remainder.
    // Clamps keep the model valid even when a low idle target collides
    // with the fixed components' floor.
    let dc_idle = invert_psu(&psu, idle_target_wall);
    let dc_peak = invert_psu(&psu, peak_target_wall);
    let s = sockets as f64;
    let cpu_idle_w = ((dc_idle - fixed_idle) / s).max(5.0);
    let cpu_max_w = ((dc_peak - fixed_peak) / s).max(cpu_idle_w + 20.0);

    NodePowerModel {
        cpu: CpuPower { idle_w: cpu_idle_w, max_w: cpu_max_w, alpha, sockets },
        memory,
        disk,
        nic,
        baseboard: BaseboardPower { w: baseboard_w },
        accelerator,
        psu,
    }
}

/// Finds the DC power whose wall reading equals `wall_target` by bisection
/// — [`PsuEfficiency::wall_power`] is strictly monotone in DC draw.
fn invert_psu(psu: &PsuEfficiency, wall_target: f64) -> f64 {
    let (mut lo, mut hi) = (0.0, wall_target);
    debug_assert!(psu.wall_power(tgi_core::Watts::new(hi)).value() >= wall_target);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if psu.wall_power(tgi_core::Watts::new(mid)).value() < wall_target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_valid() {
        let cfg = FleetConfig::new(42).systems(40);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        for spec in &a {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn parallel_generation_matches_sequential_bitwise() {
        let cfg = FleetConfig::new(7).systems(64);
        let seq = cfg.generate();
        let par = cfg.generate_par();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // PartialEq on f64 fields is bitwise here: all values come from
            // the same integer PRNG stream and arithmetic.
            assert_eq!(s, p);
            assert_eq!(serde_json::to_string(s).unwrap(), serde_json::to_string(p).unwrap());
        }
    }

    #[test]
    fn seeds_give_different_fleets() {
        let a = FleetConfig::new(1).systems(10).generate();
        let b = FleetConfig::new(2).systems(10).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn specs_hit_sampled_power_band_and_physics() {
        for spec in FleetConfig::new(3).systems(30).generate() {
            let model = spec.node_power_model();
            let idle = model.idle_wall_power().value();
            let peak = model.peak_wall_power().value();
            assert!(idle > 30.0 && idle < 900.0, "{}: idle {idle}", spec.name);
            assert!(peak > idle, "{}: peak {peak} <= idle {idle}", spec.name);
            assert!((4..=4096).contains(&spec.nodes), "{}", spec.name);
            assert!(spec.pue >= 1.05 && spec.pue <= 1.9, "{}: pue {}", spec.name, spec.pue);
        }
    }

    #[test]
    fn pue_sampling_can_be_disabled() {
        for spec in FleetConfig::new(5).systems(10).sample_pue(false).generate() {
            assert_eq!(spec.pue, 1.0);
        }
    }

    #[test]
    fn fleet_diversity_spans_interconnect_classes() {
        let fleet = FleetConfig::new(11).systems(200).generate();
        let mut bandwidths: Vec<u64> =
            fleet.iter().map(|s| s.interconnect.bandwidth_gbps.to_bits()).collect();
        bandwidths.sort_unstable();
        bandwidths.dedup();
        assert!(bandwidths.len() >= 4, "200 systems should span >= 4 interconnect classes");
        let accelerated = fleet.iter().filter(|s| s.scaling.hpl_accelerator_factor > 1.0).count();
        assert!(accelerated > 0, "some systems should carry accelerators");
        assert!(accelerated < fleet.len() / 2, "accelerated systems stay a minority");
    }

    #[test]
    fn psu_inversion_round_trips() {
        let psu = PsuEfficiency::bronze(800.0);
        for target in [80.0, 150.0, 400.0, 700.0] {
            let dc = invert_psu(&psu, target);
            let wall = psu.wall_power(tgi_core::Watts::new(dc)).value();
            assert!((wall - target).abs() < 1e-6, "target {target} -> wall {wall}");
        }
    }

    #[test]
    fn every_spec_is_runnable_by_the_engine() {
        // Smoke: the first few generated systems run a tiny suite without
        // panicking and produce sane measurements.
        for spec in FleetConfig::new(9).systems(4).generate() {
            let cores = spec.total_cores();
            let engine = crate::ExecutionEngine::new(spec);
            let run = engine.run(crate::Workload::Hpl { n: 8_192 }, cores.min(64));
            assert!(run.performance.as_gflops() > 0.0);
            assert!(run.average_power.value() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn generate_one_rejects_out_of_range_index() {
        let _ = FleetConfig::new(1).systems(3).generate_one(3);
    }
}
