//! Thread-count oracle tests: every parallel kernel must agree with its
//! sequential reference at 1, 2 and N threads.
//!
//! The rayon shim's mutable iterators split via `split_at_mut`, so kernels
//! whose tasks write disjoint output chunks (GEMM, PTRANS, the LU trailing
//! update, FFT butterflies) perform exactly the same arithmetic in every
//! configuration — those are checked **bit-identical** across thread
//! counts. STREAM and GUPS validate against their own analytic/replayed
//! references; the racy GUPS table uses atomic XOR, so its verification is
//! exact too.
//!
//! These tests run on the process-wide dispatched SIMD path (whatever
//! `TGI_KERNEL_ISA` / auto-detection selects), so a CI leg with
//! `TGI_KERNEL_ISA=scalar` re-proves every property on the scalar path;
//! per-ISA cross-checks live in `simd_oracle.rs`.

use hpc_kernels::fft::{self, Direction};
use hpc_kernels::gemm::{dgemm, dgemm_naive, dgemm_with_isa};
use hpc_kernels::lu;
use hpc_kernels::ptrans::transpose_add;
use hpc_kernels::random_access::{self, GupsConfig};
use hpc_kernels::stream::{self, StreamConfig};
use hpc_kernels::{Complex64, Matrix};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

#[test]
fn gemm_bit_identical_across_thread_counts_and_close_to_naive() {
    for (m, k, n) in [(64, 64, 64), (130, 70, 33), (257, 256, 9)] {
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let c0 = Matrix::random(m, n, 3);

        let mut expected = c0.clone();
        dgemm_naive(1.5, &a, &b, 0.5, &mut expected);

        let mut reference: Option<Matrix> = None;
        for threads in THREAD_COUNTS {
            let mut c = c0.clone();
            with_threads(threads, || dgemm(1.5, &a, &b, 0.5, &mut c));
            assert!(
                c.max_abs_diff(&expected) < 1e-10,
                "({m},{k},{n}) at {threads} threads diverges from naive"
            );
            match &reference {
                None => reference = Some(c),
                Some(r) => assert_eq!(
                    r.as_slice(),
                    c.as_slice(),
                    "({m},{k},{n}): {threads}-thread GEMM is not bit-identical"
                ),
            }
        }
    }
}

#[test]
fn default_dispatch_equals_explicit_active_isa() {
    // `dgemm` is a thin wrapper over `dgemm_with_isa(active(), ..)`; if
    // dispatch ever drifted (e.g. resolved per task instead of per call
    // tree), the results would stop being bit-equal.
    let (m, k, n) = (130, 70, 33);
    let a = Matrix::random(m, k, 1);
    let b = Matrix::random(k, n, 2);
    let c0 = Matrix::random(m, n, 3);
    let mut via_wrapper = c0.clone();
    dgemm(1.5, &a, &b, 0.5, &mut via_wrapper);
    let mut via_isa = c0.clone();
    dgemm_with_isa(hpc_kernels::simd::active(), 1.5, &a, &b, 0.5, &mut via_isa);
    assert_eq!(via_wrapper.as_slice(), via_isa.as_slice());
}

#[test]
fn ptrans_exactly_matches_naive_at_every_thread_count() {
    let (m, n) = (130, 70);
    let a = Matrix::random(m, n, 5);
    let add = Matrix::random(n, m, 6);
    // Transpose-add performs one addition per element: no reassociation,
    // so the parallel result must equal the naive loop exactly.
    let mut expected = Matrix::zeros(n, m);
    for j in 0..n {
        for i in 0..m {
            expected[(j, i)] = a[(i, j)] + add[(j, i)];
        }
    }
    for threads in THREAD_COUNTS {
        let mut out = Matrix::zeros(n, m);
        with_threads(threads, || transpose_add(&a, &add, &mut out));
        assert_eq!(out.as_slice(), expected.as_slice(), "{threads} threads");
    }
}

#[test]
fn lu_factorization_bit_identical_across_thread_counts() {
    let n = 160;
    let a = Matrix::random(n, n, 7);
    let mut reference: Option<(Matrix, Vec<usize>)> = None;
    for threads in THREAD_COUNTS {
        let mut fact = a.clone();
        let piv = with_threads(threads, || lu::factor_blocked(&mut fact, 32)).unwrap();
        match &reference {
            None => reference = Some((fact, piv)),
            Some((rf, rp)) => {
                assert_eq!(rp, &piv, "{threads}-thread pivots differ");
                assert_eq!(
                    rf.as_slice(),
                    fact.as_slice(),
                    "{threads}-thread LU factors are not bit-identical"
                );
            }
        }
    }
}

#[test]
fn fft_matches_naive_dft_and_is_deterministic() {
    let n = 1 << 10;
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let input: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
    let expected = fft::dft_naive(&input, Direction::Forward);

    let mut reference: Option<Vec<Complex64>> = None;
    for threads in THREAD_COUNTS {
        let mut data = input.clone();
        with_threads(threads, || fft::fft(&mut data, Direction::Forward));
        for (got, want) in data.iter().zip(&expected) {
            assert!((*got - *want).abs() < 1e-9 * n as f64, "{threads} threads vs naive DFT");
        }
        match &reference {
            None => reference = Some(data),
            Some(r) => assert_eq!(r, &data, "{threads}-thread FFT is not bit-identical"),
        }
    }
}

#[test]
fn stream_validates_at_every_thread_count() {
    for threads in THREAD_COUNTS {
        let r = with_threads(threads, || stream::run(StreamConfig::small()));
        assert!(
            r.validated,
            "{threads} threads: results check failed (rel err {})",
            r.max_relative_error
        );
        assert!(r.triad_mbps().is_finite() && r.triad_mbps() > 0.0);
    }
}

#[test]
fn gups_verification_is_exact_at_every_thread_count() {
    for threads in THREAD_COUNTS {
        let r = with_threads(threads, || random_access::run(GupsConfig::new(10)));
        assert!(r.passed, "{threads} threads: verification failed");
        assert_eq!(
            r.error_fraction, 0.0,
            "{threads} threads: atomic XOR updates must replay exactly"
        );
        assert!(r.gups.is_finite() && r.gups > 0.0);
    }
}
