//! SIMD-path oracle tests: every dispatched ISA must agree with the
//! scalar reference, and each single path must be deterministic across
//! thread counts.
//!
//! Two distinct contracts, matching `crate::simd`'s documentation:
//!
//! * **Across ISAs** — the vector paths contract `a·b + c` into fused
//!   multiply-adds, so their results differ from scalar by FMA rounding
//!   only. GEMM and LU are compared against the scalar path with an
//!   FMA-aware tolerance `k · 1e-14` (inputs lie in `[-0.5, 0.5)`, so
//!   each of the `k` accumulated products carries at most a few ulps of
//!   contraction difference). STREAM and GUPS need no tolerance at all:
//!   STREAM's values stay exactly representable integers and the GUPS
//!   bit stream is defined to be identical on every path.
//! * **Within one ISA** — a fixed path performs a thread-count-independent
//!   sequence of operations per output element, so 1/2/4-thread runs must
//!   be bit-identical.
//!
//! The `TGI_KERNEL_ISA` override is exercised in subprocesses (the
//! selection is cached per process, so forcing it in-process would race
//! with every other test).

use hpc_kernels::gemm::dgemm_with_isa;
use hpc_kernels::lu;
use hpc_kernels::random_access::{self, GupsConfig};
use hpc_kernels::simd::{self, Isa, KERNEL_ISA_ENV};
use hpc_kernels::stream::{self, StreamConfig};
use hpc_kernels::Matrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Shapes that straddle the 8×4 microkernel grid: exact tiles, fringe
/// rows, fringe columns, and sub-tile problems.
const GEMM_SHAPES: [(usize, usize, usize); 5] =
    [(64, 64, 64), (130, 70, 33), (8, 256, 4), (7, 5, 3), (65, 129, 31)];

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

#[test]
fn gemm_every_supported_isa_matches_scalar_within_fma_tolerance() {
    for isa in simd::supported() {
        for (m, k, n) in GEMM_SHAPES {
            let a = Matrix::random(m, k, 11);
            let b = Matrix::random(k, n, 12);
            let c0 = Matrix::random(m, n, 13);

            let mut want = c0.clone();
            dgemm_with_isa(Isa::Scalar, 1.5, &a, &b, 0.5, &mut want);
            let mut got = c0.clone();
            dgemm_with_isa(isa, 1.5, &a, &b, 0.5, &mut got);

            let tol = k as f64 * 1e-14;
            let diff = got.max_abs_diff(&want);
            assert!(diff <= tol, "{isa} ({m},{k},{n}): |Δ| = {diff:e} > {tol:e}");
        }
    }
}

#[test]
fn gemm_each_isa_is_bit_identical_across_thread_counts() {
    for isa in simd::supported() {
        for (m, k, n) in [(130, 70, 33), (65, 129, 31)] {
            let a = Matrix::random(m, k, 21);
            let b = Matrix::random(k, n, 22);
            let c0 = Matrix::random(m, n, 23);
            let mut reference: Option<Matrix> = None;
            for threads in THREAD_COUNTS {
                let mut c = c0.clone();
                with_threads(threads, || dgemm_with_isa(isa, 1.5, &a, &b, 0.5, &mut c));
                match &reference {
                    None => reference = Some(c),
                    Some(r) => assert_eq!(
                        r.as_slice(),
                        c.as_slice(),
                        "{isa} ({m},{k},{n}): {threads}-thread run is not bit-identical"
                    ),
                }
            }
        }
    }
}

#[test]
fn lu_every_supported_isa_matches_scalar_within_fma_tolerance() {
    let n = 160;
    let a = Matrix::random(n, n, 31);
    let mut want = a.clone();
    let piv_want = lu::factor_blocked_with_isa(Isa::Scalar, &mut want, 32).unwrap();
    for isa in simd::supported() {
        let mut got = a.clone();
        let piv_got = lu::factor_blocked_with_isa(isa, &mut got, 32).unwrap();
        // Pivoting compares magnitudes: FMA-level perturbations do not
        // flip a partial-pivot choice on a random (well-separated) matrix.
        assert_eq!(piv_want, piv_got, "{isa}: pivot sequence diverged");
        // Factor entries accumulate ~n FMA-contracted products, and
        // division by pivots amplifies; n·1e-13 bounds the drift while
        // still catching any real kernel bug by orders of magnitude.
        let tol = n as f64 * 1e-13;
        let diff = got.max_abs_diff(&want);
        assert!(diff <= tol, "{isa}: |Δ| = {diff:e} > {tol:e}");
    }
}

#[test]
fn lu_each_isa_is_bit_identical_across_thread_counts() {
    let n = 160;
    let a = Matrix::random(n, n, 41);
    for isa in simd::supported() {
        let mut reference: Option<(Matrix, Vec<usize>)> = None;
        for threads in THREAD_COUNTS {
            let mut fact = a.clone();
            let piv =
                with_threads(threads, || lu::factor_blocked_with_isa(isa, &mut fact, 32)).unwrap();
            match &reference {
                None => reference = Some((fact, piv)),
                Some((rf, rp)) => {
                    assert_eq!(rp, &piv, "{isa}: {threads}-thread pivots differ");
                    assert_eq!(
                        rf.as_slice(),
                        fact.as_slice(),
                        "{isa}: {threads}-thread factors are not bit-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn stream_validates_on_every_supported_isa_and_thread_count() {
    for isa in simd::supported() {
        for threads in THREAD_COUNTS {
            let r = with_threads(threads, || stream::run_with_isa(isa, StreamConfig::small()));
            // STREAM's values remain exact integers below 2^53, so even
            // the FMA paths must validate to zero error.
            assert!(r.validated, "{isa} at {threads} threads: rel err {}", r.max_relative_error);
            assert_eq!(r.max_relative_error, 0.0, "{isa} at {threads} threads");
        }
    }
}

#[test]
fn gups_replay_is_exact_on_every_supported_isa_and_thread_count() {
    for isa in simd::supported() {
        for threads in THREAD_COUNTS {
            let r = with_threads(threads, || random_access::run_with_isa(isa, GupsConfig::new(10)));
            assert!(r.passed, "{isa} at {threads} threads");
            assert_eq!(r.error_fraction, 0.0, "{isa} at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// TGI_KERNEL_ISA handling, in subprocesses (active() caches per process).
// ---------------------------------------------------------------------------

/// Re-runs this test binary filtered to one inner test with a controlled
/// environment, returning whether it passed.
fn subprocess(test_name: &str, isa_value: &str) -> std::process::Output {
    let exe = std::env::current_exe().expect("test binary path");
    std::process::Command::new(exe)
        .args([test_name, "--exact", "--include-ignored", "--test-threads", "1"])
        .env(KERNEL_ISA_ENV, isa_value)
        .output()
        .expect("subprocess spawns")
}

/// Inner probe: only meaningful under the subprocess driver below.
#[test]
#[ignore = "subprocess probe for forced_scalar_env_is_honored"]
fn probe_active_matches_forced_env() {
    let want = std::env::var(KERNEL_ISA_ENV).expect("driver sets the env");
    assert_eq!(simd::active().name(), want);
}

#[test]
fn forced_scalar_env_is_honored() {
    let out = subprocess("probe_active_matches_forced_env", "scalar");
    assert!(
        out.status.success(),
        "forced scalar not honored:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Inner probe: resolving an unknown ISA must panic loudly.
#[test]
#[ignore = "subprocess probe for unknown_isa_value_fails_loudly"]
fn probe_active_with_bad_env() {
    let _ = simd::active();
}

#[test]
fn unknown_isa_value_fails_loudly() {
    let out = subprocess("probe_active_with_bad_env", "sse9");
    assert!(
        !out.status.success(),
        "unknown {KERNEL_ISA_ENV} value must panic, not silently fall back"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sse9"), "panic should name the bad value:\n{text}");
}
