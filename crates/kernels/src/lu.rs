//! LU factorization with row partial pivoting — the algorithmic core of HPL.
//!
//! HPL "uses LU factorization with row partial pivoting of matrix A and the
//! solution x is obtained by solving the resultant upper triangular system"
//! (§IV-A). Two variants are provided:
//!
//! * [`factor_unblocked`] — textbook right-looking `kij` elimination, used
//!   as the correctness oracle and as the ablation baseline.
//! * [`factor_blocked`] — panel factorization + row interchange + triangular
//!   solve + parallel GEMM-style trailing update, the structure HPL itself
//!   uses (with a configurable block size `nb`).
//!
//! Both store `L` (unit lower, implicit diagonal) and `U` in place and return
//! the pivot vector. [`solve_factored`] applies the pivots and the two
//! triangular solves to obtain `x`.

use crate::matrix::Matrix;
use crate::simd::{self, Isa};
use rayon::prelude::*;

/// Error for a numerically singular matrix (zero pivot column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// The elimination step at which no nonzero pivot was found.
    pub step: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at elimination step {}", self.step)
    }
}

impl std::error::Error for SingularMatrix {}

/// Default HPL block size. HPL tuning guides suggest 32–256; 64 balances
/// panel cost and GEMM efficiency for the pure-Rust micro-kernel.
pub const DEFAULT_BLOCK: usize = 64;

/// Unblocked right-looking LU with partial pivoting, in place.
///
/// Returns the pivot vector `piv` where step `k` swapped rows `k` and
/// `piv[k]`.
pub fn factor_unblocked(a: &mut Matrix) -> Result<Vec<usize>, SingularMatrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU requires a square matrix");
    let mut piv = vec![0usize; n];
    for k in 0..n {
        // Pivot search in column k, rows k..n.
        let (p, max) = pivot_search(a, k, k);
        if max == 0.0 {
            return Err(SingularMatrix { step: k });
        }
        piv[k] = p;
        a.swap_rows(k, p);
        // Scale multipliers and update the trailing submatrix.
        let pivot = a[(k, k)];
        for i in k + 1..n {
            a[(i, k)] /= pivot;
        }
        for j in k + 1..n {
            let ukj = a[(k, j)];
            if ukj == 0.0 {
                continue;
            }
            for i in k + 1..n {
                let lik = a[(i, k)];
                a[(i, j)] -= lik * ukj;
            }
        }
    }
    Ok(piv)
}

fn pivot_search(a: &Matrix, col: usize, from_row: usize) -> (usize, f64) {
    let column = a.col(col);
    let mut p = from_row;
    let mut max = column[from_row].abs();
    for (i, v) in column.iter().enumerate().skip(from_row + 1) {
        let av = v.abs();
        if av > max {
            max = av;
            p = i;
        }
    }
    (p, max)
}

/// Blocked right-looking LU with partial pivoting, in place, with the
/// trailing update parallelized over columns and running on the
/// process-wide dispatched ISA ([`crate::simd::active`]).
///
/// `nb` is the panel width (HPL's NB). Returns the pivot vector as in
/// [`factor_unblocked`].
pub fn factor_blocked(a: &mut Matrix, nb: usize) -> Result<Vec<usize>, SingularMatrix> {
    factor_blocked_with_isa(simd::active(), a, nb)
}

/// [`factor_blocked`] on an explicitly chosen ISA path — the hook the
/// SIMD oracle tests use to compare every supported path in one process.
pub fn factor_blocked_with_isa(
    isa: Isa,
    a: &mut Matrix,
    nb: usize,
) -> Result<Vec<usize>, SingularMatrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU requires a square matrix");
    assert!(nb > 0, "block size must be positive");
    let mut piv = vec![0usize; n];

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);

        // --- Panel factorization on columns [k0, k0+kb), rows [k0, n). ---
        // Row swaps are applied to the panel columns only; the rest of the
        // matrix is swapped afterwards (HPL's laswp).
        for k in k0..k0 + kb {
            let (p, max) = pivot_search(a, k, k);
            if max == 0.0 {
                return Err(SingularMatrix { step: k });
            }
            piv[k] = p;
            if p != k {
                swap_rows_in_cols(a, k, p, k0, k0 + kb);
            }
            let pivot = a[(k, k)];
            for i in k + 1..n {
                a[(i, k)] /= pivot;
            }
            // Rank-1 update restricted to the panel.
            for j in k + 1..k0 + kb {
                let ukj = a[(k, j)];
                if ukj == 0.0 {
                    continue;
                }
                for i in k + 1..n {
                    let lik = a[(i, k)];
                    a[(i, j)] -= lik * ukj;
                }
            }
        }

        // --- Apply the panel's row swaps to the columns outside it. ---
        for (off, &p) in piv[k0..k0 + kb].iter().enumerate() {
            let k = k0 + off;
            if p != k {
                swap_rows_in_cols(a, k, p, 0, k0);
                swap_rows_in_cols(a, k, p, k0 + kb, n);
            }
        }

        // --- Triangular solve + trailing GEMM update. ---
        if k0 + kb < n {
            // Snapshot the panel: L11 (kb×kb unit lower) and L21 ((n-k0-kb)×kb),
            // stored column-major with leading dimension (n - k0).
            let ld = n - k0;
            let mut panel = vec![0.0; ld * kb];
            for (jp, col) in panel.chunks_mut(ld).enumerate() {
                let src = a.col(k0 + jp);
                col.copy_from_slice(&src[k0..n]);
            }

            // Pack L21 once into MR-row micro-panels (zero-padded),
            // shared read-only by every trailing-update task.
            use crate::gemm::micro::{self, MR, NR};
            let l21_rows = ld - kb;
            let mut l21pack: Vec<f64> = Vec::new();
            micro::pack_a(&panel, ld, kb, l21_rows, 0, kb, &mut l21pack);
            let l21pack = &l21pack;
            let panel = &panel;

            // Fan out over NR-column chunks of the trailing matrix: the
            // same widened grain as DGEMM, so small trailing updates pay
            // per-block rather than per-column dispatch overhead. Each
            // chunk is a disjoint &mut slab of whole columns, so the
            // update is deterministic at every thread count.
            let rows = a.rows();
            let trailing = &mut a.as_mut_slice()[(k0 + kb) * rows..];
            trailing.par_chunks_mut(NR * rows).for_each(|chunk| {
                let ncols = chunk.len() / rows;
                // y = L11⁻¹ · A12[:, j] per column (unit lower solve).
                for col in chunk.chunks_exact_mut(rows) {
                    for k in 0..kb {
                        let y_k = col[k0 + k];
                        if y_k == 0.0 {
                            continue;
                        }
                        let lcol = &panel[k * ld..k * ld + kb];
                        for i in k + 1..kb {
                            col[k0 + i] -= lcol[i] * y_k;
                        }
                    }
                }
                // A22[:, 0..ncols] -= L21 · Y via the register-blocked
                // microkernel (alpha = −1), reading Y straight out of
                // the solved rows of this chunk.
                let mut ysliver = [0.0f64; DEFAULT_BLOCK * NR];
                let mut yheap;
                let ybuf: &mut [f64] = if kb * NR <= ysliver.len() {
                    &mut ysliver[..kb * NR]
                } else {
                    yheap = vec![0.0f64; kb * NR];
                    &mut yheap
                };
                for (p, dst) in ybuf.chunks_exact_mut(NR).enumerate() {
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = if j < ncols { chunk[j * rows + k0 + p] } else { 0.0 };
                    }
                }
                for (r, lp) in l21pack.chunks_exact(MR * kb).enumerate() {
                    let row0 = k0 + kb + r * MR;
                    let mr_eff = MR.min(k0 + kb + l21_rows - row0);
                    micro::kernel(isa, lp, ybuf, kb, -1.0, chunk, rows, row0, mr_eff, ncols);
                }
            });
        }

        k0 += kb;
    }
    Ok(piv)
}

/// Swaps the entries of rows `a_row` and `b_row` within columns `[j0, j1)`.
fn swap_rows_in_cols(a: &mut Matrix, a_row: usize, b_row: usize, j0: usize, j1: usize) {
    let rows = a.rows();
    let data = a.as_mut_slice();
    for j in j0..j1 {
        data.swap(a_row + j * rows, b_row + j * rows);
    }
}

/// Solves `A x = b` given the in-place LU factors and pivots.
///
/// Applies the row interchanges to `b`, then forward-substitutes through the
/// unit-lower factor and back-substitutes through the upper factor.
pub fn solve_factored(lu: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(piv.len(), n);
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Apply pivots in factorization order.
    for (k, &p) in piv.iter().enumerate() {
        x.swap(k, p);
    }
    // Forward substitution: L y = Pb (L unit lower).
    for k in 0..n {
        let xk = x[k];
        if xk != 0.0 {
            let col = lu.col(k);
            for i in k + 1..n {
                x[i] -= col[i] * xk;
            }
        }
    }
    // Back substitution: U x = y.
    for k in (0..n).rev() {
        let col = lu.col(k);
        x[k] /= col[k];
        let xk = x[k];
        if xk != 0.0 {
            for (i, xi) in x.iter_mut().enumerate().take(k) {
                *xi -= col[i] * xk;
            }
        }
    }
    x
}

/// Convenience: factor (blocked) and solve in one call.
pub fn solve(mut a: Matrix, b: &[f64], nb: usize) -> Result<Vec<f64>, SingularMatrix> {
    let piv = factor_blocked(&mut a, nb)?;
    Ok(solve_factored(&a, &piv, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vec_norm_inf;
    use proptest::prelude::*;

    fn residual_ok(a: &Matrix, x: &[f64], b: &[f64]) -> bool {
        let ax = a.matvec(x);
        let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
        let scale = a.norm_inf() * vec_norm_inf(x) + vec_norm_inf(b);
        vec_norm_inf(&r) <= 1e-10 * scale.max(1.0)
    }

    #[test]
    fn unblocked_solves_known_2x2() {
        // [[2, 1], [1, 3]] x = [3, 5] → x = [0.8, 1.4]
        let a = Matrix::from_col_major(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let mut lu = a.clone();
        let piv = factor_unblocked(&mut lu).unwrap();
        let x = solve_factored(&lu, &piv, &[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
        assert!(residual_ok(&a, &x, &[3.0, 5.0]));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a swap at step 0.
        let a = Matrix::from_col_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let mut lu = a.clone();
        let piv = factor_unblocked(&mut lu).unwrap();
        assert_eq!(piv[0], 1);
        let x = solve_factored(&lu, &piv, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let mut lu = a.clone();
        assert!(factor_unblocked(&mut lu).is_err());
        let mut lu2 = a;
        assert!(factor_blocked(&mut lu2, 1).is_err());
    }

    #[test]
    fn zero_matrix_singular_at_step_zero() {
        let mut a = Matrix::zeros(3, 3);
        let err = factor_unblocked(&mut a).unwrap_err();
        assert_eq!(err.step, 0);
        assert!(err.to_string().contains("step 0"));
    }

    #[test]
    fn blocked_matches_unblocked_factors() {
        for n in [1usize, 2, 3, 7, 16, 33, 64, 65, 100] {
            let a = Matrix::random(n, n, n as u64);
            let mut lu_u = a.clone();
            let piv_u = factor_unblocked(&mut lu_u).unwrap();
            for nb in [1usize, 4, 16, 64] {
                let mut lu_b = a.clone();
                let piv_b = factor_blocked(&mut lu_b, nb).unwrap();
                assert_eq!(piv_u, piv_b, "pivot mismatch n={n} nb={nb}");
                let diff = lu_u.max_abs_diff(&lu_b);
                assert!(diff < 1e-10, "factor mismatch n={n} nb={nb}: {diff}");
            }
        }
    }

    #[test]
    fn blocked_solve_residual_small() {
        for n in [5usize, 32, 64, 129, 200] {
            let a = Matrix::random(n, n, 1000 + n as u64);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let x = solve(a.clone(), &b, DEFAULT_BLOCK).unwrap();
            assert!(residual_ok(&a, &x, &b), "residual too large for n={n}");
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = solve(a, &b, 4).unwrap();
        for i in 0..10 {
            assert!((x[i] - b[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn block_size_larger_than_matrix_ok() {
        let a = Matrix::random(6, 6, 3);
        let b = vec![1.0; 6];
        let x = solve(a.clone(), &b, 128).unwrap();
        assert!(residual_ok(&a, &x, &b));
    }

    #[test]
    fn solve_known_diagonal_system() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        a[(2, 2)] = 8.0;
        let x = solve(a, &[2.0, 8.0, 32.0], 2).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn reconstruction_pa_equals_lu() {
        // Verify P·A = L·U for a blocked factorization.
        let n = 24;
        let a = Matrix::random(n, n, 99);
        let mut lu = a.clone();
        let piv = factor_blocked(&mut lu, 8).unwrap();

        // Build permuted copy of A.
        let mut pa = a.clone();
        for (k, &p) in piv.iter().enumerate() {
            pa.swap_rows(k, p);
        }
        // Multiply L·U from the factors.
        let mut prod = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                let kmax = i.min(j);
                for k in 0..=kmax {
                    let l = if i == k {
                        1.0
                    } else if i > k {
                        lu[(i, k)]
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[(k, j)] } else { 0.0 };
                    s += l * u;
                }
                // Include unit diagonal of L when i <= j handled above via k=i.
                prod[(i, j)] = s;
            }
        }
        let diff = pa.max_abs_diff(&prod);
        assert!(diff < 1e-10, "PA != LU, diff {diff}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Blocked LU solves random well-conditioned systems to tight
        /// residual for arbitrary sizes and block widths.
        #[test]
        fn prop_blocked_solve(n in 1usize..48, nb in 1usize..16, seed in 0u64..500) {
            // Diagonally dominant ⇒ well-conditioned and nonsingular.
            let mut a = Matrix::random(n, n, seed);
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
            let x = solve(a.clone(), &b, nb).unwrap();
            prop_assert!(residual_ok(&a, &x, &b));
        }

        /// Pivot indices always point at or below the diagonal row.
        #[test]
        fn prop_pivots_in_range(n in 1usize..32, seed in 0u64..200) {
            let a = Matrix::random(n, n, seed);
            let mut lu = a.clone();
            if let Ok(piv) = factor_blocked(&mut lu, 8) {
                for (k, &p) in piv.iter().enumerate() {
                    prop_assert!(p >= k && p < n);
                }
            }
        }

        /// Partial pivoting bounds the multipliers: |L(i,j)| <= 1.
        #[test]
        fn prop_multipliers_bounded(n in 2usize..32, seed in 0u64..200) {
            let a = Matrix::random(n, n, seed);
            let mut lu = a.clone();
            if factor_blocked(&mut lu, 4).is_ok() {
                for j in 0..n {
                    for i in j + 1..n {
                        prop_assert!(lu[(i, j)].abs() <= 1.0 + 1e-12);
                    }
                }
            }
        }
    }
}
