//! Radix-2 complex FFT — the HPCC "FFT" test analogue.
//!
//! The HPC Challenge suite (which the paper's introduction holds up as the
//! performance-side model for multi-component benchmarking) includes a 1-D
//! DFT test; its convention counts `5·N·log₂N` FLOPs per transform. The
//! implementation is the iterative Cooley–Tukey algorithm: bit-reversal
//! permutation followed by log₂N butterfly stages; the outer butterfly
//! groups of the later (large-stride) stages are parallelized with rayon.

use crate::complex::Complex64;
use crate::timing::time_until_resolved;
use rayon::prelude::*;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (negative exponent).
    Forward,
    /// Inverse DFT (positive exponent, scaled by 1/N).
    Inverse,
}

/// In-place radix-2 FFT.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (and nonzero).
pub fn fft(data: &mut [Complex64], direction: Direction) {
    let n = data.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length must be a power of two");
    if n == 1 {
        return;
    }

    bit_reverse_permute(data);

    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::from_polar_unit(ang);
        let half = len / 2;
        // Each chunk of `len` elements is one independent butterfly group.
        // Parallelize across groups when there are enough to amortize.
        if n / len >= 4 && len <= 4096 {
            data.par_chunks_mut(len).for_each(|chunk| butterfly(chunk, half, wlen));
        } else {
            for chunk in data.chunks_mut(len) {
                butterfly(chunk, half, wlen);
            }
        }
        len <<= 1;
    }

    if direction == Direction::Inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }
}

#[inline]
fn butterfly(chunk: &mut [Complex64], half: usize, wlen: Complex64) {
    let mut w = Complex64::ONE;
    for k in 0..half {
        let u = chunk[k];
        let v = chunk[k + half] * w;
        chunk[k] = u + v;
        chunk[k + half] = u - v;
        w = w * wlen;
    }
}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Naive O(N²) DFT, the correctness oracle.
pub fn dft_naive(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k * t % n) as f64 / n as f64;
            acc += x * Complex64::from_polar_unit(ang);
        }
        *o = if direction == Direction::Inverse { acc.scale(1.0 / n as f64) } else { acc };
    }
    out
}

/// HPCC FLOP convention for one transform of length `n`: `5·n·log₂n`.
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Result of an FFT benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftResult {
    /// Transform length.
    pub n: usize,
    /// Achieved GFLOPS by the HPCC convention.
    pub gflops: f64,
    /// Mean wall-clock seconds per `repetitions`-round timed batch.
    pub seconds: f64,
    /// Round-trip error `max |IFFT(FFT(x)) − x|` of one fresh
    /// forward+inverse pass — validates the transform.
    pub max_roundtrip_error: f64,
}

/// Benchmarks forward+inverse transforms of length `n`, repeated
/// `repetitions` times; validates by round-trip error.
///
/// Small transforms complete below the clock's resolution, so the
/// whole `repetitions`-round batch is itself repeated until the timer
/// resolves; the reported GFLOPS counts every transform actually run
/// and is always finite.
pub fn benchmark(n: usize, repetitions: usize, seed: u64) -> FftResult {
    assert!(repetitions > 0, "repetitions must be positive");
    // Deterministic pseudo-random input (cheap LCG; quality irrelevant here).
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let original: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();

    let mut data = original.clone();
    let (_, seconds) = time_until_resolved(|| {
        for _ in 0..repetitions {
            fft(&mut data, Direction::Forward);
            fft(&mut data, Direction::Inverse);
        }
    });
    // Keep the timed buffer observable so the loop cannot be elided.
    std::hint::black_box(&mut data);

    // Validate with one fresh round trip: the timing loop may repeat
    // the batch thousands of times on tiny n before the timer resolves,
    // and that accumulated rounding error would swamp the
    // single-round-trip accuracy this field reports.
    let mut check = original.clone();
    fft(&mut check, Direction::Forward);
    fft(&mut check, Direction::Inverse);
    let max_roundtrip_error =
        check.iter().zip(&original).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);

    // 2 transforms per repetition; `seconds` is the mean per batch.
    let flops = 2.0 * repetitions as f64 * fft_flops(n);
    FftResult { n, gflops: flops / seconds / 1e9, seconds, max_roundtrip_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let re = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let im = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                Complex64::new(re, im)
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input = random_signal(n, n as u64 + 1);
            let expected = dft_naive(&input, Direction::Forward);
            let mut actual = input.clone();
            fft(&mut actual, Direction::Forward);
            for (a, e) in actual.iter().zip(&expected) {
                assert!((*a - *e).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let input = random_signal(512, 3);
        let mut data = input.clone();
        fft(&mut data, Direction::Forward);
        fft(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        // FFT of δ[0] is all-ones.
        let mut data = vec![Complex64::ZERO; 16];
        data[0] = Complex64::ONE;
        fft(&mut data, Direction::Forward);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut data = vec![Complex64::ONE; 8];
        fft(&mut data, Direction::Forward);
        assert!((data[0].re - 8.0).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let input = random_signal(256, 9);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = input.clone();
        fft(&mut freq, Direction::Forward);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex64::ZERO; 12];
        fft(&mut data, Direction::Forward);
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = vec![Complex64::new(3.0, 4.0)];
        fft(&mut data, Direction::Forward);
        assert_eq!(data[0], Complex64::new(3.0, 4.0));
    }

    #[test]
    fn flop_convention() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }

    #[test]
    fn benchmark_validates_roundtrip() {
        let r = benchmark(1 << 12, 2, 7);
        assert!(r.gflops > 0.0);
        assert!(r.max_roundtrip_error < 1e-9, "error {}", r.max_roundtrip_error);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Linearity: FFT(x + y) == FFT(x) + FFT(y).
        #[test]
        fn prop_fft_linear(log_n in 1u32..9, seed in 0u64..100) {
            let n = 1usize << log_n;
            let x = random_signal(n, seed);
            let y = random_signal(n, seed + 1000);
            let mut fx = x.clone();
            fft(&mut fx, Direction::Forward);
            let mut fy = y.clone();
            fft(&mut fy, Direction::Forward);
            let mut xy: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
            fft(&mut xy, Direction::Forward);
            for i in 0..n {
                let expected = fx[i] + fy[i];
                prop_assert!((xy[i] - expected).abs() < 1e-9 * (n as f64).max(1.0));
            }
        }
    }
}
