//! IOzone-style file-system benchmark (§IV-A of the paper).
//!
//! "IOzone benchmark stresses the IO subsystem by performing a variety of
//! file operations. The tool allows us to test the IO performance with
//! various file sizes using typical file system operations such as reads and
//! writes. We perform only the write test … The benchmark reports the
//! performance results in MBPS."
//!
//! The write, rewrite, read, and reread tests are implemented with real file
//! I/O against a scratch directory, using IOzone's record-at-a-time access
//! pattern and configurable file/record sizes. Like IOzone's default mode,
//! close+flush time is included in the write timing.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The file operations supported (IOzone's core test set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOperation {
    /// Sequential write of a new file.
    Write,
    /// Sequential overwrite of an existing file.
    Rewrite,
    /// Sequential read.
    Read,
    /// Second sequential read (benefits from the page cache).
    Reread,
    /// Random-offset record writes over the existing file.
    RandomWrite,
    /// Random-offset record reads.
    RandomRead,
}

impl IoOperation {
    /// All operations in IOzone's order.
    pub const ALL: [IoOperation; 6] = [
        IoOperation::Write,
        IoOperation::Rewrite,
        IoOperation::Read,
        IoOperation::Reread,
        IoOperation::RandomWrite,
        IoOperation::RandomRead,
    ];

    /// Display name matching IOzone's report columns.
    pub fn name(self) -> &'static str {
        match self {
            IoOperation::Write => "write",
            IoOperation::Rewrite => "rewrite",
            IoOperation::Read => "read",
            IoOperation::Reread => "reread",
            IoOperation::RandomWrite => "random write",
            IoOperation::RandomRead => "random read",
        }
    }
}

/// Configuration for an I/O benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoBenchConfig {
    /// Total file size in bytes.
    pub file_size: u64,
    /// Record (transfer) size in bytes.
    pub record_size: usize,
    /// Directory for scratch files; defaults to the system temp dir.
    pub dir: Option<PathBuf>,
    /// Operations to run, in order.
    pub operations: Vec<IoOperation>,
    /// Whether to fsync after writes (IOzone `-e` includes flush in timing).
    pub fsync: bool,
}

impl Default for IoBenchConfig {
    fn default() -> Self {
        IoBenchConfig {
            file_size: 64 << 20,   // 64 MiB
            record_size: 64 << 10, // 64 KiB, an IOzone sweet spot
            dir: None,
            operations: vec![IoOperation::Write],
            fsync: true,
        }
    }
}

impl IoBenchConfig {
    /// A config sized for unit tests.
    pub fn small() -> Self {
        IoBenchConfig {
            file_size: 1 << 20,
            record_size: 16 << 10,
            dir: None,
            operations: IoOperation::ALL.to_vec(),
            fsync: false,
        }
    }
}

/// Timing of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationTiming {
    /// Which operation.
    pub operation: IoOperation,
    /// Throughput in bytes/second.
    pub bytes_per_sec: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Result of an I/O benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoBenchResult {
    /// Per-operation timings in configured order.
    pub operations: Vec<OperationTiming>,
    /// Bytes per operation pass.
    pub file_size: u64,
    /// Record size used.
    pub record_size: usize,
}

impl IoBenchResult {
    /// Throughput of the write test in MB/s (decimal) — the paper's metric.
    pub fn write_mbps(&self) -> f64 {
        self.timing(IoOperation::Write).map(|t| t.bytes_per_sec / 1e6).unwrap_or(0.0)
    }

    /// Timing for a specific operation, if it was configured.
    pub fn timing(&self, op: IoOperation) -> Option<&OperationTiming> {
        self.operations.iter().find(|t| t.operation == op)
    }
}

/// I/O benchmark errors.
#[derive(Debug)]
pub enum IoBenchError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Invalid configuration (zero sizes, record > file).
    InvalidConfig(String),
}

impl std::fmt::Display for IoBenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoBenchError::Io(e) => write!(f, "I/O error: {e}"),
            IoBenchError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for IoBenchError {}

impl From<std::io::Error> for IoBenchError {
    fn from(e: std::io::Error) -> Self {
        IoBenchError::Io(e)
    }
}

/// Runs the configured operations against a scratch file, removing it
/// afterwards.
pub fn run(config: &IoBenchConfig) -> Result<IoBenchResult, IoBenchError> {
    if config.file_size == 0 {
        return Err(IoBenchError::InvalidConfig("file size must be positive".into()));
    }
    if config.record_size == 0 {
        return Err(IoBenchError::InvalidConfig("record size must be positive".into()));
    }
    if config.record_size as u64 > config.file_size {
        return Err(IoBenchError::InvalidConfig("record size must not exceed file size".into()));
    }
    if config.operations.is_empty() {
        return Err(IoBenchError::InvalidConfig("no operations configured".into()));
    }
    // Reads require the file to exist: the op list must start with a write.
    if !matches!(config.operations.first(), Some(IoOperation::Write)) {
        return Err(IoBenchError::InvalidConfig("operation list must start with a write".into()));
    }

    let dir = config.dir.clone().unwrap_or_else(std::env::temp_dir);
    let path = scratch_path(&dir);
    let result = run_at(&path, config);
    let _ = std::fs::remove_file(&path); // best-effort cleanup
    result
}

fn scratch_path(dir: &Path) -> PathBuf {
    // Unique-enough name: pid + monotonic counter.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("tgi_iobench_{}_{}.dat", std::process::id(), id))
}

fn run_at(path: &Path, config: &IoBenchConfig) -> Result<IoBenchResult, IoBenchError> {
    // A patterned record; IOzone writes non-zero data to defeat
    // compression/dedup on smart filesystems.
    let record: Vec<u8> = (0..config.record_size).map(|i| (i % 251) as u8 ^ 0x5A).collect();
    let records = config.file_size / config.record_size as u64;
    let tail = (config.file_size % config.record_size as u64) as usize;

    let mut timings = Vec::with_capacity(config.operations.len());
    for &op in &config.operations {
        let seconds = match op {
            IoOperation::Write => {
                let mut f = File::create(path)?;
                time_write(&mut f, &record, records, tail, config.fsync)?
            }
            IoOperation::Rewrite => {
                let mut f = OpenOptions::new().write(true).open(path)?;
                f.seek(SeekFrom::Start(0))?;
                time_write(&mut f, &record, records, tail, config.fsync)?
            }
            IoOperation::RandomWrite => {
                let mut f = OpenOptions::new().write(true).open(path)?;
                time_random(&mut f, &record, config, true)?
            }
            IoOperation::RandomRead => {
                let mut f = OpenOptions::new().read(true).open(path)?;
                time_random(&mut f, &record, config, false)?
            }
            IoOperation::Read | IoOperation::Reread => {
                let mut f = File::open(path)?;
                let mut buf = vec![0u8; config.record_size];
                let start = Instant::now();
                let mut remaining = config.file_size;
                let mut checksum = 0u64;
                while remaining > 0 {
                    let want = (remaining as usize).min(buf.len());
                    f.read_exact(&mut buf[..want])?;
                    checksum = checksum.wrapping_add(buf[0] as u64);
                    remaining -= want as u64;
                }
                assert!(checksum > 0 || config.file_size == 0);
                start.elapsed().as_secs_f64().max(1e-9)
            }
        };
        timings.push(OperationTiming {
            operation: op,
            bytes_per_sec: config.file_size as f64 / seconds,
            seconds,
        });
    }

    Ok(IoBenchResult {
        operations: timings,
        file_size: config.file_size,
        record_size: config.record_size,
    })
}

/// Visits every full record once in a deterministic pseudo-random order
/// (an LCG over the record indices), reading or writing at each offset.
fn time_random(
    f: &mut File,
    record: &[u8],
    config: &IoBenchConfig,
    write: bool,
) -> Result<f64, IoBenchError> {
    let records = (config.file_size / config.record_size as u64).max(1);
    let mut buf = vec![0u8; config.record_size];
    // A full-period LCG over [0, records): c odd, a-1 divisible by all
    // prime factors of m — use a = 1 (pure addition by an odd stride) over
    // the next power of two, skipping out-of-range values.
    let m = records.next_power_of_two();
    let stride = (m / 2 + 1) | 1;
    let mut idx = 0u64;
    let start = Instant::now();
    let mut visited = 0u64;
    while visited < records {
        idx = (idx + stride) % m;
        if idx >= records {
            continue;
        }
        visited += 1;
        let offset = idx * config.record_size as u64;
        // Clamp the final record to the file end.
        let len = config.record_size.min((config.file_size - offset) as usize);
        f.seek(SeekFrom::Start(offset))?;
        if write {
            f.write_all(&record[..len])?;
        } else {
            f.read_exact(&mut buf[..len])?;
        }
    }
    if write {
        f.flush()?;
        if config.fsync {
            f.sync_all()?;
        }
    }
    Ok(start.elapsed().as_secs_f64().max(1e-9))
}

fn time_write(
    f: &mut File,
    record: &[u8],
    records: u64,
    tail: usize,
    fsync: bool,
) -> Result<f64, IoBenchError> {
    let start = Instant::now();
    for _ in 0..records {
        f.write_all(record)?;
    }
    if tail > 0 {
        f.write_all(&record[..tail])?;
    }
    f.flush()?;
    if fsync {
        f.sync_all()?;
    }
    Ok(start.elapsed().as_secs_f64().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_only_run_reports_mbps() {
        let config = IoBenchConfig {
            file_size: 256 << 10,
            record_size: 4 << 10,
            operations: vec![IoOperation::Write],
            fsync: false,
            dir: None,
        };
        let r = run(&config).unwrap();
        assert!(r.write_mbps() > 0.0);
        assert_eq!(r.operations.len(), 1);
        assert_eq!(r.file_size, 256 << 10);
    }

    #[test]
    fn full_test_set_runs_all_operations() {
        let r = run(&IoBenchConfig::small()).unwrap();
        assert_eq!(r.operations.len(), 6);
        for op in IoOperation::ALL {
            let t = r.timing(op).unwrap();
            assert!(t.bytes_per_sec > 0.0, "{:?} has zero throughput", op);
            assert!(t.seconds > 0.0);
        }
    }

    #[test]
    fn scratch_file_is_cleaned_up() {
        let dir = std::env::temp_dir().join(format!("tgi_iobench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IoBenchConfig {
            file_size: 64 << 10,
            record_size: 4 << 10,
            dir: Some(dir.clone()),
            operations: vec![IoOperation::Write],
            fsync: false,
        };
        run(&config).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "scratch files not removed: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = IoBenchConfig::small();
        c.file_size = 0;
        assert!(run(&c).is_err());

        let mut c = IoBenchConfig::small();
        c.record_size = 0;
        assert!(run(&c).is_err());

        let mut c = IoBenchConfig::small();
        c.record_size = 4 << 20;
        c.file_size = 1 << 20;
        assert!(run(&c).is_err());

        let mut c = IoBenchConfig::small();
        c.operations = vec![];
        assert!(run(&c).is_err());

        let mut c = IoBenchConfig::small();
        c.operations = vec![IoOperation::Read];
        assert!(run(&c).is_err(), "read before write must be rejected");
    }

    #[test]
    fn file_size_not_multiple_of_record_size_ok() {
        let config = IoBenchConfig {
            file_size: (64 << 10) + 123,
            record_size: 4 << 10,
            operations: vec![IoOperation::Write, IoOperation::Read],
            fsync: false,
            dir: None,
        };
        let r = run(&config).unwrap();
        assert_eq!(r.operations.len(), 2);
    }

    #[test]
    fn operation_names_match_iozone() {
        let names: Vec<&str> = IoOperation::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec!["write", "rewrite", "read", "reread", "random write", "random read"]
        );
    }

    #[test]
    fn random_operations_touch_every_record() {
        // Random write then sequential read back must see the record
        // pattern everywhere (the LCG permutation covers all offsets).
        let config = IoBenchConfig {
            file_size: 128 << 10,
            record_size: 8 << 10,
            operations: vec![IoOperation::Write, IoOperation::RandomWrite, IoOperation::RandomRead],
            fsync: false,
            dir: None,
        };
        let r = run(&config).unwrap();
        assert_eq!(r.operations.len(), 3);
        for t in &r.operations {
            assert!(t.bytes_per_sec > 0.0, "{:?}", t.operation);
        }
    }

    #[test]
    fn random_ops_on_odd_sized_file() {
        // File not a multiple of the record size: the tail record clamps.
        let config = IoBenchConfig {
            file_size: (64 << 10) + 777,
            record_size: 8 << 10,
            operations: vec![IoOperation::Write, IoOperation::RandomRead],
            fsync: false,
            dir: None,
        };
        let r = run(&config).unwrap();
        assert!(r.timing(IoOperation::RandomRead).unwrap().bytes_per_sec > 0.0);
    }

    #[test]
    fn missing_timing_returns_none_and_zero_mbps() {
        let r = IoBenchResult { operations: vec![], file_size: 1, record_size: 1 };
        assert!(r.timing(IoOperation::Write).is_none());
        assert_eq!(r.write_mbps(), 0.0);
    }
}
