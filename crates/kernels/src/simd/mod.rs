//! Runtime-dispatched SIMD microkernels for the hot kernel bodies.
//!
//! The GEMM/LU register microkernel, the four STREAM loops, and the GUPS
//! update stream each exist in up to three implementations:
//!
//! * **scalar** — portable Rust, the fallback on every architecture and
//!   the reference the vector paths are property-tested against;
//! * **AVX2+FMA** — 4-lane `f64` (`std::arch::x86_64`), 8×4 GEMM tile
//!   held in eight 256-bit accumulators;
//! * **NEON** — 2-lane `f64` (`std::arch::aarch64`), same 8×4 tile in
//!   sixteen 128-bit accumulators.
//!
//! The path is chosen **once per process** by [`active`]: runtime feature
//! detection (`is_x86_feature_detected!` / `is_aarch64_feature_detected!`)
//! picks the widest supported ISA, and the `TGI_KERNEL_ISA` environment
//! variable (`scalar` | `avx2` | `neon` | `auto`) forces a specific path —
//! forcing an ISA the host cannot execute is a loud panic, never a silent
//! fallback, so committed benchmark files always name the path that really
//! ran. Kernels resolve the ISA once per call tree and thread it through
//! their parallel tasks, so dispatch never sits in an inner loop.
//!
//! Determinism contract: for a **fixed** ISA, every implementation performs
//! an identical, thread-count-independent sequence of floating-point
//! operations per output element (tasks own disjoint output chunks), so each
//! dispatched path is bit-identical at 1, 2 and N threads. *Across* ISAs the
//! results differ by FMA rounding only: the vector paths contract `a·b + c`
//! into fused multiply-adds, which is why the oracle tests compare them to
//! scalar with an FMA-aware tolerance instead of bit equality.
//!
//! This module is the crate's single `unsafe` surface (`std::arch`
//! intrinsics behind `#[target_feature]`); everything else remains
//! `deny(unsafe_code)`.

#![allow(unsafe_code)]

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

use std::sync::OnceLock;

/// Environment variable forcing the kernel ISA path
/// (`scalar` | `avx2` | `neon` | `auto`).
pub const KERNEL_ISA_ENV: &str = "TGI_KERNEL_ISA";

/// Microkernel tile height: rows of C computed per register block.
pub(crate) const MR: usize = 8;
/// Microkernel tile width: columns of C computed per register block.
pub(crate) const NR: usize = 4;

/// An instruction-set path the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar Rust — always supported, the correctness reference.
    Scalar,
    /// AVX2 + FMA, 4×f64 lanes (x86-64 only).
    Avx2,
    /// NEON, 2×f64 lanes (aarch64 only).
    Neon,
}

impl Isa {
    /// All ISAs, widest first (the auto-detection preference order).
    pub const ALL: [Isa; 3] = [Isa::Avx2, Isa::Neon, Isa::Scalar];

    /// Lower-case name, matching the `TGI_KERNEL_ISA` values.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }

    /// Whether the current host can execute this path.
    pub fn is_supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Parses a `TGI_KERNEL_ISA` value; `auto` / empty mean "detect".
    pub fn parse(value: &str) -> Result<Option<Isa>, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(Isa::Scalar)),
            "avx2" => Ok(Some(Isa::Avx2)),
            "neon" => Ok(Some(Isa::Neon)),
            other => Err(format!(
                "unknown {KERNEL_ISA_ENV} value {other:?} (expected scalar, avx2, neon or auto)"
            )),
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The ISAs the current host supports, widest first.
pub fn supported() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|isa| isa.is_supported()).collect()
}

/// The ISA every kernel dispatches to, selected once per process:
/// `TGI_KERNEL_ISA` if set (panicking on unknown or unsupported values —
/// a forced path must never silently degrade), else the widest ISA the
/// host supports.
pub fn active() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced = match std::env::var(KERNEL_ISA_ENV) {
            Ok(v) => Isa::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => None,
        };
        match forced {
            Some(isa) => {
                assert!(
                    isa.is_supported(),
                    "{KERNEL_ISA_ENV}={} forces an ISA this host cannot execute",
                    isa.name()
                );
                isa
            }
            None => *supported().first().unwrap_or(&Isa::Scalar),
        }
    })
}

// ---------------------------------------------------------------------------
// Dispatch wrappers. Each takes the ISA explicitly: callers resolve
// `active()` once per kernel invocation and thread the copy through their
// parallel tasks, keeping dispatch out of inner loops and letting the
// oracle tests drive every path in one process.
// ---------------------------------------------------------------------------

/// `MR×NR` GEMM microkernel:
/// `C[row0.., 0..nr_eff] += α · Apanel · Bsliver` (see [`crate::gemm::micro`]
/// for the packed-panel layout). `c_chunk` is `nr_eff` whole columns of C
/// with leading dimension `ldc`.
// BLAS-style microkernel signature: the argument list is the panel
// geometry, which a params struct would only rename.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn gemm_kernel(
    isa: Isa,
    apanel: &[f64],
    bsliver: &[f64],
    pb: usize,
    alpha: f64,
    c_chunk: &mut [f64],
    ldc: usize,
    row0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(apanel.len() >= pb * MR);
    debug_assert!(bsliver.len() >= pb * NR);
    debug_assert!(nr_eff == 0 || (nr_eff - 1) * ldc + row0 + mr_eff <= c_chunk.len());
    match isa {
        Isa::Scalar => {
            scalar::gemm_kernel(apanel, bsliver, pb, alpha, c_chunk, ldc, row0, mr_eff, nr_eff)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::Avx2` is only selectable when `is_supported()`
        // confirmed avx2+fma at dispatch time (active() asserts, tests gate).
        Isa::Avx2 => unsafe {
            avx2::gemm_kernel(apanel, bsliver, pb, alpha, c_chunk, ldc, row0, mr_eff, nr_eff)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above for NEON.
        Isa::Neon => unsafe {
            neon::gemm_kernel(apanel, bsliver, pb, alpha, c_chunk, ldc, row0, mr_eff, nr_eff)
        },
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

/// STREAM Copy body: `dst[i] = src[i]`.
#[inline]
pub(crate) fn stream_copy(isa: Isa, dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len());
    match isa {
        Isa::Scalar => scalar::stream_copy(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Avx2 => unsafe { avx2::stream_copy(dst, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Neon => unsafe { neon::stream_copy(dst, src) },
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

/// STREAM Scale body: `dst[i] = s · src[i]`.
#[inline]
pub(crate) fn stream_scale(isa: Isa, dst: &mut [f64], src: &[f64], s: f64) {
    assert_eq!(dst.len(), src.len());
    match isa {
        Isa::Scalar => scalar::stream_scale(dst, src, s),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Avx2 => unsafe { avx2::stream_scale(dst, src, s) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Neon => unsafe { neon::stream_scale(dst, src, s) },
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

/// STREAM Add body: `dst[i] = a[i] + b[i]`.
#[inline]
pub(crate) fn stream_add(isa: Isa, dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    match isa {
        Isa::Scalar => scalar::stream_add(dst, a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Avx2 => unsafe { avx2::stream_add(dst, a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Neon => unsafe { neon::stream_add(dst, a, b) },
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

/// STREAM Triad body: `dst[i] = a[i] + s · b[i]`.
#[inline]
pub(crate) fn stream_triad(isa: Isa, dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    match isa {
        Isa::Scalar => scalar::stream_triad(dst, a, b, s),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Avx2 => unsafe { avx2::stream_triad(dst, a, b, s) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Neon => unsafe { neon::stream_triad(dst, a, b, s) },
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

/// Fills `out` with the next `out.len()` values of the SplitMix64 stream
/// seeded by `*state`, advancing `*state` exactly as the scalar generator
/// would — every path produces the **identical** bit stream (the GUPS
/// verification replay depends on it).
#[inline]
pub(crate) fn splitmix_fill(isa: Isa, state: &mut u64, out: &mut [u64]) {
    match isa {
        Isa::Scalar => scalar::splitmix_fill(state, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `gemm_kernel`.
        Isa::Avx2 => unsafe { avx2::splitmix_fill(state, out) },
        #[cfg(target_arch = "aarch64")]
        // NEON has no 64-bit vector multiply; the scalar stream generator
        // is already the fastest correct option there.
        Isa::Neon => scalar::splitmix_fill(state, out),
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} is not supported on this host"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_listed() {
        assert!(Isa::Scalar.is_supported());
        assert!(supported().contains(&Isa::Scalar));
    }

    #[test]
    fn supported_orders_widest_first() {
        let s = supported();
        assert_eq!(*s.last().unwrap(), Isa::Scalar, "scalar is the last resort");
    }

    #[test]
    fn active_is_supported_and_stable() {
        let a = active();
        assert!(a.is_supported());
        assert_eq!(a, active(), "selection is cached per process");
    }

    #[test]
    fn parse_accepts_known_names_and_auto() {
        assert_eq!(Isa::parse("scalar").unwrap(), Some(Isa::Scalar));
        assert_eq!(Isa::parse("AVX2").unwrap(), Some(Isa::Avx2));
        assert_eq!(Isa::parse(" neon ").unwrap(), Some(Isa::Neon));
        assert_eq!(Isa::parse("auto").unwrap(), None);
        assert_eq!(Isa::parse("").unwrap(), None);
        assert!(Isa::parse("sse9").unwrap_err().contains("sse9"));
    }

    #[test]
    fn names_round_trip_through_parse() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()).unwrap(), Some(isa));
            assert_eq!(format!("{isa}"), isa.name());
        }
    }

    #[test]
    fn splitmix_fill_matches_scalar_for_every_supported_isa() {
        for isa in supported() {
            for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 100] {
                let mut s_ref = 0xDEAD_BEEF_u64;
                let mut s_isa = 0xDEAD_BEEF_u64;
                let mut want = vec![0u64; n];
                let mut got = vec![0u64; n];
                scalar::splitmix_fill(&mut s_ref, &mut want);
                splitmix_fill(isa, &mut s_isa, &mut got);
                assert_eq!(want, got, "{isa} stream diverges at n={n}");
                assert_eq!(s_ref, s_isa, "{isa} final state diverges at n={n}");
            }
        }
    }
}
