//! Portable scalar implementations — the fallback on every architecture
//! and the reference the vector paths are property-tested against.
//!
//! The GEMM body is the register-blocked microkernel the crate shipped
//! before SIMD dispatch existed: `MR·NR` accumulators that the compiler
//! keeps in registers across the whole `pb` sweep, without fused
//! multiply-adds (separate mul + add roundings), which is exactly what
//! makes it the rounding reference for the FMA-based vector paths.

use super::{MR, NR};

#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_kernel(
    apanel: &[f64],
    bsliver: &[f64],
    pb: usize,
    alpha: f64,
    c_chunk: &mut [f64],
    ldc: usize,
    row0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut regs = [[0.0f64; MR]; NR];
    for (a, b) in apanel.chunks_exact(MR).zip(bsliver.chunks_exact(NR)).take(pb) {
        for (j, acc) in regs.iter_mut().enumerate() {
            let bj = b[j];
            for (i, r) in acc.iter_mut().enumerate() {
                *r += a[i] * bj;
            }
        }
    }
    for (j, acc) in regs.iter().enumerate().take(nr_eff) {
        let col = &mut c_chunk[j * ldc + row0..j * ldc + row0 + mr_eff];
        for (cv, r) in col.iter_mut().zip(acc) {
            *cv += alpha * r;
        }
    }
}

pub(super) fn stream_copy(dst: &mut [f64], src: &[f64]) {
    dst.copy_from_slice(src);
}

pub(super) fn stream_scale(dst: &mut [f64], src: &[f64], s: f64) {
    for (d, v) in dst.iter_mut().zip(src) {
        *d = s * *v;
    }
}

pub(super) fn stream_add(dst: &mut [f64], a: &[f64], b: &[f64]) {
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        *d = *x + *y;
    }
}

pub(super) fn stream_triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        *d = *x + s * *y;
    }
}

/// The canonical SplitMix64 step — the single definition every stream
/// generator (scalar or vector) must reproduce bit-exactly.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(super) fn splitmix_fill(state: &mut u64, out: &mut [u64]) {
    for v in out {
        *v = splitmix64(state);
    }
}
