//! AVX2 + FMA implementations (`std::arch::x86_64`, 4×f64 lanes).
//!
//! Every function here carries `#[target_feature(enable = "avx2", enable =
//! "fma")]` and is therefore `unsafe` to call: the dispatcher in
//! [`super`] only routes here after runtime detection confirmed both
//! features, and that is the sole safety obligation. Slice accesses go
//! through raw pointers only where the index arithmetic is already
//! bounds-guaranteed by the caller's packed-panel geometry (debug asserts
//! restate the bounds).
//!
//! Rounding: the GEMM microkernel and the STREAM Triad contract `a·b + c`
//! into `vfmadd` — one rounding instead of two — so results differ from the
//! scalar path by FMA rounding (the oracle tolerance), while Copy/Scale/Add
//! are element-wise exact. The SplitMix64 batch generator is pure integer
//! arithmetic and matches the scalar stream bit-for-bit.

use super::{MR, NR};
use std::arch::x86_64::*;

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn gemm_kernel(
    apanel: &[f64],
    bsliver: &[f64],
    pb: usize,
    alpha: f64,
    c_chunk: &mut [f64],
    ldc: usize,
    row0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(apanel.len() >= pb * MR && bsliver.len() >= pb * NR);
    debug_assert!(nr_eff == 0 || (nr_eff - 1) * ldc + row0 + mr_eff <= c_chunk.len());
    // 8×4 tile: two 4-lane accumulators per column, eight ymm registers
    // live across the whole pb sweep.
    let mut acc_lo = [_mm256_setzero_pd(); NR];
    let mut acc_hi = [_mm256_setzero_pd(); NR];
    let mut ap = apanel.as_ptr();
    let mut bp = bsliver.as_ptr();
    for _ in 0..pb {
        let a_lo = _mm256_loadu_pd(ap);
        let a_hi = _mm256_loadu_pd(ap.add(4));
        for j in 0..NR {
            let bj = _mm256_set1_pd(*bp.add(j));
            acc_lo[j] = _mm256_fmadd_pd(a_lo, bj, acc_lo[j]);
            acc_hi[j] = _mm256_fmadd_pd(a_hi, bj, acc_hi[j]);
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    let av = _mm256_set1_pd(alpha);
    let base = c_chunk.as_mut_ptr();
    for j in 0..nr_eff {
        let col = base.add(j * ldc + row0);
        if mr_eff == MR {
            _mm256_storeu_pd(col, _mm256_fmadd_pd(av, acc_lo[j], _mm256_loadu_pd(col)));
            let hi = col.add(4);
            _mm256_storeu_pd(hi, _mm256_fmadd_pd(av, acc_hi[j], _mm256_loadu_pd(hi)));
        } else {
            // Fringe rows: spill the tile and finish with scalar fmadds
            // (`mul_add` lowers to vfmadd inside this target_feature fn),
            // keeping the whole path FMA-rounded and geometry-determined.
            let mut tile = [0.0f64; MR];
            _mm256_storeu_pd(tile.as_mut_ptr(), acc_lo[j]);
            _mm256_storeu_pd(tile.as_mut_ptr().add(4), acc_hi[j]);
            for (i, t) in tile.iter().enumerate().take(mr_eff) {
                *col.add(i) = alpha.mul_add(*t, *col.add(i));
            }
        }
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn stream_copy(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(d.add(i), _mm256_loadu_pd(s.add(i)));
        i += 4;
    }
    while i < n {
        *d.add(i) = *s.add(i);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn stream_scale(dst: &mut [f64], src: &[f64], scale: f64) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let sv = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(d.add(i), _mm256_mul_pd(sv, _mm256_loadu_pd(s.add(i))));
        i += 4;
    }
    while i < n {
        *d.add(i) = scale * *s.add(i);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn stream_add(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let n = dst.len();
    let (d, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(
            d.add(i),
            _mm256_add_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
        );
        i += 4;
    }
    while i < n {
        *d.add(i) = *ap.add(i) + *bp.add(i);
        i += 1;
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn stream_triad(dst: &mut [f64], a: &[f64], b: &[f64], scale: f64) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let n = dst.len();
    let (d, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let sv = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        let t = _mm256_fmadd_pd(sv, _mm256_loadu_pd(bp.add(i)), _mm256_loadu_pd(ap.add(i)));
        _mm256_storeu_pd(d.add(i), t);
        i += 4;
    }
    while i < n {
        *d.add(i) = scale.mul_add(*bp.add(i), *ap.add(i));
        i += 1;
    }
}

/// 64×64→64-bit low multiply per lane. AVX2 has no `vpmullq`, so compose
/// it from 32-bit partial products:
/// `lo(a)·lo(b) + ((lo(a)·hi(b) + hi(a)·lo(b)) << 32)` — exact mod 2⁶⁴.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mullo64(a: __m256i, b: __m256i) -> __m256i {
    let a_hi = _mm256_srli_epi64(a, 32);
    let b_hi = _mm256_srli_epi64(b, 32);
    let ll = _mm256_mul_epu32(a, b);
    let lh = _mm256_mul_epu32(a, b_hi);
    let hl = _mm256_mul_epu32(a_hi, b);
    let cross = _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32);
    _mm256_add_epi64(ll, cross)
}

/// Four SplitMix64 lanes per step, bit-identical to the scalar stream:
/// lane `i` of step `k` mixes state `s + (4k + i + 1)·γ`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn splitmix_fill(state: &mut u64, out: &mut [u64]) {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    const C1: u64 = 0xBF58_476D_1CE4_E5B9;
    const C2: u64 = 0x94D0_49BB_1331_11EB;
    let mut chunks = out.chunks_exact_mut(4);
    let c1 = _mm256_set1_epi64x(C1 as i64);
    let c2 = _mm256_set1_epi64x(C2 as i64);
    let step = _mm256_set1_epi64x(GAMMA.wrapping_mul(4) as i64);
    let mut cur = _mm256_add_epi64(
        _mm256_set1_epi64x(*state as i64),
        _mm256_setr_epi64x(
            GAMMA as i64,
            GAMMA.wrapping_mul(2) as i64,
            GAMMA.wrapping_mul(3) as i64,
            GAMMA.wrapping_mul(4) as i64,
        ),
    );
    for chunk in &mut chunks {
        let mut z = cur;
        z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), c1);
        z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), c2);
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
        _mm256_storeu_si256(chunk.as_mut_ptr() as *mut __m256i, z);
        cur = _mm256_add_epi64(cur, step);
        *state = state.wrapping_add(GAMMA.wrapping_mul(4));
    }
    for v in chunks.into_remainder() {
        *v = super::scalar::splitmix64(state);
    }
}
