//! NEON implementations (`std::arch::aarch64`, 2×f64 lanes).
//!
//! Same contract as the AVX2 path: `#[target_feature(enable = "neon")]`
//! functions the dispatcher only reaches after runtime detection, an 8×4
//! GEMM tile (here sixteen 128-bit accumulators), and FMA-contracted
//! arithmetic via `vfmaq_f64` — so NEON results match AVX2's rounding
//! behavior and are compared to scalar with the same FMA-aware tolerance.
//! There is no 64-bit vector multiply on NEON, so the GUPS stream
//! generator stays scalar (see [`super::splitmix_fill`]).

use super::{MR, NR};
use std::arch::aarch64::*;

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
pub(super) unsafe fn gemm_kernel(
    apanel: &[f64],
    bsliver: &[f64],
    pb: usize,
    alpha: f64,
    c_chunk: &mut [f64],
    ldc: usize,
    row0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(apanel.len() >= pb * MR && bsliver.len() >= pb * NR);
    debug_assert!(nr_eff == 0 || (nr_eff - 1) * ldc + row0 + mr_eff <= c_chunk.len());
    // 8×4 tile: four 2-lane accumulators per column (16 q-registers live,
    // out of 32).
    let mut acc = [[vdupq_n_f64(0.0); 4]; NR];
    let mut ap = apanel.as_ptr();
    let mut bp = bsliver.as_ptr();
    for _ in 0..pb {
        let a0 = vld1q_f64(ap);
        let a1 = vld1q_f64(ap.add(2));
        let a2 = vld1q_f64(ap.add(4));
        let a3 = vld1q_f64(ap.add(6));
        for (j, col) in acc.iter_mut().enumerate() {
            let bj = vdupq_n_f64(*bp.add(j));
            col[0] = vfmaq_f64(col[0], a0, bj);
            col[1] = vfmaq_f64(col[1], a1, bj);
            col[2] = vfmaq_f64(col[2], a2, bj);
            col[3] = vfmaq_f64(col[3], a3, bj);
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    let av = vdupq_n_f64(alpha);
    let base = c_chunk.as_mut_ptr();
    for (j, col_acc) in acc.iter().enumerate().take(nr_eff) {
        let col = base.add(j * ldc + row0);
        if mr_eff == MR {
            for (h, half) in col_acc.iter().enumerate() {
                let p = col.add(2 * h);
                vst1q_f64(p, vfmaq_f64(vld1q_f64(p), av, *half));
            }
        } else {
            // Fringe rows: spill the tile and finish with scalar fmadds,
            // keeping the whole path FMA-rounded and geometry-determined.
            let mut tile = [0.0f64; MR];
            for (h, half) in col_acc.iter().enumerate() {
                vst1q_f64(tile.as_mut_ptr().add(2 * h), *half);
            }
            for (i, t) in tile.iter().enumerate().take(mr_eff) {
                *col.add(i) = alpha.mul_add(*t, *col.add(i));
            }
        }
    }
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn stream_copy(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(d.add(i), vld1q_f64(s.add(i)));
        i += 2;
    }
    while i < n {
        *d.add(i) = *s.add(i);
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn stream_scale(dst: &mut [f64], src: &[f64], scale: f64) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let sv = vdupq_n_f64(scale);
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(d.add(i), vmulq_f64(sv, vld1q_f64(s.add(i))));
        i += 2;
    }
    while i < n {
        *d.add(i) = scale * *s.add(i);
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn stream_add(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let n = dst.len();
    let (d, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(d.add(i), vaddq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))));
        i += 2;
    }
    while i < n {
        *d.add(i) = *ap.add(i) + *bp.add(i);
        i += 1;
    }
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn stream_triad(dst: &mut [f64], a: &[f64], b: &[f64], scale: f64) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let n = dst.len();
    let (d, ap, bp) = (dst.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let sv = vdupq_n_f64(scale);
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(d.add(i), vfmaq_f64(vld1q_f64(ap.add(i)), sv, vld1q_f64(bp.add(i))));
        i += 2;
    }
    while i < n {
        *d.add(i) = scale.mul_add(*bp.add(i), *ap.add(i));
        i += 1;
    }
}
