//! Communication benchmark — the b_eff (effective bandwidth) analogue.
//!
//! The seventh HPC Challenge test measures the network's latency and
//! bandwidth. With no cluster available, the same *code path* is exercised
//! between threads: bounded crossbeam channels carry `bytes::Bytes`
//! messages between worker "ranks", measuring
//!
//! * **ping-pong latency** — round-trip time of a minimal message between
//!   two ranks, halved;
//! * **ring bandwidth** — every rank forwards fixed-size messages around a
//!   ring, reporting aggregate delivered bytes/second.
//!
//! Shared-memory numbers are orders of magnitude better than any NIC's, but
//! the *shape* (latency floor, bandwidth saturating with message size) is
//! the same phenomenon b_eff reports, and the harness treats the result
//! like any other benchmark measurement.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for the communication benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Ranks (threads) in the ring.
    pub ranks: usize,
    /// Message payload size in bytes for the bandwidth phase.
    pub message_bytes: usize,
    /// Messages each rank forwards during the bandwidth phase.
    pub messages_per_rank: usize,
    /// Round trips for the latency phase.
    pub pingpong_rounds: usize,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            ranks: 4,
            message_bytes: 1 << 20,
            messages_per_rank: 64,
            pingpong_rounds: 1000,
        }
    }
}

impl CommConfig {
    /// A configuration sized for unit tests.
    pub fn small() -> Self {
        CommConfig { ranks: 3, message_bytes: 4 << 10, messages_per_rank: 16, pingpong_rounds: 64 }
    }
}

/// Result of a communication benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommResult {
    /// One-way small-message latency, seconds.
    pub latency_s: f64,
    /// Aggregate ring bandwidth, bytes/second.
    pub ring_bytes_per_sec: f64,
    /// Total bytes moved during the bandwidth phase.
    pub total_bytes: f64,
}

impl CommResult {
    /// Latency in microseconds (the unit b_eff reports).
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Bandwidth in MB/s (decimal).
    pub fn ring_mbps(&self) -> f64 {
        self.ring_bytes_per_sec / 1e6
    }
}

/// Runs the latency and bandwidth phases.
///
/// # Panics
/// Panics on a configuration with fewer than 2 ranks or zero-sized phases.
pub fn run(config: CommConfig) -> CommResult {
    assert!(config.ranks >= 2, "need at least two ranks");
    assert!(config.message_bytes > 0, "message size must be positive");
    assert!(config.messages_per_rank > 0, "message count must be positive");
    assert!(config.pingpong_rounds > 0, "round count must be positive");

    let latency_s = pingpong_latency(config.pingpong_rounds);
    let (ring_bytes_per_sec, total_bytes) = ring_bandwidth(config);
    CommResult { latency_s, ring_bytes_per_sec, total_bytes }
}

/// Half the mean round-trip time of a 1-byte message between two threads.
fn pingpong_latency(rounds: usize) -> f64 {
    let (to_b, from_a): (Sender<Bytes>, Receiver<Bytes>) = bounded(1);
    let (to_a, from_b): (Sender<Bytes>, Receiver<Bytes>) = bounded(1);
    let echo = std::thread::spawn(move || {
        while let Ok(msg) = from_a.recv() {
            if to_a.send(msg).is_err() {
                break;
            }
        }
    });
    let payload = Bytes::from_static(b"x");
    // Warm-up round outside the timed region.
    to_b.send(payload.clone()).expect("echo thread alive");
    from_b.recv().expect("echo thread alive");

    let start = Instant::now();
    for _ in 0..rounds {
        to_b.send(payload.clone()).expect("echo thread alive");
        from_b.recv().expect("echo thread alive");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(to_b);
    echo.join().expect("echo thread exits cleanly");
    elapsed / rounds as f64 / 2.0
}

/// Every rank forwards messages around a ring; returns aggregate bytes/s
/// and total bytes moved.
fn ring_bandwidth(config: CommConfig) -> (f64, f64) {
    let ranks = config.ranks;
    // Channel i carries messages from rank i to rank (i+1) % ranks.
    let mut senders = Vec::with_capacity(ranks);
    let mut receivers = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = bounded::<Bytes>(4);
        senders.push(tx);
        receivers.push(rx);
    }
    // Rank i receives from channel (i + ranks - 1) % ranks, sends on i.
    // Reorder the receivers accordingly.
    receivers.rotate_right(1);

    let payload = Bytes::from(vec![0xA5u8; config.message_bytes]);
    let per_rank = config.messages_per_rank;
    let start = Instant::now();
    let mut handles = Vec::with_capacity(ranks);
    for (rank, (tx, rx)) in senders.into_iter().zip(receivers).enumerate() {
        let payload = payload.clone();
        handles.push(std::thread::spawn(move || {
            let mut received = 0usize;
            let mut sent = 0usize;
            // Rank 0 injects the first message to break symmetry.
            if rank == 0 {
                tx.send(payload.clone()).expect("ring neighbour alive");
                sent += 1;
            }
            while received < per_rank {
                let msg = rx.recv().expect("ring neighbour alive");
                received += 1;
                if sent < per_rank {
                    tx.send(msg).expect("ring neighbour alive");
                    sent += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("ring thread exits cleanly");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total = (ranks * per_rank * config.message_bytes) as f64;
    (total / elapsed, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_reports_positive_metrics() {
        let r = run(CommConfig::small());
        assert!(r.latency_s > 0.0);
        assert!(r.latency_us() < 1e4, "thread ping-pong should be far under 10 ms");
        assert!(r.ring_bytes_per_sec > 0.0);
        assert!(r.ring_mbps() > 0.0);
        assert_eq!(r.total_bytes, (3 * 16 * (4 << 10)) as f64);
    }

    #[test]
    fn two_rank_ring_works() {
        let mut c = CommConfig::small();
        c.ranks = 2;
        let r = run(c);
        assert!(r.ring_bytes_per_sec > 0.0);
    }

    #[test]
    fn larger_messages_raise_bandwidth() {
        // Latency-dominated small messages vs payload-dominated large ones.
        let mut small = CommConfig::small();
        small.message_bytes = 64;
        small.messages_per_rank = 64;
        let mut large = CommConfig::small();
        large.message_bytes = 256 << 10;
        large.messages_per_rank = 64;
        let bw_small = run(small).ring_bytes_per_sec;
        let bw_large = run(large).ring_bytes_per_sec;
        assert!(bw_large > bw_small * 5.0, "large {bw_large} should dwarf small {bw_small}");
    }

    #[test]
    fn latency_is_stable_order_of_magnitude() {
        let a = run(CommConfig::small()).latency_s;
        let b = run(CommConfig::small()).latency_s;
        assert!(a / b < 100.0 && b / a < 100.0, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_rank_panics() {
        let mut c = CommConfig::small();
        c.ranks = 1;
        run(c);
    }

    #[test]
    #[should_panic(expected = "message size")]
    fn zero_message_panics() {
        let mut c = CommConfig::small();
        c.message_bytes = 0;
        run(c);
    }
}
