//! STREAM — sustainable memory bandwidth (McCalpin), §IV-A of the paper.
//!
//! "There are four different computations performed by the benchmark: Copy,
//! Scale, Add, and Triad. We are mainly interested in Triad … Triad scales a
//! vector A and adds it to another vector B and writes the result to a third
//! vector C" (Eq. 16: `C = α·A + B`).
//!
//! Faithful to the reference benchmark:
//!
//! * three working arrays much larger than cache;
//! * each kernel timed over `ntimes` repetitions, *best* time reported;
//! * bandwidth accounting per the official byte counts (Copy/Scale move
//!   2 words per element, Add/Triad move 3);
//! * parallelized over array chunks (the rayon analogue of STREAM's OpenMP
//!   pragmas), with each chunk body dispatched to the active SIMD path
//!   (scalar / AVX2 / NEON — see [`crate::simd`]);
//! * arrays are initialized first-touch in parallel chunks
//!   ([`rayon::resize_first_touch`]), so with a pinned pool
//!   (`TGI_PIN_THREADS=1`) pages land on the NUMA node of the worker
//!   that streams them.

use crate::simd::{self, Isa};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Elements per parallel task: 64 KiB chunks — big enough that dispatch
/// and task overheads vanish, small enough for load balancing.
const PAR_CHUNK: usize = 8 << 10;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `C = A`
    Copy,
    /// `B = α·C`
    Scale,
    /// `C = A + B`
    Add,
    /// `C = α·A + B` (Eq. 16) — the kernel the paper reports.
    Triad,
}

impl StreamKernel {
    /// All four kernels in benchmark order.
    pub const ALL: [StreamKernel; 4] =
        [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad];

    /// Words moved per element (reads + writes), per the STREAM rules.
    pub fn words_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2,
            StreamKernel::Add | StreamKernel::Triad => 3,
        }
    }

    /// Display name matching the reference benchmark's output.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }
}

/// Configuration for a STREAM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Elements per array. The STREAM rule is ≥ 4× the last-level cache.
    pub array_size: usize,
    /// Repetitions per kernel; best time wins (reference default 10).
    pub ntimes: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        // 8 M elements × 3 arrays × 8 B = 192 MB: far beyond any LLC.
        StreamConfig { array_size: 8 << 20, ntimes: 10 }
    }
}

impl StreamConfig {
    /// A config sized for tests (small arrays, few repetitions).
    pub fn small() -> Self {
        StreamConfig { array_size: 1 << 16, ntimes: 3 }
    }
}

/// Result of one kernel within a STREAM run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Which kernel.
    pub kernel: StreamKernel,
    /// Best bandwidth across repetitions, bytes/second.
    pub best_bytes_per_sec: f64,
    /// Best (minimum) time, seconds.
    pub best_seconds: f64,
    /// Worst (maximum) time, seconds.
    pub worst_seconds: f64,
}

/// Result of a full STREAM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// Per-kernel timings in benchmark order.
    pub kernels: Vec<KernelTiming>,
    /// Array size used.
    pub array_size: usize,
    /// Total wall-clock seconds for the whole run.
    pub total_seconds: f64,
    /// Maximum relative error of the final array values against the
    /// analytic expectation — the reference STREAM's results check.
    pub max_relative_error: f64,
    /// Whether the results check passed (error < 1e-13, STREAM's epsilon).
    pub validated: bool,
}

impl StreamResult {
    /// The Triad bandwidth in MB/s (decimal) — the number the paper reports.
    pub fn triad_mbps(&self) -> f64 {
        self.timing(StreamKernel::Triad).best_bytes_per_sec / 1e6
    }

    /// Timing record for a specific kernel.
    ///
    /// # Panics
    /// Panics if the kernel is missing (cannot happen for results produced
    /// by [`run`]).
    pub fn timing(&self, kernel: StreamKernel) -> &KernelTiming {
        self.kernels.iter().find(|k| k.kernel == kernel).expect("all four kernels present")
    }
}

/// The scalar used by Scale and Triad (the reference uses 3.0).
pub const SCALAR: f64 = 3.0;

/// Runs the STREAM benchmark on the process-wide dispatched ISA
/// ([`crate::simd::active`]).
///
/// Faithful to the reference driver: each repetition executes the full
/// Copy→Scale→Add→Triad cycle, each kernel is timed within the cycle, the
/// per-kernel *minimum* across repetitions is reported, and the final array
/// contents are checked against the analytic expectation.
pub fn run(config: StreamConfig) -> StreamResult {
    run_with_isa(simd::active(), config)
}

/// [`run`] on an explicitly chosen ISA path — the hook the SIMD oracle
/// tests use to validate every supported path in one process.
pub fn run_with_isa(isa: Isa, config: StreamConfig) -> StreamResult {
    assert!(config.array_size > 0, "array size must be positive");
    assert!(config.ntimes > 0, "ntimes must be positive");
    let n = config.array_size;
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut c = Vec::new();
    rayon::resize_first_touch(&mut a, n, 1.0f64);
    rayon::resize_first_touch(&mut b, n, 2.0f64);
    rayon::resize_first_touch(&mut c, n, 0.0f64);

    let run_start = Instant::now();
    let mut best = [f64::INFINITY; 4];
    let mut worst = [0.0f64; 4];
    for _ in 0..config.ntimes {
        for (ki, kernel) in StreamKernel::ALL.into_iter().enumerate() {
            let start = Instant::now();
            // Each task owns one disjoint PAR_CHUNK-sized &mut chunk of the
            // destination and reads the matching source range; the per-chunk
            // body is the dispatched SIMD loop. Element results depend only
            // on element inputs, so every thread count and chunk split is
            // bit-identical for a fixed ISA.
            match kernel {
                StreamKernel::Copy => {
                    c.par_chunks_mut(PAR_CHUNK).enumerate().for_each(|(i, cc)| {
                        let o = i * PAR_CHUNK;
                        simd::stream_copy(isa, cc, &a[o..o + cc.len()]);
                    });
                }
                StreamKernel::Scale => {
                    b.par_chunks_mut(PAR_CHUNK).enumerate().for_each(|(i, bc)| {
                        let o = i * PAR_CHUNK;
                        simd::stream_scale(isa, bc, &c[o..o + bc.len()], SCALAR);
                    });
                }
                StreamKernel::Add => {
                    c.par_chunks_mut(PAR_CHUNK).enumerate().for_each(|(i, cc)| {
                        let o = i * PAR_CHUNK;
                        simd::stream_add(isa, cc, &a[o..o + cc.len()], &b[o..o + cc.len()]);
                    });
                }
                StreamKernel::Triad => {
                    a.par_chunks_mut(PAR_CHUNK).enumerate().for_each(|(i, ac)| {
                        let o = i * PAR_CHUNK;
                        simd::stream_triad(
                            isa,
                            ac,
                            &b[o..o + ac.len()],
                            &c[o..o + ac.len()],
                            SCALAR,
                        );
                    });
                }
            }
            let t = start.elapsed().as_secs_f64().max(1e-9);
            best[ki] = best[ki].min(t);
            worst[ki] = worst[ki].max(t);
        }
    }
    let results: Vec<KernelTiming> = StreamKernel::ALL
        .into_iter()
        .enumerate()
        .map(|(ki, kernel)| {
            let bytes = (kernel.words_per_element() * 8 * n) as f64;
            KernelTiming {
                kernel,
                best_bytes_per_sec: bytes / best[ki],
                best_seconds: best[ki],
                worst_seconds: worst[ki],
            }
        })
        .collect();

    // Results check (the reference's checkSTREAMresults): every element of
    // each array must equal the analytic value after `ntimes` cycles.
    let (ea, eb, ec) = expected_values(config.ntimes);
    let rel = |got: f64, want: f64| ((got - want) / want).abs();
    let max_relative_error = a
        .iter()
        .map(|&v| rel(v, ea))
        .chain(b.iter().map(|&v| rel(v, eb)))
        .chain(c.iter().map(|&v| rel(v, ec)))
        .fold(0.0, f64::max);

    StreamResult {
        kernels: results,
        array_size: n,
        total_seconds: run_start.elapsed().as_secs_f64(),
        max_relative_error,
        validated: max_relative_error < 1e-13,
    }
}

/// Verifies the STREAM invariant analytically: after the Copy→Scale→Add→
/// Triad cycle starting from `a=1, b=2, c=0`, every element of each array
/// holds a single known value. Returns `(a, b, c)` expected element values
/// after `cycles` full kernel cycles.
pub fn expected_values(cycles: usize) -> (f64, f64, f64) {
    let (mut a, mut b, mut c) = (1.0f64, 2.0f64, 0.0f64);
    for _ in 0..cycles {
        c = a; // Copy
        b = SCALAR * c; // Scale
        c = a + b; // Add
        a = b + SCALAR * c; // Triad
    }
    (a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_all_four_kernels() {
        let r = run(StreamConfig::small());
        assert_eq!(r.kernels.len(), 4);
        assert!(r.validated, "results check failed: {}", r.max_relative_error);
        for k in StreamKernel::ALL {
            let t = r.timing(k);
            assert!(t.best_bytes_per_sec > 0.0, "{:?} has zero bandwidth", k);
            assert!(t.best_seconds <= t.worst_seconds);
        }
        assert!(r.triad_mbps() > 0.0);
        assert!(r.total_seconds > 0.0);
    }

    #[test]
    fn byte_accounting_follows_stream_rules() {
        assert_eq!(StreamKernel::Copy.words_per_element(), 2);
        assert_eq!(StreamKernel::Scale.words_per_element(), 2);
        assert_eq!(StreamKernel::Add.words_per_element(), 3);
        assert_eq!(StreamKernel::Triad.words_per_element(), 3);
    }

    #[test]
    fn kernel_names_match_reference_output() {
        let names: Vec<&str> = StreamKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["Copy", "Scale", "Add", "Triad"]);
    }

    #[test]
    fn kernels_compute_correct_values() {
        // Replicate one cycle manually on tiny arrays (serial semantics are
        // identical to the parallel kernels — element-wise, no races).
        let n = 64;
        let mut a = vec![1.0f64; n];
        let mut b = vec![2.0f64; n];
        let mut c = vec![0.0f64; n];
        for (cv, av) in c.iter_mut().zip(&a) {
            *cv = *av;
        }
        for (bv, cv) in b.iter_mut().zip(&c) {
            *bv = SCALAR * *cv;
        }
        let c2: Vec<f64> = a.iter().zip(&b).map(|(a, b)| a + b).collect();
        c.copy_from_slice(&c2);
        let a2: Vec<f64> = b.iter().zip(&c).map(|(b, c)| b + SCALAR * c).collect();
        a.copy_from_slice(&a2);
        let (ea, eb, ec) = expected_values(1);
        assert!(a.iter().all(|&v| (v - ea).abs() < 1e-12));
        assert!(b.iter().all(|&v| (v - eb).abs() < 1e-12));
        assert!(c.iter().all(|&v| (v - ec).abs() < 1e-12));
    }

    #[test]
    fn results_check_validates_many_cycles() {
        // After 10 cycles the values are astronomically large; the check
        // must still hold exactly in relative terms.
        let r = run(StreamConfig { array_size: 1024, ntimes: 10 });
        assert!(r.validated, "error {}", r.max_relative_error);
        let (ea, _, _) = expected_values(10);
        assert!(ea > 1e10, "values grow fast: {ea}");
    }

    #[test]
    fn expected_values_one_cycle() {
        // a=1,b=2,c=0 → Copy: c=1; Scale: b=3; Add: c=4; Triad: a=3+12=15.
        assert_eq!(expected_values(1), (15.0, 3.0, 4.0));
    }

    #[test]
    fn triad_is_fastest_reported_metric_unit() {
        let r = run(StreamConfig::small());
        let triad = r.timing(StreamKernel::Triad);
        let mbps = r.triad_mbps();
        assert!((mbps - triad.best_bytes_per_sec / 1e6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_array_size_panics() {
        run(StreamConfig { array_size: 0, ntimes: 1 });
    }

    #[test]
    #[should_panic(expected = "ntimes")]
    fn zero_ntimes_panics() {
        run(StreamConfig { array_size: 16, ntimes: 0 });
    }
}
