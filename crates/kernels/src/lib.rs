//! # hpc-kernels — native benchmark kernels for the TGI suite
//!
//! The TGI paper evaluates energy efficiency with a benchmark suite: HPL for
//! computation, STREAM for memory, and IOzone for I/O (§IV-A). This crate
//! implements those workloads natively in Rust — real compute, real memory
//! traffic, real file I/O — plus the HPCC-style extensions the paper's
//! introduction motivates (the HPC Challenge suite has seven tests):
//!
//! * [`hpl`] — dense `Ax = b` solve via blocked LU factorization with row
//!   partial pivoting, exactly HPL's algorithm and FLOP accounting.
//! * [`stream`] — McCalpin's Copy/Scale/Add/Triad sustainable-bandwidth
//!   kernels.
//! * [`iobench`] — IOzone-style sequential write/rewrite/read file tests.
//! * [`gemm`] — blocked, parallel DGEMM (also the compute core of HPL).
//! * [`fft`] — radix-2 complex FFT (HPCC FFT analogue).
//! * [`ptrans`] — parallel blocked matrix transpose (HPCC PTRANS analogue).
//! * [`random_access`] — GUPS table-update kernel (HPCC RandomAccess).
//! * [`comm`] — b_eff-style latency/bandwidth benchmark over channels.
//! * [`mixed`] — f32 LU + f64 iterative refinement (the HPL-AI energy
//!   technique), with honest convergence reporting.
//!
//! All kernels are multi-threaded via the in-tree `rayon` shim, which runs
//! a real work-sharing thread pool sized by `available_parallelism()` and
//! overridable with the `TGI_NUM_THREADS` environment variable
//! (`TGI_NUM_THREADS=1` pins every kernel to fully sequential execution).
//! Parallel tasks write disjoint `&mut` output chunks, so GEMM, PTRANS and
//! the LU trailing update are bit-identical at every thread count. The hot
//! kernel bodies (GEMM/LU microkernel, STREAM loops, GUPS stream) dispatch
//! through [`simd`] to runtime-detected AVX2/NEON paths, overridable with
//! `TGI_KERNEL_ISA`. Kernels report the same metrics the original
//! benchmarks report (GFLOPS, MB/s, GUPS), with explicit work accounting so
//! power and energy models can reuse the numbers; the [`timing`] helpers
//! repeat tiny problems until the clock resolves, so no benchmark ever
//! reports `inf`. Because each kernel may now use the whole machine, the
//! suite runner executes metered items exclusively (see `tgi-suite`) rather
//! than overlapping them.

// `simd` is the single intrinsics surface and carries its own narrow
// `allow(unsafe_code)`; everything else stays deny-clean.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod complex;
pub mod condest;
pub mod fft;
pub mod gemm;
pub mod hpl;
pub mod iobench;
pub mod lu;
pub mod matrix;
pub mod mixed;
pub mod ptrans;
pub mod random_access;
pub mod simd;
pub mod stream;
pub mod timing;

pub use comm::{CommConfig, CommResult};
pub use complex::Complex64;
pub use hpl::{HplConfig, HplResult};
pub use iobench::{IoBenchConfig, IoBenchResult, IoOperation};
pub use matrix::Matrix;
pub use random_access::{GupsConfig, GupsResult};
pub use simd::Isa;
pub use stream::{StreamConfig, StreamKernel, StreamResult};

/// Work accounting for one kernel execution, used by power/energy models to
/// attribute utilization to subsystems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Work {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read from + written to memory (approximate, by kernel formula).
    pub bytes_moved: f64,
    /// Bytes read from or written to storage.
    pub io_bytes: f64,
}

impl Work {
    /// Pure-compute work.
    pub fn compute(flops: f64, bytes_moved: f64) -> Self {
        Work { flops, bytes_moved, io_bytes: 0.0 }
    }

    /// Pure-I/O work.
    pub fn io(io_bytes: f64) -> Self {
        Work { flops: 0.0, bytes_moved: io_bytes, io_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_constructors() {
        let w = Work::compute(100.0, 800.0);
        assert_eq!(w.flops, 100.0);
        assert_eq!(w.io_bytes, 0.0);
        let io = Work::io(4096.0);
        assert_eq!(io.io_bytes, 4096.0);
        assert_eq!(io.flops, 0.0);
    }
}
