//! 1-norm condition-number estimation from an LU factorization.
//!
//! HPL's residual test scales by machine epsilon and the problem norms; a
//! meaningful interpretation of that residual needs κ₁(A). Computing the
//! exact condition number costs a full inversion, so, as LAPACK does, we
//! estimate `‖A⁻¹‖₁` with Hager's power method on the dual norm — each
//! iteration costs two triangular solves with the existing factors (one
//! with `A`, one with `Aᵀ`).

use crate::lu::solve_factored;
use crate::matrix::Matrix;

/// Solves `Aᵀ x = b` given the in-place LU factors of `A` and its pivots.
///
/// From `P·A = L·U`: `Aᵀ = Uᵀ·Lᵀ·P`, so solve `Uᵀ z = b` (lower-triangular
/// forward pass), `Lᵀ w = z` (unit upper-triangular backward pass), then
/// undo the permutation.
pub fn solve_transposed_factored(lu: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(piv.len(), n);
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();

    // Uᵀ z = b: Uᵀ is lower triangular with U's diagonal.
    for k in 0..n {
        let col = lu.col(k);
        let mut s = x[k];
        // Uᵀ[k][i] = U[i][k] = lu[(i,k)] for i < k.
        for (i, xi) in x.iter().enumerate().take(k) {
            s -= col[i] * xi;
        }
        x[k] = s / col[k];
    }
    // Lᵀ w = z: Lᵀ is unit upper triangular; Lᵀ[k][i] = L[i][k] for i > k.
    for k in (0..n).rev() {
        let mut s = x[k];
        for i in k + 1..n {
            s -= lu[(i, k)] * x[i];
        }
        x[k] = s;
    }
    // y = Pᵀ w: undo the row swaps in reverse order.
    for (k, &p) in piv.iter().enumerate().rev() {
        x.swap(k, p);
    }
    x
}

/// Estimates `‖A⁻¹‖₁` with Hager's algorithm (at most `max_iter` refinement
/// steps; 5 matches LAPACK's practice).
pub fn inverse_norm1_estimate(lu: &Matrix, piv: &[usize]) -> f64 {
    let n = lu.rows();
    assert!(n > 0, "empty matrix has no condition number");
    let max_iter = 5;

    let mut x = vec![1.0 / n as f64; n];
    let mut estimate = 0.0;
    let mut last_j = usize::MAX;
    for _ in 0..max_iter {
        // y = A⁻¹ x
        let y = solve_factored(lu, piv, &x);
        estimate = y.iter().map(|v| v.abs()).sum();
        // ξ = sign(y)
        let xi: Vec<f64> = y.iter().map(|v| if *v >= 0.0 { 1.0 } else { -1.0 }).collect();
        // z = A⁻ᵀ ξ
        let z = solve_transposed_factored(lu, piv, &xi);
        // Convergence: max |z_j| ≤ zᵀx means the current estimate is a
        // local maximum of the dual problem.
        let (j, zmax) = z
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= ztx || j == last_j {
            break;
        }
        last_j = j;
        x = vec![0.0; n];
        x[j] = 1.0;
    }
    estimate
}

/// Estimated 1-norm condition number `κ₁(A) ≈ ‖A‖₁ · est(‖A⁻¹‖₁)`.
///
/// `a` must be the *original* matrix (for its norm); `lu`/`piv` its factors.
pub fn condition_estimate(a: &Matrix, lu: &Matrix, piv: &[usize]) -> f64 {
    a.norm_one() * inverse_norm1_estimate(lu, piv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::factor_blocked;
    use proptest::prelude::*;

    fn factors(a: &Matrix) -> (Matrix, Vec<usize>) {
        let mut lu = a.clone();
        let piv = factor_blocked(&mut lu, 8).expect("non-singular");
        (lu, piv)
    }

    /// Exact 1-norm of A⁻¹ by solving against every unit vector.
    fn exact_inverse_norm1(a: &Matrix) -> f64 {
        let n = a.rows();
        let (lu, piv) = factors(a);
        let mut best = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = solve_factored(&lu, &piv, &e);
            best = best.max(col.iter().map(|v| v.abs()).sum());
        }
        best
    }

    #[test]
    fn transposed_solve_is_correct() {
        let n = 24;
        let a = Matrix::random(n, n, 5);
        let (lu, piv) = factors(&a);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let x = solve_transposed_factored(&lu, &piv, &b);
        // Check Aᵀ x = b via explicit transpose.
        let at = a.transpose();
        let atx = at.matvec(&x);
        for (got, want) in atx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn identity_has_condition_one() {
        let a = Matrix::identity(16);
        let (lu, piv) = factors(&a);
        let cond = condition_estimate(&a, &lu, &piv);
        assert!((cond - 1.0).abs() < 1e-12, "κ₁(I) = {cond}");
    }

    #[test]
    fn diagonal_condition_is_ratio() {
        // diag(1, 10, 100): κ₁ = 100.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 10.0;
        a[(2, 2)] = 100.0;
        let (lu, piv) = factors(&a);
        let cond = condition_estimate(&a, &lu, &piv);
        assert!((cond - 100.0).abs() < 1e-9, "got {cond}");
    }

    #[test]
    fn estimate_is_lower_bound_and_close_for_random_matrices() {
        for seed in [1u64, 2, 3, 9, 17] {
            let a = Matrix::random(20, 20, seed);
            let (lu, piv) = factors(&a);
            let est = inverse_norm1_estimate(&lu, &piv);
            let exact = exact_inverse_norm1(&a);
            assert!(est <= exact * (1.0 + 1e-9), "seed {seed}: est {est} > exact {exact}");
            // Hager's estimate is typically within a small factor.
            assert!(est >= exact / 3.0, "seed {seed}: est {est} far below exact {exact}");
        }
    }

    #[test]
    fn nearly_singular_matrix_has_large_condition() {
        // Rows nearly parallel.
        let a = Matrix::from_col_major(2, 2, vec![1.0, 1.0, 1.0, 1.0 + 1e-8]);
        let (lu, piv) = factors(&a);
        let cond = condition_estimate(&a, &lu, &piv);
        assert!(cond > 1e7, "κ₁ = {cond}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Well-conditioned (diagonally dominant) matrices report modest κ.
        #[test]
        fn prop_dominant_matrices_well_conditioned(n in 2usize..24, seed in 0u64..100) {
            let mut a = Matrix::random(n, n, seed);
            for i in 0..n {
                a[(i, i)] += n as f64 + 1.0;
            }
            let (lu, piv) = factors(&a);
            let cond = condition_estimate(&a, &lu, &piv);
            prop_assert!(cond >= 1.0 - 1e-9, "κ₁ below 1: {cond}");
            prop_assert!(cond < 1e4, "κ₁ too large for a dominant matrix: {cond}");
        }
    }
}
