//! PTRANS-style parallel matrix transpose — `A ← Aᵀ + C`.
//!
//! The HPC Challenge PTRANS test exercises the communication/memory system
//! by transposing a large dense matrix and adding another: useful here as a
//! memory-latency-bound counterpoint to STREAM's pure streaming bandwidth.
//! The kernel is cache-blocked (transposing tile-by-tile keeps one tile of
//! the source and destination resident) and parallelized over destination
//! column-blocks.

use crate::matrix::Matrix;
use crate::timing::time_until_resolved;
use rayon::prelude::*;

/// Tile edge for the blocked transpose.
const TILE: usize = 64;

/// Out-of-place blocked transpose-add: `dst = srcᵀ + add`.
///
/// # Panics
/// Panics unless `dst` is `cols×rows` of `src` and `add` matches `dst`.
pub fn transpose_add(src: &Matrix, add: &Matrix, dst: &mut Matrix) {
    let (m, n) = (src.rows(), src.cols());
    assert_eq!(dst.rows(), n, "dst must be cols×rows of src");
    assert_eq!(dst.cols(), m, "dst must be cols×rows of src");
    assert_eq!(add.rows(), n, "add must match dst shape");
    assert_eq!(add.cols(), m, "add must match dst shape");
    if m == 0 || n == 0 {
        return;
    }

    let src_data = src.as_slice();
    let add_data = add.as_slice();
    let dst_rows = n;
    // Parallelize over column-tiles of dst (i.e. row-tiles of src).
    let col_tiles: Vec<usize> = (0..m).step_by(TILE).collect();
    let dst_slice = dst.as_mut_slice();
    // Partition dst into disjoint column-tile slabs.
    let mut slabs: Vec<&mut [f64]> = Vec::with_capacity(col_tiles.len());
    let mut rest = dst_slice;
    for &j0 in &col_tiles {
        let width = TILE.min(m - j0);
        let (slab, tail) = rest.split_at_mut(width * dst_rows);
        slabs.push(slab);
        rest = tail;
    }

    slabs.into_par_iter().zip(col_tiles).for_each(|(slab, j0)| {
        let width = TILE.min(m - j0);
        // Within the slab, sweep row-tiles of dst.
        let mut i0 = 0;
        while i0 < n {
            let height = TILE.min(n - i0);
            for dj in 0..width {
                let src_row = j0 + dj; // dst column j0+dj = src row j0+dj
                let dst_col = &mut slab[dj * dst_rows..(dj + 1) * dst_rows];
                let add_col = &add_data[(j0 + dj) * dst_rows..(j0 + dj + 1) * dst_rows];
                for di in 0..height {
                    let src_col_idx = i0 + di; // dst row index = src column
                    let v = src_data[src_row + src_col_idx * m];
                    dst_col[i0 + di] = v + add_col[i0 + di];
                }
            }
            i0 += height;
        }
    });
}

/// Bytes moved by one transpose-add of an `m×n` source: read src + read add
/// + write dst, 8 bytes each.
pub fn bytes_moved(m: usize, n: usize) -> f64 {
    3.0 * 8.0 * m as f64 * n as f64
}

/// Result of a PTRANS benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtransResult {
    /// Matrix order (square case).
    pub n: usize,
    /// Achieved bandwidth, bytes/second.
    pub bytes_per_sec: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl PtransResult {
    /// Bandwidth in decimal GB/s (HPCC's PTRANS unit).
    pub fn gbps(&self) -> f64 {
        self.bytes_per_sec / 1e9
    }
}

/// Runs a square PTRANS benchmark of order `n`.
///
/// Tiny orders complete below the clock's resolution, so the transpose
/// is repeated until the accumulated time is measurable; the reported
/// bandwidth is a per-transpose mean and always finite.
pub fn benchmark(n: usize, seed: u64) -> PtransResult {
    let a = Matrix::random(n, n, seed);
    let c = Matrix::random(n, n, seed.wrapping_add(1));
    let mut out = Matrix::zeros(n, n);
    let (_, seconds) = time_until_resolved(|| transpose_add(&a, &c, &mut out));
    assert!(out.norm_frobenius().is_finite());
    PtransResult { n, bytes_per_sec: bytes_moved(n, n) / seconds, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(src: &Matrix, add: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(src.cols(), src.rows());
        for j in 0..src.cols() {
            for i in 0..src.rows() {
                out[(j, i)] = src[(i, j)] + add[(j, i)];
            }
        }
        out
    }

    #[test]
    fn matches_naive_various_shapes() {
        for (m, n) in [(1, 1), (3, 5), (64, 64), (65, 63), (130, 70), (1, 200)] {
            let a = Matrix::random(m, n, 1);
            let c = Matrix::random(n, m, 2);
            let mut out = Matrix::zeros(n, m);
            transpose_add(&a, &c, &mut out);
            let expected = naive(&a, &c);
            assert!(out.max_abs_diff(&expected) < 1e-14, "shape ({m},{n})");
        }
    }

    #[test]
    fn zero_add_is_pure_transpose() {
        let a = Matrix::random(48, 32, 5);
        let zero = Matrix::zeros(32, 48);
        let mut out = Matrix::zeros(32, 48);
        transpose_add(&a, &zero, &mut out);
        assert!(out.max_abs_diff(&a.transpose()) < 1e-14);
    }

    #[test]
    fn empty_matrix_is_noop() {
        let a = Matrix::zeros(0, 0);
        let c = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        transpose_add(&a, &c, &mut out); // must not panic
    }

    #[test]
    #[should_panic(expected = "cols×rows")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let c = Matrix::zeros(4, 3);
        let mut out = Matrix::zeros(3, 4); // wrong: should be 4×3
        transpose_add(&a, &c, &mut out);
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(bytes_moved(100, 200), 3.0 * 8.0 * 20_000.0);
    }

    #[test]
    fn benchmark_reports_positive_bandwidth() {
        let r = benchmark(128, 11);
        assert!(r.bytes_per_sec > 0.0);
        assert!(r.gbps() > 0.0);
        assert_eq!(r.n, 128);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Double transpose-add with zero C recovers the original.
        #[test]
        fn prop_involution(m in 1usize..50, n in 1usize..50, seed in 0u64..100) {
            let a = Matrix::random(m, n, seed);
            let zero_nm = Matrix::zeros(n, m);
            let zero_mn = Matrix::zeros(m, n);
            let mut t = Matrix::zeros(n, m);
            transpose_add(&a, &zero_nm, &mut t);
            let mut tt = Matrix::zeros(m, n);
            transpose_add(&t, &zero_mn, &mut tt);
            prop_assert!(tt.max_abs_diff(&a) < 1e-14);
        }
    }
}
