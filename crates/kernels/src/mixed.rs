//! Mixed-precision LU with iterative refinement — the HPL-AI idea.
//!
//! A defining energy-efficiency technique of the decade after the paper:
//! factor in single precision (half the memory traffic, and on real
//! hardware a large FLOPS multiplier), then recover double-precision
//! accuracy with a few refinement sweeps:
//!
//! ```text
//! LU ≈ A          (f32 factorization)
//! x₀ = U⁻¹L⁻¹ b   (f32 solve)
//! repeat: r = b − A·x   (f64)
//!         d = U⁻¹L⁻¹ r  (f32 solve)
//!         x += d
//! ```
//!
//! Converges to f64 backward stability whenever `κ(A) ≪ 1/ε_f32 ≈ 1.7e7`;
//! the result reports whether it did, so the caller can fall back to the
//! full-precision solver. Benchmarked against the f64 path in
//! `lu_ablation`.

use crate::matrix::{vec_norm_inf, Matrix};

/// Result of a mixed-precision solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IrResult {
    /// The refined solution.
    pub x: Vec<f64>,
    /// Refinement iterations performed.
    pub iterations: usize,
    /// Final HPL-style scaled residual.
    pub scaled_residual: f64,
    /// Whether the residual reached the f64-quality target.
    pub converged: bool,
}

/// Error: the single-precision factorization hit a zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularInF32 {
    /// The elimination step at which the panel was singular in f32.
    pub step: usize,
}

impl std::fmt::Display for SingularInF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular in f32 at elimination step {}", self.step)
    }
}

impl std::error::Error for SingularInF32 {}

/// An f32 LU factorization (blocked right-looking, partial pivoting).
pub struct LuF32 {
    n: usize,
    data: Vec<f32>, // column-major, factors in place
    piv: Vec<usize>,
}

impl LuF32 {
    /// Factors a (demoted) copy of `a`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn factor(a: &Matrix, nb: usize) -> Result<Self, SingularInF32> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "LU requires a square matrix");
        assert!(nb > 0, "block size must be positive");
        let mut data: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
        let mut piv = vec![0usize; n];

        let mut k0 = 0;
        while k0 < n {
            let kb = nb.min(n - k0);
            // Panel factorization with swaps inside the panel.
            for k in k0..k0 + kb {
                let (mut p, mut max) = (k, data[k + k * n].abs());
                for i in k + 1..n {
                    let v = data[i + k * n].abs();
                    if v > max {
                        max = v;
                        p = i;
                    }
                }
                if max == 0.0 {
                    return Err(SingularInF32 { step: k });
                }
                piv[k] = p;
                if p != k {
                    for j in k0..k0 + kb {
                        data.swap(k + j * n, p + j * n);
                    }
                }
                let pivot = data[k + k * n];
                for i in k + 1..n {
                    data[i + k * n] /= pivot;
                }
                for j in k + 1..k0 + kb {
                    let ukj = data[k + j * n];
                    if ukj == 0.0 {
                        continue;
                    }
                    for i in k + 1..n {
                        let lik = data[i + k * n];
                        data[i + j * n] -= lik * ukj;
                    }
                }
            }
            // Apply the panel's swaps outside it.
            for k in k0..k0 + kb {
                let p = piv[k];
                if p != k {
                    for j in (0..k0).chain(k0 + kb..n) {
                        data.swap(k + j * n, p + j * n);
                    }
                }
            }
            // Triangular solve + trailing update, per column.
            for j in k0 + kb..n {
                for k in k0..k0 + kb {
                    let y = data[k + j * n];
                    if y == 0.0 {
                        continue;
                    }
                    for i in k + 1..k0 + kb {
                        let l = data[i + k * n];
                        data[i + j * n] -= l * y;
                    }
                }
                for k in k0..k0 + kb {
                    let y = data[k + j * n];
                    if y == 0.0 {
                        continue;
                    }
                    for i in k0 + kb..n {
                        let l = data[i + k * n];
                        data[i + j * n] -= l * y;
                    }
                }
            }
            k0 += kb;
        }
        Ok(LuF32 { n, data, piv })
    }

    /// Solves `A x ≈ b` with the f32 factors (input/output in f64).
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        for (k, &p) in self.piv.iter().enumerate() {
            x.swap(k, p);
        }
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for i in k + 1..n {
                    x[i] -= self.data[i + k * n] * xk;
                }
            }
        }
        for k in (0..n).rev() {
            x[k] /= self.data[k + k * n];
            let xk = x[k];
            if xk != 0.0 {
                for i in 0..k {
                    x[i] -= self.data[i + k * n] * xk;
                }
            }
        }
        x.into_iter().map(|v| v as f64).collect()
    }
}

/// HPL-style scaled residual used as the convergence target.
fn scaled_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    let denom = f64::EPSILON * (a.norm_inf() * vec_norm_inf(x) + vec_norm_inf(b)) * a.rows() as f64;
    vec_norm_inf(&r) / denom
}

/// Solves `A x = b` by f32 factorization plus f64 iterative refinement.
///
/// Converged means the HPL scaled residual dropped below 16 (the benchmark's
/// acceptance threshold) within `max_iterations`.
pub fn solve_refined(
    a: &Matrix,
    b: &[f64],
    nb: usize,
    max_iterations: usize,
) -> Result<IrResult, SingularInF32> {
    assert!(max_iterations > 0, "need at least one iteration");
    let lu = LuF32::factor(a, nb)?;
    let mut x = lu.solve(b);
    let mut best = scaled_residual(a, &x, b);
    let mut iterations = 0;
    while best > 16.0 && iterations < max_iterations {
        // r = b − A·x in f64: the step that restores double accuracy.
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let d = lu.solve(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        iterations += 1;
        let res = scaled_residual(a, &x, b);
        if !res.is_finite() || res >= best * 0.99 {
            // Stagnation: κ(A) too large for f32 factors to contract.
            best = res.min(best);
            break;
        }
        best = res;
    }
    Ok(IrResult { x, iterations, scaled_residual: best, converged: best <= 16.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use proptest::prelude::*;

    #[test]
    fn refined_solution_matches_f64_solver() {
        let n = 96;
        let a = Matrix::random(n, n, 11);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let refined = solve_refined(&a, &b, 32, 10).expect("non-singular");
        assert!(refined.converged, "residual {}", refined.scaled_residual);
        let x64 = lu::solve(a.clone(), &b, 32).expect("non-singular");
        for (xr, xd) in refined.x.iter().zip(&x64) {
            assert!((xr - xd).abs() < 1e-6 * xd.abs().max(1.0), "{xr} vs {xd}");
        }
    }

    #[test]
    fn first_f32_solve_alone_is_not_double_accurate() {
        // The refinement is doing real work: the unrefined f32 solution's
        // residual is orders of magnitude above the refined one's.
        let n = 128;
        let a = Matrix::random(n, n, 5);
        let b = vec![1.0f64; n];
        let lu32 = LuF32::factor(&a, 32).expect("non-singular");
        let x0 = lu32.solve(&b);
        let raw = scaled_residual(&a, &x0, &b);
        let refined = solve_refined(&a, &b, 32, 10).expect("non-singular");
        assert!(refined.converged);
        assert!(
            raw > refined.scaled_residual * 100.0,
            "raw {raw} vs refined {}",
            refined.scaled_residual
        );
        assert!(refined.iterations >= 1, "at least one refinement sweep");
    }

    #[test]
    fn well_conditioned_converges_in_few_sweeps() {
        let n = 64;
        let mut a = Matrix::random(n, n, 3);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b = vec![1.0f64; n];
        let r = solve_refined(&a, &b, 16, 10).expect("non-singular");
        assert!(r.converged);
        assert!(r.iterations <= 3, "took {} sweeps", r.iterations);
    }

    #[test]
    fn hilbert_defeats_f32_refinement() {
        // κ(H₁₂) ≈ 1e16 ≫ 1/ε_f32: the refinement must report failure, not
        // a silently-wrong answer.
        let n = 12;
        let h = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
        let b = vec![1.0f64; n];
        let r = solve_refined(&h, &b, 4, 25).expect("factorable in f32");
        assert!(!r.converged, "must not claim convergence: {}", r.scaled_residual);
    }

    #[test]
    fn singular_in_f32_detected() {
        let a = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(LuF32::factor(&a, 1).is_err());
        // An f64-regular matrix that *underflows* to singular in f32.
        let tiny = Matrix::from_col_major(2, 2, vec![1e-60, 0.0, 0.0, 1e-60]);
        assert!(LuF32::factor(&tiny, 1).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Diagonally dominant systems always converge to the HPL target.
        #[test]
        fn prop_dominant_systems_converge(n in 4usize..48, seed in 0u64..60, nb in 2usize..16) {
            let mut a = Matrix::random(n, n, seed);
            for i in 0..n {
                a[(i, i)] += n as f64 + 1.0;
            }
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
            let r = solve_refined(&a, &b, nb, 12).expect("non-singular");
            prop_assert!(r.converged, "residual {}", r.scaled_residual);
        }
    }
}
