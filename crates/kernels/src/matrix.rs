//! Dense column-major matrix storage for the linear-algebra kernels.
//!
//! Column-major layout matches HPL/LAPACK convention: element `(i, j)` lives
//! at `data[i + j * rows]`. Columns are contiguous, which is what the LU
//! panel factorization and the GEMM micro-kernel iterate over.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, heap-allocated, column-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Allocates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from column-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Fills with uniform random values in `[-0.5, 0.5)`, the HPL generator's
    /// range, from a deterministic seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-0.5, 0.5);
        let data = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the raw column-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw column-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one column as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow one column as a contiguous slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Splits the data into mutable column chunks (for parallel updates).
    pub fn par_columns_mut(&mut self) -> std::slice::ChunksMut<'_, f64> {
        self.data.chunks_mut(self.rows)
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let col = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// Transpose (out of place).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Swaps rows `a` and `b` across all columns.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a + j * self.rows, b + j * self.rows);
        }
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0; self.rows];
        for j in 0..self.cols {
            let col = self.col(j);
            for i in 0..self.rows {
                row_sums[i] += col[i].abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// One norm: maximum absolute column sum.
    pub fn norm_one(&self) -> f64 {
        (0..self.cols).map(|j| self.col(j).iter().map(|v| v.abs()).sum::<f64>()).fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        let show_cols = self.cols.min(6);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Infinity norm of a vector: maximum absolute entry.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// One norm of a vector: sum of absolute entries.
pub fn vec_norm_one(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        m[(2, 1)] = 7.0;
        assert_eq!(m[(2, 1)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // data = [a00, a10, a01, a11, a02, a12]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m.col(1), &[1.0, 11.0]);
    }

    #[test]
    fn from_col_major_round_trip() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_col_major_wrong_len_panics() {
        Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matvec_is_identity_map() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        // [[1, 2], [3, 4]] · [5, 6] = [17, 39]
        let m = Matrix::from_fn(2, 2, |i, j| (1 + 2 * i + j) as f64);
        let y = m.matvec(&[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random(5, 3, 42);
        let tt = m.transpose().transpose();
        assert_eq!(m.max_abs_diff(&tt), 0.0);
    }

    #[test]
    fn swap_rows_swaps_all_columns() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], 20.0);
        assert_eq!(m[(2, 0)], 0.0);
        assert_eq!(m[(0, 1)], 21.0);
        assert_eq!(m[(2, 1)], 1.0);
    }

    #[test]
    fn swap_rows_same_row_is_noop() {
        let mut m = Matrix::random(4, 4, 1);
        let before = m.clone();
        m.swap_rows(2, 2);
        assert_eq!(m.max_abs_diff(&before), 0.0);
    }

    #[test]
    fn norms_on_known_matrix() {
        // [[1, -2], [-3, 4]]
        let m = Matrix::from_col_major(2, 2, vec![1.0, -3.0, -2.0, 4.0]);
        assert_eq!(m.norm_inf(), 7.0); // row 1: |-3| + |4|
        assert_eq!(m.norm_one(), 6.0); // col 1: |-2| + |4|
        assert!((m.norm_frobenius() - (30.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = Matrix::random(8, 8, 7);
        let b = Matrix::random(8, 8, 7);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.as_slice().iter().all(|v| (-0.5..0.5).contains(v)));
        let c = Matrix::random(8, 8, 8);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn vector_norms() {
        assert_eq!(vec_norm_inf(&[1.0, -5.0, 3.0]), 5.0);
        assert_eq!(vec_norm_one(&[1.0, -5.0, 3.0]), 9.0);
        assert_eq!(vec_norm_inf(&[]), 0.0);
    }

    #[test]
    fn debug_format_truncates() {
        let m = Matrix::zeros(10, 10);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("..."));
    }

    proptest! {
        /// norm_inf(A^T) == norm_one(A) — duality of the two norms.
        #[test]
        fn prop_norm_duality(seed in 0u64..1000, r in 1usize..12, c in 1usize..12) {
            let m = Matrix::random(r, c, seed);
            let t = m.transpose();
            prop_assert!((m.norm_one() - t.norm_inf()).abs() < 1e-12);
            prop_assert!((m.norm_inf() - t.norm_one()).abs() < 1e-12);
        }

        /// matvec is linear: A(x + y) == Ax + Ay.
        #[test]
        fn prop_matvec_linear(seed in 0u64..1000, n in 1usize..10) {
            let m = Matrix::random(n, n, seed);
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64) * -0.5).collect();
            let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            let lhs = m.matvec(&xy);
            let ax = m.matvec(&x);
            let ay = m.matvec(&y);
            for i in 0..n {
                prop_assert!((lhs[i] - (ax[i] + ay[i])).abs() < 1e-9);
            }
        }
    }
}
