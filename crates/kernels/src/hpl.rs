//! HPL — the High-Performance LINPACK benchmark (§IV-A of the paper).
//!
//! "It solves a dense linear system of equations of the form Ax = b of the
//! order N. It uses LU factorization with row partial pivoting of matrix A
//! and the solution x is obtained by solving the resultant upper triangular
//! system. … The HPL benchmark reports its performance as gigaflops."
//!
//! This driver follows the reference HPL exactly where it matters:
//!
//! * random A and b in `[-0.5, 0.5)` (HPL's generator range);
//! * blocked LU with row partial pivoting ([`crate::lu::factor_blocked`]);
//! * the official FLOP count `2/3·N³ + 2·N²` — achieved GFLOPS is derived
//!   from that formula, not from operations actually retired;
//! * the scaled-residual acceptance test
//!   `‖Ax−b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · N) ≤ 16`.

use crate::lu::{self, SingularMatrix};
use crate::matrix::{vec_norm_inf, Matrix};
use crate::timing::time_until_resolved_excluding_setup;
use crate::Work;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration for one HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HplConfig {
    /// Problem order N.
    pub n: usize,
    /// Panel block size NB.
    pub block_size: usize,
    /// Seed for the problem generator.
    pub seed: u64,
}

impl HplConfig {
    /// A config with the default block size.
    pub fn new(n: usize) -> Self {
        HplConfig { n, block_size: lu::DEFAULT_BLOCK, seed: 42 }
    }

    /// Overrides the block size.
    pub fn with_block_size(mut self, nb: usize) -> Self {
        self.block_size = nb;
        self
    }

    /// Overrides the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The official HPL FLOP count for order `n`: `2/3·n³ + 2·n²`.
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        (2.0 / 3.0) * n * n * n + 2.0 * n * n
    }
}

/// Result of one HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplResult {
    /// Problem order.
    pub n: usize,
    /// Achieved GFLOPS per the official FLOP formula.
    pub gflops: f64,
    /// Mean wall-clock seconds per factor + solve.
    pub seconds: f64,
    /// The HPL scaled residual (must be ≤ 16 to pass).
    pub scaled_residual: f64,
    /// Whether the residual test passed.
    pub passed: bool,
}

/// HPL's residual acceptance threshold.
pub const RESIDUAL_THRESHOLD: f64 = 16.0;

/// Runs the HPL benchmark.
///
/// Generation and validation are excluded from the timed region, exactly as
/// in the reference implementation; so is the per-repetition matrix clone
/// when a tiny order forces the factor+solve to repeat until the timer
/// resolves (the reported GFLOPS is a per-solve mean and always finite).
pub fn run(config: HplConfig) -> Result<HplResult, SingularMatrix> {
    assert!(config.n > 0, "HPL problem order must be positive");
    let a = Matrix::random(config.n, config.n, config.seed);
    let b: Vec<f64> = {
        let bm = Matrix::random(config.n, 1, config.seed.wrapping_add(0x9E37_79B9));
        bm.as_slice().to_vec()
    };

    let mut factor_error = None;
    let mut x = Vec::new();
    let (_, seconds) = time_until_resolved_excluding_setup(|| {
        let mut lu_mat = a.clone(); // untimed setup
        let start = Instant::now();
        match lu::factor_blocked(&mut lu_mat, config.block_size) {
            Ok(piv) => x = lu::solve_factored(&lu_mat, &piv, &b),
            Err(e) => {
                factor_error = Some(e);
                // Force the loop to stop on the first failure.
                return f64::INFINITY;
            }
        }
        start.elapsed().as_secs_f64()
    });
    if let Some(e) = factor_error {
        return Err(e);
    }

    let scaled_residual = scaled_residual(&a, &x, &b);
    Ok(HplResult {
        n: config.n,
        gflops: config.flops() / seconds / 1e9,
        seconds,
        scaled_residual,
        passed: scaled_residual <= RESIDUAL_THRESHOLD,
    })
}

/// The HPL acceptance residual:
/// `‖Ax−b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · N)`.
pub fn scaled_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let n = a.rows();
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    let num = vec_norm_inf(&r);
    let denom = f64::EPSILON * (a.norm_inf() * vec_norm_inf(x) + vec_norm_inf(b)) * n as f64;
    num / denom
}

/// Work accounting for an HPL run of order `n` (FLOPs and the approximate
/// memory traffic of a blocked LU, `~n³/3` reads + writes of 8-byte words
/// per GEMM-dominated pass).
pub fn work(n: usize) -> Work {
    let nf = n as f64;
    let flops = (2.0 / 3.0) * nf * nf * nf + 2.0 * nf * nf;
    // A blocked LU streams the trailing matrix once per panel: about
    // n/nb · n²/2 elements touched; approximate with n³ / DEFAULT_BLOCK.
    let bytes = 8.0 * nf * nf * nf / lu::DEFAULT_BLOCK as f64;
    Work::compute(flops, bytes)
}

/// Chooses an HPL problem order that fills `fraction` of `mem_bytes` of
/// memory with the 8-byte matrix (the standard sizing rule: N ≈
/// √(mem·fraction/8)).
pub fn problem_size_for_memory(mem_bytes: u64, fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    ((mem_bytes as f64 * fraction / 8.0).sqrt()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_passes_residual_test() {
        let r = run(HplConfig::new(128)).unwrap();
        assert!(r.passed, "scaled residual {} > 16", r.scaled_residual);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.n, 128);
    }

    #[test]
    fn non_square_block_sizes_pass() {
        for nb in [1usize, 7, 32, 200] {
            let r = run(HplConfig::new(64).with_block_size(nb)).unwrap();
            assert!(r.passed, "nb={nb}: residual {}", r.scaled_residual);
        }
    }

    #[test]
    fn different_seeds_give_different_problems_but_both_pass() {
        let r1 = run(HplConfig::new(96).with_seed(1)).unwrap();
        let r2 = run(HplConfig::new(96).with_seed(2)).unwrap();
        assert!(r1.passed && r2.passed);
        // Residuals are problem-dependent; they should differ.
        assert_ne!(r1.scaled_residual, r2.scaled_residual);
    }

    #[test]
    fn flop_formula_matches_reference() {
        let c = HplConfig::new(1000);
        let expected = 2.0 / 3.0 * 1e9 + 2.0 * 1e6;
        assert!((c.flops() - expected).abs() < 1.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Matrix::identity(8);
        let b = vec![3.0; 8];
        let x = vec![3.0; 8];
        assert_eq!(scaled_residual(&a, &x, &b), 0.0);
    }

    #[test]
    fn residual_of_wrong_solution_fails() {
        let a = Matrix::identity(8);
        let b = vec![3.0; 8];
        let x = vec![4.0; 8]; // off by 1 everywhere
        assert!(scaled_residual(&a, &x, &b) > RESIDUAL_THRESHOLD);
    }

    #[test]
    fn problem_sizing_rule() {
        // 8 GB, 80% fill: N = sqrt(8e9 * 0.8 / 8) ≈ 28284.
        let n = problem_size_for_memory(8_000_000_000, 0.8);
        assert!((28_000..29_000).contains(&n), "got {n}");
    }

    #[test]
    fn work_accounting_positive_and_compute_only() {
        let w = work(512);
        assert!(w.flops > 0.0);
        assert!(w.bytes_moved > 0.0);
        assert_eq!(w.io_bytes, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_order_panics() {
        let _ = run(HplConfig::new(0));
    }
}
