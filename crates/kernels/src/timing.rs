//! Timer-resolution-aware benchmark timing.
//!
//! On tiny problem sizes a single kernel invocation can complete below
//! the clock's resolution, which used to make `elapsed ≈ 0` and the
//! reported GFLOPS/bandwidth `inf`. The helpers here repeat the kernel
//! until the accumulated wall time is measurable and clamp the mean to
//! a floor of one nanosecond, so every benchmark reports a finite,
//! minimum-resolution result. [`active_isa_name`] lets benchmark output
//! record which SIMD path produced the numbers.

use std::time::Instant;

/// Name of the SIMD path every kernel dispatches to in this process
/// ([`crate::simd::active`]) — benchmark emitters record this next to
/// their timings so committed numbers always name the code path that ran.
pub fn active_isa_name() -> &'static str {
    crate::simd::active().name()
}

/// Repeat a benchmark body until at least this much wall time has
/// accumulated (or [`MAX_TIMING_REPS`] is hit).
pub const MIN_TIMED_SECONDS: f64 = 5e-3;

/// Hard cap on timing repetitions, so a pathologically fast body
/// cannot spin forever.
pub const MAX_TIMING_REPS: u32 = 10_000;

/// Smallest mean-per-repetition the timers will report (1 ns): the
/// divide-by-zero guard for clocks that cannot resolve the body at all.
pub const TIMER_FLOOR_SECONDS: f64 = 1e-9;

/// Runs `body` repeatedly until the total elapsed time reaches
/// [`MIN_TIMED_SECONDS`] (capped at [`MAX_TIMING_REPS`] repetitions).
///
/// Returns `(repetitions, mean_seconds_per_repetition)`; the mean is
/// clamped to [`TIMER_FLOOR_SECONDS`], so it is always positive and
/// finite.
pub fn time_until_resolved(mut body: impl FnMut()) -> (u32, f64) {
    let start = Instant::now();
    let mut reps = 0u32;
    let total = loop {
        body();
        // Saturating: even if the rep cap were raised past u32::MAX the
        // counter must stop, not wrap (a wrap would reset the mean's
        // denominator and report a bogus per-rep time).
        reps = reps.saturating_add(1);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_TIMED_SECONDS || reps >= MAX_TIMING_REPS {
            break elapsed;
        }
    };
    (reps, (total / reps as f64).max(TIMER_FLOOR_SECONDS))
}

/// Like [`time_until_resolved`], but each repetition times only the
/// span measured by `body` itself (which returns per-call seconds).
/// Used when per-repetition setup (e.g. cloning the input matrix)
/// must stay outside the timed region.
pub fn time_until_resolved_excluding_setup(mut body: impl FnMut() -> f64) -> (u32, f64) {
    let mut total = 0.0;
    let mut reps = 0u32;
    loop {
        total += body();
        reps = reps.saturating_add(1);
        if total >= MIN_TIMED_SECONDS || reps >= MAX_TIMING_REPS {
            break;
        }
    }
    (reps, (total / reps as f64).max(TIMER_FLOOR_SECONDS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_zero_body_reports_finite_positive_mean() {
        let (reps, mean) = time_until_resolved(|| {});
        assert!(reps >= 1);
        assert!(mean.is_finite() && mean > 0.0);
    }

    #[test]
    fn slow_body_runs_once() {
        let (reps, mean) = time_until_resolved(|| {
            std::thread::sleep(std::time::Duration::from_millis(6));
        });
        assert_eq!(reps, 1);
        assert!(mean >= MIN_TIMED_SECONDS);
    }

    #[test]
    fn setup_excluding_variant_counts_only_reported_spans() {
        let (reps, mean) = time_until_resolved_excluding_setup(|| 2e-3);
        assert_eq!(reps, 3, "2 ms spans need 3 reps to reach 5 ms");
        assert!((mean - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_span_body_hits_rep_cap_and_floor() {
        let (reps, mean) = time_until_resolved_excluding_setup(|| 0.0);
        assert_eq!(reps, MAX_TIMING_REPS);
        assert_eq!(mean, TIMER_FLOOR_SECONDS);
    }

    #[test]
    fn active_isa_name_is_a_known_path() {
        assert!(["scalar", "avx2", "neon"].contains(&active_isa_name()));
    }
}
