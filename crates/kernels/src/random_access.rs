//! RandomAccess (GUPS) — the HPCC random-update kernel.
//!
//! Giga-UPdates per Second measures the memory system's tolerance for
//! dependent, cache-hostile random accesses: `Table[ai mod size] ^= ai` for
//! a pseudo-random stream `ai`. The reference uses an x^63-polynomial LFSR
//! stream; the kernel here keeps the same structure (XOR updates driven by a
//! deterministic random stream) with a SplitMix-style generator.
//!
//! Parallelization follows HPCC's relaxed rule: threads update disjoint
//! *chunks of the update stream* concurrently and races on the table are
//! tolerated up to a bounded error fraction — verification re-applies the
//! same stream and counts mismatches (HPCC allows ≤ 1%).

use crate::simd::{self, Isa};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Update-stream values generated per batch: the vector paths fill the
/// batch 4 lanes at a time (bit-identical to the scalar stream), then the
/// table XORs apply scalar-atomically — the updates themselves are
/// dependent random accesses and cannot be vectorized.
const STREAM_BATCH: usize = 128;

/// Configuration for a GUPS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GupsConfig {
    /// log₂ of the table size in 64-bit words.
    pub log2_table_size: u32,
    /// Number of random updates (HPCC default: 4× table size).
    pub updates: u64,
    /// Stream seed.
    pub seed: u64,
}

impl GupsConfig {
    /// HPCC-style config: table of `2^log2` words, 4× updates.
    pub fn new(log2_table_size: u32) -> Self {
        GupsConfig {
            log2_table_size,
            updates: 4 * (1u64 << log2_table_size),
            seed: 0x2545_F491_4F6C_DD1D,
        }
    }

    /// Table size in words.
    pub fn table_size(&self) -> usize {
        1usize << self.log2_table_size
    }
}

/// Result of a GUPS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GupsResult {
    /// Giga-updates per second.
    pub gups: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Fraction of table words that failed verification (HPCC allows ≤ 0.01).
    pub error_fraction: f64,
    /// Whether verification passed.
    pub passed: bool,
}

/// HPCC's allowed error fraction for the racy parallel variant.
pub const MAX_ERROR_FRACTION: f64 = 0.01;

/// Per-chunk seed for the partitioned update stream.
#[inline]
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    seed.wrapping_add(chunk.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Runs the GUPS benchmark with the process-wide dispatched ISA.
pub fn run(config: GupsConfig) -> GupsResult {
    run_with_isa(simd::active(), config)
}

/// Runs the GUPS benchmark: timed racy-parallel update phase, then an
/// untimed sequential verification phase. The update stream is generated in
/// 128-value batches by the `isa` path's SplitMix64 — every ISA produces the
/// identical bit stream, so verification replays it exactly.
pub fn run_with_isa(isa: Isa, config: GupsConfig) -> GupsResult {
    assert!(config.log2_table_size >= 4, "table must have at least 16 words");
    assert!(config.updates > 0, "update count must be positive");
    let size = config.table_size();
    let mask = (size - 1) as u64;

    // Atomic table lets threads race safely (Relaxed ordering: HPCC permits
    // lost updates; we only need the *final values* to be well-defined).
    let table: Vec<AtomicU64> = (0..size as u64).map(AtomicU64::new).collect();

    // Partition the update stream into per-thread chunks, each with its own
    // deterministic sub-seed.
    let chunks = rayon::current_num_threads().max(1) as u64;
    let per_chunk = config.updates / chunks;
    let remainder = config.updates % chunks;

    let start = Instant::now();
    (0..chunks).into_par_iter().for_each(|c| {
        let mut state = chunk_seed(config.seed, c);
        let mut left = per_chunk + if c < remainder { 1 } else { 0 };
        let mut batch = [0u64; STREAM_BATCH];
        while left > 0 {
            let take = (left as usize).min(STREAM_BATCH);
            simd::splitmix_fill(isa, &mut state, &mut batch[..take]);
            for &ai in &batch[..take] {
                let idx = (ai & mask) as usize;
                // fetch_xor is a single atomic RMW: no torn updates, and the
                // commutativity of XOR makes the final table order-independent.
                table[idx].fetch_xor(ai, Ordering::Relaxed);
            }
            left -= take as u64;
        }
    });
    let seconds = start.elapsed().as_secs_f64().max(1e-9);

    // Verification: replay the same stream sequentially on a fresh table;
    // with atomic XOR updates the result must match exactly, so the error
    // fraction doubles as a determinism check.
    let mut check: Vec<u64> = (0..size as u64).collect();
    for c in 0..chunks {
        let mut state = chunk_seed(config.seed, c);
        let mut left = per_chunk + if c < remainder { 1 } else { 0 };
        let mut batch = [0u64; STREAM_BATCH];
        while left > 0 {
            let take = (left as usize).min(STREAM_BATCH);
            simd::splitmix_fill(isa, &mut state, &mut batch[..take]);
            for &ai in &batch[..take] {
                let idx = (ai & mask) as usize;
                check[idx] ^= ai;
            }
            left -= take as u64;
        }
    }
    let errors = table.iter().zip(&check).filter(|(t, c)| t.load(Ordering::Relaxed) != **c).count();
    let error_fraction = errors as f64 / size as f64;

    GupsResult {
        gups: config.updates as f64 / seconds / 1e9,
        seconds,
        error_fraction,
        passed: error_fraction <= MAX_ERROR_FRACTION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_passes_verification() {
        let r = run(GupsConfig::new(12));
        assert!(r.passed, "error fraction {}", r.error_fraction);
        // Atomic XOR updates are exact, not just within the 1% budget.
        assert_eq!(r.error_fraction, 0.0);
        assert!(r.gups > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn config_follows_hpcc_defaults() {
        let c = GupsConfig::new(20);
        assert_eq!(c.table_size(), 1 << 20);
        assert_eq!(c.updates, 4 << 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(GupsConfig::new(10));
        let b = run(GupsConfig::new(10));
        // Timing differs but verification state is identical.
        assert_eq!(a.error_fraction, b.error_fraction);
        assert!(a.passed && b.passed);
    }

    #[test]
    fn splitmix_sequence_is_deterministic_and_nondegenerate() {
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        let mut seq1 = [0u64; 8];
        let mut seq2 = [0u64; 8];
        simd::splitmix_fill(Isa::Scalar, &mut s1, &mut seq1);
        simd::splitmix_fill(Isa::Scalar, &mut s2, &mut seq2);
        assert_eq!(seq1, seq2);
        let unique: std::collections::BTreeSet<_> = seq1.iter().collect();
        assert_eq!(unique.len(), 8, "values must not repeat immediately");
    }

    #[test]
    fn every_supported_isa_verifies_exactly() {
        let mut c = GupsConfig::new(10);
        // Not a multiple of the batch size, so the partial-batch path runs.
        c.updates = 3 * STREAM_BATCH as u64 + 17;
        for isa in simd::supported() {
            let r = run_with_isa(isa, c);
            assert!(r.passed, "{isa}: error fraction {}", r.error_fraction);
            assert_eq!(r.error_fraction, 0.0, "{isa}: atomic XOR replay must be exact");
        }
    }

    #[test]
    fn custom_update_count_respected() {
        let mut c = GupsConfig::new(10);
        c.updates = 1000;
        let r = run(c);
        assert!(r.passed);
    }

    #[test]
    #[should_panic(expected = "at least 16")]
    fn tiny_table_panics() {
        run(GupsConfig::new(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_updates_panics() {
        let mut c = GupsConfig::new(10);
        c.updates = 0;
        run(c);
    }
}
