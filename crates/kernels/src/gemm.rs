//! Packed, register-blocked, multi-threaded double-precision matrix
//! multiply (DGEMM).
//!
//! `C ← α·A·B + β·C`. DGEMM is one of the seven HPC Challenge tests and
//! the compute engine behind HPL's trailing-submatrix update. The
//! implementation follows the BLIS/GotoBLAS decomposition:
//!
//! * the shared dimension is blocked into `KC`-deep panels and the row
//!   dimension into `MC`-tall blocks;
//! * each `MC×KC` block of A is **packed** into contiguous `MR`-row
//!   micro-panels (zero-padded at the fringe) so the inner loops read
//!   unit-stride memory regardless of the leading dimension;
//! * each `KC`-deep panel of B is **packed once** into contiguous
//!   `KC×NR` slivers (in parallel over column blocks) and shared
//!   read-only by every `MC` row block — the slivers depend only on the
//!   panel and column block, so repacking them per row block would be
//!   pure waste; each task then drives an `MR×NR` **register-blocked
//!   microkernel**: `MR·NR` accumulators live in registers across the
//!   whole `KC` sweep and touch C only once per block;
//! * work is dispatched over `NR`-column chunks of C (not single
//!   columns), so small matrices pay per-block rather than per-column
//!   dispatch overhead, and each task owns a disjoint `&mut` chunk of
//!   C — results are bit-identical at every thread count.
//!
//! The packing helpers and microkernel are shared with the LU trailing
//! update in [`crate::lu`] (HPL's compute core).

use crate::matrix::Matrix;
use crate::simd::{self, Isa};
use crate::timing::time_until_resolved;
use rayon::prelude::*;

/// Cache-block height for packed A blocks (rows per pack).
pub(crate) const MC: usize = 128;
/// Cache-block depth (shared dimension per pack).
pub(crate) const KC: usize = 256;

/// Register-blocking shared between DGEMM and the LU trailing update.
pub(crate) mod micro {
    /// Microkernel tile height: rows of C computed per register block.
    pub(crate) use crate::simd::MR;
    /// Microkernel tile width: columns of C computed per register block.
    pub(crate) use crate::simd::NR;

    /// Packs the `ib×pb` block of column-major `src` (leading dimension
    /// `ld`) starting at row `i0`, column `p0` into `MR`-row
    /// micro-panels: panel `r` holds rows `i0 + r·MR ..`, stored
    /// p-major (`buf[r·MR·pb + p·MR + i]`), zero-padded to `MR` rows so
    /// the microkernel never branches on the fringe.
    pub(crate) fn pack_a(
        src: &[f64],
        ld: usize,
        i0: usize,
        ib: usize,
        p0: usize,
        pb: usize,
        buf: &mut Vec<f64>,
    ) {
        let panels = ib.div_ceil(MR);
        buf.clear();
        buf.resize(panels * MR * pb, 0.0);
        for (r, dst) in buf.chunks_exact_mut(MR * pb).enumerate() {
            let row0 = i0 + r * MR;
            let mr_eff = MR.min(i0 + ib - row0);
            for p in 0..pb {
                let col = &src[(p0 + p) * ld + row0..(p0 + p) * ld + row0 + mr_eff];
                dst[p * MR..p * MR + mr_eff].copy_from_slice(col);
                if mr_eff < MR {
                    dst[p * MR + mr_eff..(p + 1) * MR].fill(0.0);
                }
            }
        }
    }

    /// Packs the `pb×nr_eff` sliver of column-major `src` (leading
    /// dimension `ld`) starting at row `p0`, column `j0` into `buf`
    /// p-major (`buf[p·NR + j]`), zero-padding columns up to `NR`.
    /// `buf` must hold at least `pb·NR` elements.
    pub(crate) fn pack_b_sliver(
        src: &[f64],
        ld: usize,
        p0: usize,
        pb: usize,
        j0: usize,
        nr_eff: usize,
        buf: &mut [f64],
    ) {
        for (p, dst) in buf.chunks_exact_mut(NR).take(pb).enumerate() {
            for (j, d) in dst.iter_mut().enumerate() {
                *d = if j < nr_eff { src[(j0 + j) * ld + p0 + p] } else { 0.0 };
            }
        }
    }

    /// The `MR×NR` register-blocked microkernel:
    /// `C[row0..row0+mr_eff, 0..nr_eff] += α · Apanel · Bsliver`, where
    /// `c_chunk` is `nr_eff` full columns of C with leading dimension
    /// `ldc`. Accumulators stay in registers across the whole `pb`
    /// sweep; the (zero-padded) fringe rows/columns are computed but
    /// not stored. Dispatches to the `isa` implementation (scalar,
    /// AVX2+FMA, or NEON — see [`crate::simd`]); callers resolve
    /// [`crate::simd::active`] once and thread the copy through their
    /// parallel tasks so dispatch stays out of inner loops.
    // BLAS-style microkernel signature: the argument list is the panel
    // geometry, which a params struct would only rename.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn kernel(
        isa: crate::simd::Isa,
        apanel: &[f64],
        bsliver: &[f64],
        pb: usize,
        alpha: f64,
        c_chunk: &mut [f64],
        ldc: usize,
        row0: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        crate::simd::gemm_kernel(
            isa, apanel, bsliver, pb, alpha, c_chunk, ldc, row0, mr_eff, nr_eff,
        )
    }
}

/// `C ← α·A·B + β·C` for column-major dense matrices, on the process-wide
/// dispatched ISA ([`crate::simd::active`]).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn dgemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    dgemm_with_isa(simd::active(), alpha, a, b, beta, c)
}

/// [`dgemm`] on an explicitly chosen ISA path — the hook the SIMD oracle
/// tests use to compare every supported path in one process.
///
/// # Panics
/// Panics on dimension mismatch, or if `isa` is not supported on this host.
pub fn dgemm_with_isa(isa: Isa, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions must agree");
    assert_eq!(c.rows(), m, "C row count must match A");
    assert_eq!(c.cols(), n, "C column count must match B");
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_rows = m;
    let c_data = c.as_mut_slice();

    // Scale C by beta once, upfront, in parallel over columns.
    if beta == 0.0 {
        c_data.par_chunks_mut(c_rows).for_each(|col| col.fill(0.0));
    } else if beta != 1.0 {
        c_data.par_chunks_mut(c_rows).for_each(|col| {
            for v in col.iter_mut() {
                *v *= beta;
            }
        });
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    use micro::{MR, NR};
    let mut apack: Vec<f64> = Vec::new();
    let mut bpack: Vec<f64> = Vec::new();
    let nblocks = n.div_ceil(NR);
    let mut p0 = 0;
    while p0 < k {
        let pb = KC.min(k - p0);
        // Pack every KC×NR sliver of this B panel once, in parallel:
        // the slivers depend only on (p0, jb), so all MC row blocks
        // below share them read-only instead of repacking per task.
        // First-touch: the buffer is initialized in parallel chunks, so
        // with a pinned pool (`TGI_PIN_THREADS=1`) the panel's pages are
        // faulted by the workers that go on to read them, not serially
        // by the caller.
        rayon::resize_first_touch(&mut bpack, nblocks * pb * NR, 0.0);
        bpack.par_chunks_mut(pb * NR).enumerate().for_each(|(jb, sliver)| {
            micro::pack_b_sliver(b_data, k, p0, pb, jb * NR, NR.min(n - jb * NR), sliver);
        });
        let bpack = &bpack;
        let mut i0 = 0;
        while i0 < m {
            let ib = MC.min(m - i0);
            // Pack the MC×KC block of A once; tasks share it read-only.
            micro::pack_a(a_data, m, i0, ib, p0, pb, &mut apack);
            let apack = &apack;
            // Fan out over NR-column chunks of C; every chunk is a
            // disjoint &mut slab of whole columns.
            c_data.par_chunks_mut(NR * c_rows).enumerate().for_each(|(jb, c_chunk)| {
                let nr_eff = c_chunk.len() / c_rows;
                let bsliver = &bpack[jb * pb * NR..(jb + 1) * pb * NR];
                for (r, ap) in apack.chunks_exact(MR * pb).enumerate() {
                    let row0 = i0 + r * MR;
                    let mr_eff = MR.min(i0 + ib - row0);
                    micro::kernel(
                        isa, ap, bsliver, pb, alpha, c_chunk, c_rows, row0, mr_eff, nr_eff,
                    );
                }
            });
            i0 += ib;
        }
        p0 += pb;
    }
}

/// Naive triple-loop reference multiply (correctness oracle and ablation
/// baseline for the blocked kernel).
pub fn dgemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = alpha * s + beta * c[(i, j)];
        }
    }
}

/// FLOP count of a GEMM: `2·m·n·k` plus the beta scaling.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Result of a DGEMM benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmResult {
    /// Matrix order used (square case).
    pub n: usize,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Mean wall-clock seconds per multiply.
    pub seconds: f64,
    /// Multiplies executed to resolve the timer (1 for non-trivial n).
    pub repetitions: u32,
    /// Which ISA path ran (`scalar` / `avx2` / `neon`) — committed BENCH
    /// files are only interpretable across machines if they say this.
    pub isa: &'static str,
}

/// Runs a square DGEMM benchmark of order `n` with deterministic inputs.
///
/// Tiny orders finish below the clock's resolution, so the multiply is
/// repeated until the accumulated time is measurable
/// ([`crate::timing::MIN_TIMED_SECONDS`]); the reported GFLOPS are
/// per-multiply means and always finite.
pub fn benchmark(n: usize, seed: u64) -> GemmResult {
    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed.wrapping_add(1));
    let mut c = Matrix::zeros(n, n);
    let isa = simd::active();
    let (repetitions, seconds) =
        time_until_resolved(|| dgemm_with_isa(isa, 1.0, &a, &b, 0.0, &mut c));
    // Prevent the multiply from being optimized out.
    assert!(c.norm_frobenius().is_finite());
    GemmResult {
        n,
        gflops: gemm_flops(n, n, n) / seconds / 1e9,
        seconds,
        repetitions,
        isa: isa.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_naive_on_random_matrices() {
        for (m, n, k) in [(1, 1, 1), (3, 4, 5), (17, 13, 19), (64, 64, 64), (130, 65, 129)] {
            let a = Matrix::random(m, k, 1);
            let b = Matrix::random(k, n, 2);
            let mut c1 = Matrix::random(m, n, 3);
            let mut c2 = c1.clone();
            dgemm(1.5, &a, &b, 0.5, &mut c1);
            dgemm_naive(1.5, &a, &b, 0.5, &mut c2);
            let diff = c1.max_abs_diff(&c2);
            assert!(diff < 1e-10, "mismatch at ({m},{n},{k}): {diff}");
        }
    }

    #[test]
    fn matches_naive_across_blocking_boundaries() {
        // Shapes straddling MR/NR/MC/KC fringes.
        for (m, n, k) in [(8, 4, 256), (9, 5, 257), (127, 3, 255), (129, 130, 300), (256, 8, 512)] {
            let a = Matrix::random(m, k, 7);
            let b = Matrix::random(k, n, 8);
            let mut c1 = Matrix::random(m, n, 9);
            let mut c2 = c1.clone();
            dgemm(-0.75, &a, &b, 1.25, &mut c1);
            dgemm_naive(-0.75, &a, &b, 1.25, &mut c2);
            let diff = c1.max_abs_diff(&c2);
            assert!(diff < 1e-9, "mismatch at ({m},{n},{k}): {diff}");
        }
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let b = Matrix::random(8, 5, 10);
        let i = Matrix::identity(8);
        let mut c = Matrix::zeros(8, 5);
        dgemm(1.0, &i, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        let a = Matrix::identity(4);
        let b = Matrix::random(4, 4, 5);
        let mut c = Matrix::from_fn(4, 4, |_, _| f64::MAX / 2.0);
        dgemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn beta_one_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        dgemm(2.0, &a, &b, 1.0, &mut c);
        // C = 2·I + I = 3·I
        for i in 0..3 {
            assert_eq!(c[(i, i)], 3.0);
        }
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = Matrix::random(6, 7, 1);
        let b = Matrix::random(7, 5, 2);
        let mut c = Matrix::random(6, 5, 3);
        let expected = Matrix::from_fn(6, 5, |i, j| 2.0 * c[(i, j)]);
        dgemm(0.0, &a, &b, 2.0, &mut c);
        assert!(c.max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn zero_sized_inputs_are_noops() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        dgemm(1.0, &a, &b, 0.0, &mut c); // must not panic
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        dgemm(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000.0);
    }

    #[test]
    fn benchmark_reports_positive_gflops_and_the_dispatched_isa() {
        let r = benchmark(96, 7);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.n, 96);
        assert_eq!(r.isa, crate::simd::active().name());
    }

    #[test]
    fn every_supported_isa_matches_naive_within_fma_tolerance() {
        // FMA-aware tolerance: the vector paths contract a·b + c into one
        // rounding, so a length-k dot product can drift ~k·ε·|x| from the
        // scalar two-rounding reference. Entries are in [-0.5, 0.5), so
        // partial sums are O(k/4) and k·1e-14 is a generous ulp-scale bound.
        for isa in crate::simd::supported() {
            for (m, n, k) in [(8, 4, 256), (9, 5, 257), (64, 64, 64), (130, 65, 129), (257, 9, 300)]
            {
                let a = Matrix::random(m, k, 21);
                let b = Matrix::random(k, n, 22);
                let mut c_ref = Matrix::random(m, n, 23);
                let mut c_isa = c_ref.clone();
                dgemm_with_isa(Isa::Scalar, 1.5, &a, &b, -0.5, &mut c_ref);
                dgemm_with_isa(isa, 1.5, &a, &b, -0.5, &mut c_isa);
                let tol = k as f64 * 1e-14;
                let diff = c_ref.max_abs_diff(&c_isa);
                assert!(diff <= tol, "{isa} vs scalar at ({m},{n},{k}): {diff} > {tol}");
            }
        }
    }

    #[test]
    fn benchmark_is_finite_even_for_tiny_orders() {
        // A 2×2 multiply is far below timer resolution; the repetition
        // guard must keep the result finite, not inf.
        let r = benchmark(2, 3);
        assert!(r.gflops.is_finite() && r.gflops > 0.0, "gflops {}", r.gflops);
        assert!(r.repetitions > 1, "tiny orders must repeat to resolve the timer");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Blocked kernel agrees with the naive oracle for arbitrary shapes
        /// and coefficients.
        #[test]
        fn prop_matches_naive(
            m in 1usize..40, n in 1usize..40, k in 1usize..40,
            alpha in -2.0..2.0f64, beta in -2.0..2.0f64, seed in 0u64..100,
        ) {
            let a = Matrix::random(m, k, seed);
            let b = Matrix::random(k, n, seed + 1);
            let mut c1 = Matrix::random(m, n, seed + 2);
            let mut c2 = c1.clone();
            dgemm(alpha, &a, &b, beta, &mut c1);
            dgemm_naive(alpha, &a, &b, beta, &mut c2);
            prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
        }
    }
}
