//! Blocked, parallel double-precision matrix multiply (DGEMM).
//!
//! `C ← α·A·B + β·C`. DGEMM is one of the seven HPC Challenge tests and the
//! compute engine behind HPL's trailing-submatrix update. The implementation
//! tiles for cache (`MC × KC` panels of A against `KC`-tall slivers of B) and
//! parallelizes over column blocks of C with rayon; the innermost loop is an
//! axpy over a contiguous column so the compiler can vectorize it.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Cache-block height for A panels.
const MC: usize = 128;
/// Cache-block depth (shared dimension).
const KC: usize = 128;

/// `C ← α·A·B + β·C` for column-major dense matrices.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn dgemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions must agree");
    assert_eq!(c.rows(), m, "C row count must match A");
    assert_eq!(c.cols(), n, "C column count must match B");
    if m == 0 || n == 0 {
        return;
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_rows = c.rows();
    // Parallelize over columns of C; each task owns one contiguous column.
    c.as_mut_slice().par_chunks_mut(c_rows).enumerate().for_each(|(j, c_col)| {
        // Scale C column by beta once.
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for v in c_col.iter_mut() {
                *v *= beta;
            }
        }
        let b_col = &b_data[j * k..(j + 1) * k];
        // Blocked sweep over the shared dimension and rows.
        let mut p0 = 0;
        while p0 < k {
            let pb = KC.min(k - p0);
            let mut i0 = 0;
            while i0 < m {
                let ib = MC.min(m - i0);
                for p in p0..p0 + pb {
                    let factor = alpha * b_col[p];
                    if factor == 0.0 {
                        continue;
                    }
                    let a_col = &a_data[p * m + i0..p * m + i0 + ib];
                    let c_chunk = &mut c_col[i0..i0 + ib];
                    for (cv, av) in c_chunk.iter_mut().zip(a_col) {
                        *cv += factor * av;
                    }
                }
                i0 += ib;
            }
            p0 += pb;
        }
    });
}

/// Naive triple-loop reference multiply (correctness oracle and ablation
/// baseline for the blocked kernel).
pub fn dgemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = alpha * s + beta * c[(i, j)];
        }
    }
}

/// FLOP count of a GEMM: `2·m·n·k` plus the beta scaling.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Result of a DGEMM benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmResult {
    /// Matrix order used (square case).
    pub n: usize,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs a square DGEMM benchmark of order `n` with deterministic inputs.
pub fn benchmark(n: usize, seed: u64) -> GemmResult {
    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed.wrapping_add(1));
    let mut c = Matrix::zeros(n, n);
    let start = std::time::Instant::now();
    dgemm(1.0, &a, &b, 0.0, &mut c);
    let seconds = start.elapsed().as_secs_f64();
    // Prevent the multiply from being optimized out.
    assert!(c.norm_frobenius().is_finite());
    GemmResult { n, gflops: gemm_flops(n, n, n) / seconds / 1e9, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_naive_on_random_matrices() {
        for (m, n, k) in [(1, 1, 1), (3, 4, 5), (17, 13, 19), (64, 64, 64), (130, 65, 129)] {
            let a = Matrix::random(m, k, 1);
            let b = Matrix::random(k, n, 2);
            let mut c1 = Matrix::random(m, n, 3);
            let mut c2 = c1.clone();
            dgemm(1.5, &a, &b, 0.5, &mut c1);
            dgemm_naive(1.5, &a, &b, 0.5, &mut c2);
            let diff = c1.max_abs_diff(&c2);
            assert!(diff < 1e-10, "mismatch at ({m},{n},{k}): {diff}");
        }
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let b = Matrix::random(8, 5, 10);
        let i = Matrix::identity(8);
        let mut c = Matrix::zeros(8, 5);
        dgemm(1.0, &i, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        let a = Matrix::identity(4);
        let b = Matrix::random(4, 4, 5);
        let mut c = Matrix::from_fn(4, 4, |_, _| f64::MAX / 2.0);
        dgemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn beta_one_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        dgemm(2.0, &a, &b, 1.0, &mut c);
        // C = 2·I + I = 3·I
        for i in 0..3 {
            assert_eq!(c[(i, i)], 3.0);
        }
    }

    #[test]
    fn zero_sized_inputs_are_noops() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        dgemm(1.0, &a, &b, 0.0, &mut c); // must not panic
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        dgemm(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000.0);
    }

    #[test]
    fn benchmark_reports_positive_gflops() {
        let r = benchmark(96, 7);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.n, 96);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Blocked kernel agrees with the naive oracle for arbitrary shapes
        /// and coefficients.
        #[test]
        fn prop_matches_naive(
            m in 1usize..40, n in 1usize..40, k in 1usize..40,
            alpha in -2.0..2.0f64, beta in -2.0..2.0f64, seed in 0u64..100,
        ) {
            let a = Matrix::random(m, k, seed);
            let b = Matrix::random(k, n, seed + 1);
            let mut c1 = Matrix::random(m, n, seed + 2);
            let mut c2 = c1.clone();
            dgemm(alpha, &a, &b, beta, &mut c1);
            dgemm_naive(alpha, &a, &b, beta, &mut c2);
            prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
        }
    }
}
