//! Minimal double-precision complex arithmetic for the FFT kernel.
//!
//! Only what the radix-2 FFT needs — no external `num` dependency.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Constructs `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);

    /// `e^{iθ} = cos θ + i·sin θ`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the sqrt).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64 { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_i_squared_is_minus_one() {
        let i = Complex64::new(0.0, 1.0);
        let i2 = i * i;
        assert!((i2.re + 1.0).abs() < EPS && i2.im.abs() < EPS);
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, -4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn conjugate_product_is_norm() {
        let z = Complex64::new(2.0, 7.0);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn polar_unit_circle() {
        let z = Complex64::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
        // e^{iπ} = −1 (Euler).
        let e = Complex64::from_polar_unit(std::f64::consts::PI);
        assert!((e.re + 1.0).abs() < EPS);
        assert!(e.im.abs() < EPS);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::new(2.0, -0.5);
        assert_eq!(z, Complex64::new(3.0, 0.5));
        assert_eq!(z.scale(2.0), Complex64::new(6.0, 1.0));
    }
}
