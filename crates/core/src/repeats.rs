//! Run-to-run repetition: aggregate repeated measurements and propagate
//! their dispersion into TGI.
//!
//! Benchmarking methodology (Green500 run rules, SPEC's medians) demands
//! repeated runs: a single measurement of a noisy system is not a result.
//! [`MeasurementSet`] collects the repeats of one benchmark;
//! [`tgi_with_uncertainty`] computes TGI on the mean measurements and
//! propagates the per-benchmark energy-efficiency variance to a TGI
//! standard deviation (first-order, independent benchmarks):
//!
//! ```text
//! Var(TGI) = Σ_i (W_i / EE_i(ref))² · Var(EE_i)
//! ```

use crate::error::TgiError;
use crate::measurement::Measurement;
use crate::reference::ReferenceSystem;
use crate::tgi::{Tgi, TgiResult};
use crate::units::{Perf, Seconds, Watts};
use crate::weights::Weighting;
use serde::{Deserialize, Serialize};

/// Repeated measurements of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    id: String,
    runs: Vec<Measurement>,
}

impl MeasurementSet {
    /// An empty set for a benchmark id.
    pub fn new(id: impl Into<String>) -> Self {
        MeasurementSet { id: id.into(), runs: Vec::new() }
    }

    /// Collects runs, validating ids and unit consistency.
    pub fn from_runs(
        id: impl Into<String>,
        runs: impl IntoIterator<Item = Measurement>,
    ) -> Result<Self, TgiError> {
        let mut set = MeasurementSet::new(id);
        for m in runs {
            set.push(m)?;
        }
        if set.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        Ok(set)
    }

    /// Adds one run.
    pub fn push(&mut self, m: Measurement) -> Result<(), TgiError> {
        if m.id() != self.id {
            return Err(TgiError::DuplicateBenchmark(format!(
                "run id `{}` does not match set `{}`",
                m.id(),
                self.id
            )));
        }
        if let Some(first) = self.runs.first() {
            if first.performance().unit() != m.performance().unit() {
                return Err(TgiError::UnitMismatch {
                    left: first.performance().unit().label().to_string(),
                    right: m.performance().unit().label().to_string(),
                });
            }
        }
        self.runs.push(m);
        Ok(())
    }

    /// The benchmark id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of runs collected.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the set has no runs yet.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The runs in insertion order.
    pub fn runs(&self) -> &[Measurement] {
        &self.runs
    }

    /// Per-run energy-efficiency values.
    pub fn ee_values(&self) -> Vec<f64> {
        self.runs.iter().map(|m| m.energy_efficiency()).collect()
    }

    /// Mean energy efficiency across runs.
    pub fn ee_mean(&self) -> Result<f64, TgiError> {
        crate::stats::mean(&self.ee_values())
    }

    /// Sample standard deviation of the energy efficiency (0 for one run).
    pub fn ee_std(&self) -> Result<f64, TgiError> {
        if self.runs.len() < 2 {
            return Ok(0.0);
        }
        crate::stats::std_dev(&self.ee_values())
    }

    /// Coefficient of variation of the energy efficiency (σ/μ).
    pub fn ee_cov(&self) -> Result<f64, TgiError> {
        Ok(self.ee_std()? / self.ee_mean()?)
    }

    /// The mean measurement: arithmetic means of performance, power, and
    /// time. Energy is re-derived from the means.
    pub fn mean_measurement(&self) -> Result<Measurement, TgiError> {
        if self.runs.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        let n = self.runs.len() as f64;
        let perf = self.runs.iter().map(|m| m.performance().value()).sum::<f64>() / n;
        let power = self.runs.iter().map(|m| m.power().value()).sum::<f64>() / n;
        let time = self.runs.iter().map(|m| m.time().value()).sum::<f64>() / n;
        let unit = self.runs[0].performance().unit().clone();
        Measurement::new(
            self.id.clone(),
            Perf::new(perf, unit)?,
            Watts::new(power),
            Seconds::new(time),
        )
    }
}

/// TGI with a first-order uncertainty from run-to-run dispersion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TgiWithUncertainty {
    /// TGI computed on the mean measurements.
    pub result: TgiResult,
    /// Propagated standard deviation of the TGI value.
    pub std_dev: f64,
}

impl TgiWithUncertainty {
    /// The mean TGI value.
    pub fn value(&self) -> f64 {
        self.result.value()
    }

    /// A ±2σ interval (≈95% under normality).
    pub fn interval95(&self) -> (f64, f64) {
        (self.value() - 2.0 * self.std_dev, self.value() + 2.0 * self.std_dev)
    }
}

/// Computes TGI on the per-benchmark mean measurements and propagates the
/// EE variances into a TGI standard deviation.
pub fn tgi_with_uncertainty(
    reference: &ReferenceSystem,
    sets: &[MeasurementSet],
    weighting: Weighting,
) -> Result<TgiWithUncertainty, TgiError> {
    if sets.is_empty() {
        return Err(TgiError::EmptyBenchmarkSet);
    }
    let means: Result<Vec<Measurement>, TgiError> =
        sets.iter().map(|s| s.mean_measurement()).collect();
    let result = Tgi::builder()
        .reference(reference.clone())
        .weighting(weighting)
        .measurements(means?)
        .compute()?;

    // Var(TGI) = Σ (w_i / ref_ee_i)² σ_i²  — weights held at their
    // mean-measurement values (first-order).
    let mut var = 0.0;
    for (set, c) in sets.iter().zip(result.contributions()) {
        debug_assert_eq!(set.id(), c.benchmark);
        let sigma = set.ee_std()?;
        let k = c.weight / c.reference_efficiency;
        var += k * k * sigma * sigma;
    }
    Ok(TgiWithUncertainty { result, std_dev: var.sqrt() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::PerfUnit;

    fn m(id: &str, gflops: f64, watts: f64) -> Measurement {
        Measurement::new(id, Perf::gflops(gflops), Watts::new(watts), Seconds::new(60.0))
            .expect("valid")
    }

    fn reference() -> ReferenceSystem {
        ReferenceSystem::builder("ref")
            .benchmark(m("a", 10.0, 1000.0))
            .benchmark(m("b", 20.0, 1000.0))
            .build()
            .expect("non-empty")
    }

    #[test]
    fn set_validates_ids_and_units() {
        let mut set = MeasurementSet::new("a");
        set.push(m("a", 1.0, 100.0)).expect("matching id");
        assert!(set.push(m("b", 1.0, 100.0)).is_err(), "wrong id rejected");
        let wrong_unit =
            Measurement::new("a", Perf::mbps(5.0), Watts::new(100.0), Seconds::new(1.0))
                .expect("valid");
        assert!(set.push(wrong_unit).is_err(), "unit change rejected");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn identical_runs_have_zero_dispersion() {
        let set =
            MeasurementSet::from_runs("a", (0..5).map(|_| m("a", 4.0, 400.0))).expect("valid");
        assert_eq!(set.ee_std().expect("computable"), 0.0);
        assert_eq!(set.ee_cov().expect("computable"), 0.0);
        let mean = set.mean_measurement().expect("non-empty");
        assert!((mean.performance().as_gflops() - 4.0).abs() < 1e-12);
        assert!((mean.power().value() - 400.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_matches_hand_computation() {
        // EE values: 1e7 and 3e7 (gflops 1 and 3 at 100 W).
        let set = MeasurementSet::from_runs("a", [m("a", 1.0, 100.0), m("a", 3.0, 100.0)])
            .expect("valid");
        let mean = set.ee_mean().expect("computable");
        assert!((mean - 2e7).abs() < 1.0);
        // Sample std of {1e7, 3e7} = sqrt(2)·1e7.
        let std = set.ee_std().expect("computable");
        assert!((std - std::f64::consts::SQRT_2 * 1e7).abs() < 1.0);
        assert!((set.ee_cov().expect("computable") - std / mean).abs() < 1e-12);
    }

    #[test]
    fn single_run_has_zero_std() {
        let set = MeasurementSet::from_runs("a", [m("a", 1.0, 100.0)]).expect("valid");
        assert_eq!(set.ee_std().expect("computable"), 0.0);
    }

    #[test]
    fn uncertainty_zero_for_perfectly_repeatable_runs() {
        let sets = vec![
            MeasurementSet::from_runs("a", (0..3).map(|_| m("a", 5.0, 500.0))).expect("valid"),
            MeasurementSet::from_runs("b", (0..3).map(|_| m("b", 10.0, 500.0))).expect("valid"),
        ];
        let t =
            tgi_with_uncertainty(&reference(), &sets, Weighting::Arithmetic).expect("computable");
        assert_eq!(t.std_dev, 0.0);
        let (lo, hi) = t.interval95();
        assert_eq!(lo, hi);
        assert!(t.value() > 0.0);
    }

    #[test]
    fn noisier_benchmarks_widen_the_interval() {
        let quiet = vec![
            MeasurementSet::from_runs("a", [m("a", 5.0, 500.0), m("a", 5.1, 500.0)])
                .expect("valid"),
            MeasurementSet::from_runs("b", [m("b", 10.0, 500.0), m("b", 10.1, 500.0)])
                .expect("valid"),
        ];
        let noisy = vec![
            MeasurementSet::from_runs("a", [m("a", 3.0, 500.0), m("a", 7.0, 500.0)])
                .expect("valid"),
            MeasurementSet::from_runs("b", [m("b", 6.0, 500.0), m("b", 14.0, 500.0)])
                .expect("valid"),
        ];
        let r = reference();
        let tq = tgi_with_uncertainty(&r, &quiet, Weighting::Arithmetic).expect("computable");
        let tn = tgi_with_uncertainty(&r, &noisy, Weighting::Arithmetic).expect("computable");
        assert!(tn.std_dev > tq.std_dev * 5.0, "{} vs {}", tn.std_dev, tq.std_dev);
    }

    #[test]
    fn propagation_matches_closed_form_for_am() {
        // One benchmark, AM weight = 1: σ_TGI = σ_EE / ref_ee.
        let r = ReferenceSystem::builder("r")
            .benchmark(m("a", 10.0, 1000.0))
            .build()
            .expect("non-empty");
        let set = MeasurementSet::from_runs("a", [m("a", 1.0, 100.0), m("a", 3.0, 100.0)])
            .expect("valid");
        let t = tgi_with_uncertainty(&r, std::slice::from_ref(&set), Weighting::Arithmetic)
            .expect("computable");
        let ref_ee = 10e9 / 1000.0;
        let expected = set.ee_std().expect("computable") / ref_ee;
        assert!((t.std_dev - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(MeasurementSet::from_runs("a", std::iter::empty()).is_err());
        assert!(tgi_with_uncertainty(&reference(), &[], Weighting::Arithmetic).is_err());
        assert!(MeasurementSet::new("a").mean_measurement().is_err());
    }

    #[test]
    fn mean_measurement_preserves_unit() {
        let runs = [
            Measurement::new("io", Perf::mbps(100.0), Watts::new(50.0), Seconds::new(10.0))
                .expect("valid"),
            Measurement::new("io", Perf::mbps(200.0), Watts::new(70.0), Seconds::new(20.0))
                .expect("valid"),
        ];
        let set = MeasurementSet::from_runs("io", runs).expect("valid");
        let mean = set.mean_measurement().expect("non-empty");
        assert_eq!(*mean.performance().unit(), PerfUnit::BytesPerSecond);
        assert!((mean.performance().as_mbps() - 150.0).abs() < 1e-9);
        assert!((mean.power().value() - 60.0).abs() < 1e-12);
        assert!((mean.time().value() - 15.0).abs() < 1e-12);
    }
}
