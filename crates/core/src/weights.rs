//! TGI weighting schemes (§III).
//!
//! Step 3 of the TGI algorithm assigns each benchmark a weight with
//! `Σ W_i = 1`. The paper studies:
//!
//! * **Arithmetic mean** (Eqs. 6–8): equal weights `1/n`.
//! * **Time weights** (Eq. 10): `W_ti = t_i / Σ t_i`.
//! * **Energy weights** (Eq. 11): `W_ei = e_i / Σ e_i`.
//! * **Power weights** (Eq. 12): `W_pi = p_i / Σ p_i`.
//!
//! §III observes (Eqs. 13–15) that time weights preserve the desired
//! inverse-proportionality to energy, whereas energy and power weights cancel
//! the energy component — the experimental Table II confirms that the latter
//! two correlate with HPL rather than with the least-efficient subsystem.
//! User-defined weights (advantage 1 in §II) are supported via
//! [`Weighting::Custom`].

use crate::error::TgiError;
use crate::measurement::Measurement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How to assign the TGI component (weighting factor) to each benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Weighting {
    /// Equal weights `1/n` — TGI via the arithmetic mean (Eq. 7).
    Arithmetic,
    /// Weights proportional to per-benchmark execution time (Eq. 10).
    Time,
    /// Weights proportional to per-benchmark energy consumption (Eq. 11).
    Energy,
    /// Weights proportional to per-benchmark average power (Eq. 12).
    Power,
    /// User-supplied weights, one per benchmark in suite order. They are
    /// validated (non-negative, summing to 1) at computation time.
    Custom(Vec<f64>),
}

impl Weighting {
    /// Computes the normalized weight vector for the given suite of
    /// measurements, in the same order.
    ///
    /// ```
    /// use tgi_core::prelude::*;
    /// let suite = vec![
    ///     Measurement::new("a", Perf::gflops(1.0), Watts::new(100.0), Seconds::new(30.0)).unwrap(),
    ///     Measurement::new("b", Perf::gflops(1.0), Watts::new(100.0), Seconds::new(90.0)).unwrap(),
    /// ];
    /// let w = Weighting::Time.weights_for(&suite).unwrap();
    /// assert_eq!(w.as_slice(), &[0.25, 0.75]);
    /// ```
    pub fn weights_for(&self, suite: &[Measurement]) -> Result<WeightSet, TgiError> {
        let mut weights = Vec::with_capacity(suite.len());
        self.weights_into(suite, &mut weights)?;
        Ok(WeightSet { weights })
    }

    /// Computes the normalized weight vector into a caller-provided buffer.
    ///
    /// `out` is cleared first; on success it holds one weight per suite
    /// entry, in suite order — the same values, from the same sequence of
    /// floating-point operations, as [`Weighting::weights_for`]. With a
    /// warm buffer (capacity ≥ suite length) the happy path performs no
    /// heap allocation, which is what makes the batch evaluator's
    /// per-evaluation cost allocation-free. On error `out` holds garbage
    /// and must not be read.
    pub fn weights_into(&self, suite: &[Measurement], out: &mut Vec<f64>) -> Result<(), TgiError> {
        out.clear();
        if suite.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        match self {
            Weighting::Arithmetic => out.resize(suite.len(), 1.0),
            Weighting::Time => out.extend(suite.iter().map(|m| m.time().value())),
            Weighting::Energy => out.extend(suite.iter().map(|m| m.energy().value())),
            Weighting::Power => out.extend(suite.iter().map(|m| m.power().value())),
            Weighting::Custom(ws) => {
                if ws.len() != suite.len() {
                    return Err(TgiError::WeightCountMismatch {
                        weights: ws.len(),
                        benchmarks: suite.len(),
                    });
                }
                let sum: f64 = ws.iter().sum();
                if ws.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    return Err(TgiError::InvalidWeights { sum: f64::NAN });
                }
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(TgiError::InvalidWeights { sum });
                }
                out.extend_from_slice(ws);
                return Ok(());
            }
        }
        let total: f64 = out.iter().sum();
        if !(total.is_finite()) || total <= 0.0 {
            return Err(TgiError::InvalidWeights { sum: total });
        }
        for w in out.iter_mut() {
            *w /= total;
        }
        Ok(())
    }

    /// Short label used in reports and figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Weighting::Arithmetic => "arithmetic mean",
            Weighting::Time => "time-weighted",
            Weighting::Energy => "energy-weighted",
            Weighting::Power => "power-weighted",
            Weighting::Custom(_) => "custom",
        }
    }
}

impl fmt::Display for Weighting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A validated weight vector: non-negative entries summing to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSet {
    weights: Vec<f64>,
}

impl WeightSet {
    /// The weight assigned to the `i`-th benchmark.
    pub fn get(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Borrow the full weight vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when there are no weights (cannot occur via `weights_for`).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Perf, Seconds, Watts};
    use proptest::prelude::*;

    fn m(id: &str, watts: f64, secs: f64) -> Measurement {
        Measurement::new(id, Perf::gflops(1.0), Watts::new(watts), Seconds::new(secs)).unwrap()
    }

    fn suite() -> Vec<Measurement> {
        vec![m("hpl", 2_900.0, 1800.0), m("stream", 2_500.0, 300.0), m("iozone", 2_300.0, 600.0)]
    }

    #[test]
    fn arithmetic_weights_are_equal() {
        let ws = Weighting::Arithmetic.weights_for(&suite()).unwrap();
        for i in 0..3 {
            assert!((ws.get(i) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn time_weights_eq10() {
        let ws = Weighting::Time.weights_for(&suite()).unwrap();
        let total = 1800.0 + 300.0 + 600.0;
        assert!((ws.get(0) - 1800.0 / total).abs() < 1e-12);
        assert!((ws.get(1) - 300.0 / total).abs() < 1e-12);
        assert!((ws.get(2) - 600.0 / total).abs() < 1e-12);
    }

    #[test]
    fn energy_weights_eq11() {
        let ws = Weighting::Energy.weights_for(&suite()).unwrap();
        let e = [2_900.0 * 1800.0, 2_500.0 * 300.0, 2_300.0 * 600.0];
        let total: f64 = e.iter().sum();
        for (i, &ei) in e.iter().enumerate() {
            assert!((ws.get(i) - ei / total).abs() < 1e-12);
        }
    }

    #[test]
    fn power_weights_eq12() {
        let ws = Weighting::Power.weights_for(&suite()).unwrap();
        let total = 2_900.0 + 2_500.0 + 2_300.0;
        assert!((ws.get(0) - 2_900.0 / total).abs() < 1e-12);
    }

    #[test]
    fn all_builtin_weightings_sum_to_one() {
        for w in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
            let ws = w.weights_for(&suite()).unwrap();
            let sum: f64 = ws.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{w}: sum {sum}");
            assert_eq!(ws.len(), 3);
            assert!(!ws.is_empty());
        }
    }

    #[test]
    fn custom_weights_validated() {
        let s = suite();
        assert!(Weighting::Custom(vec![0.5, 0.3, 0.2]).weights_for(&s).is_ok());
        assert!(matches!(
            Weighting::Custom(vec![0.5, 0.5]).weights_for(&s),
            Err(TgiError::WeightCountMismatch { .. })
        ));
        assert!(matches!(
            Weighting::Custom(vec![0.5, 0.3, 0.3]).weights_for(&s),
            Err(TgiError::InvalidWeights { .. })
        ));
        assert!(matches!(
            Weighting::Custom(vec![1.5, -0.3, -0.2]).weights_for(&s),
            Err(TgiError::InvalidWeights { .. })
        ));
    }

    #[test]
    fn empty_suite_errors() {
        assert!(Weighting::Arithmetic.weights_for(&[]).is_err());
    }

    #[test]
    fn weights_into_matches_weights_for_bitwise_and_reuses_buffer() {
        let s = suite();
        let mut buf = Vec::new();
        for w in [
            Weighting::Arithmetic,
            Weighting::Time,
            Weighting::Energy,
            Weighting::Power,
            Weighting::Custom(vec![0.5, 0.3, 0.2]),
        ] {
            w.weights_into(&s, &mut buf).unwrap();
            let ws = w.weights_for(&s).unwrap();
            assert_eq!(buf.len(), ws.len());
            for (a, b) in buf.iter().zip(ws.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{w}");
            }
        }
        // Error paths reject the same inputs as `weights_for`…
        assert!(Weighting::Time.weights_into(&[], &mut buf).is_err());
        assert!(matches!(
            Weighting::Custom(vec![0.5]).weights_into(&s, &mut buf),
            Err(TgiError::WeightCountMismatch { .. })
        ));
        // …and leave the buffer reusable afterwards.
        Weighting::Arithmetic.weights_into(&s, &mut buf).unwrap();
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Weighting::Arithmetic.label(),
            Weighting::Time.label(),
            Weighting::Energy.label(),
            Weighting::Power.label(),
        ];
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    /// Per §II advantage 1: boosting a benchmark's weight must increase
    /// the influence of that benchmark on TGI — verified here at the weight
    /// level: the memory benchmark's weight grows when requested.
    #[test]
    fn custom_weights_allow_memory_emphasis() {
        let s = suite();
        let ws = Weighting::Custom(vec![0.2, 0.6, 0.2]).weights_for(&s).unwrap();
        assert!(ws.get(1) > ws.get(0));
        assert!(ws.get(1) > ws.get(2));
    }

    proptest! {
        /// For any valid suite, each builtin weighting yields weights that
        /// are non-negative and sum to 1.
        #[test]
        fn prop_weights_normalized(
            params in proptest::collection::vec((1.0..1e5f64, 1.0..1e5f64), 1..8)
        ) {
            let suite: Vec<Measurement> = params
                .iter()
                .enumerate()
                .map(|(i, (w, t))| m(&format!("b{i}"), *w, *t))
                .collect();
            for scheme in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
                let ws = scheme.weights_for(&suite).unwrap();
                let sum: f64 = ws.as_slice().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(ws.as_slice().iter().all(|w| *w >= 0.0));
            }
        }

        /// Time weights order like the times themselves.
        #[test]
        fn prop_time_weights_monotone(t1 in 1.0..1e4f64, t2 in 1.0..1e4f64) {
            let suite = vec![m("a", 100.0, t1), m("b", 100.0, t2)];
            let ws = Weighting::Time.weights_for(&suite).unwrap();
            if t1 > t2 {
                prop_assert!(ws.get(0) >= ws.get(1));
            } else {
                prop_assert!(ws.get(0) <= ws.get(1));
            }
        }
    }
}
