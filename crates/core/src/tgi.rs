//! The Green Index computation (§II, Eqs. 2–4).
//!
//! [`Tgi::builder`] assembles the four-step algorithm:
//!
//! 1. `EE_i = Performance_i / Power_i` — per-benchmark energy efficiency,
//!    computed by a pluggable [`EfficiencyMetric`] (default: perf/W).
//! 2. `REE_i = EE_i / EE_i(reference)` — relative energy efficiency.
//! 3. `W_i` from a [`Weighting`] scheme, `Σ W_i = 1`.
//! 4. `TGI = Σ W_i · REE_i`.
//!
//! The result retains every intermediate quantity per benchmark so reports
//! (and the paper's Table II analysis) can inspect the decomposition.
//!
//! `compute()` delegates to [`crate::evaluator::TgiEvaluator`], the batch
//! evaluation engine — the builder is the one-shot convenience wrapper, and
//! both paths produce bit-identical values by construction.

use crate::efficiency::{EfficiencyMetric, PerfPerWatt};
use crate::error::TgiError;
use crate::evaluator::TgiEvaluator;
use crate::measurement::Measurement;
use crate::reference::ReferenceSystem;
use crate::weights::Weighting;
use serde::{Deserialize, Serialize};

/// The central-tendency measure used to combine the weighted REEs.
///
/// The paper builds TGI on the weighted *arithmetic* mean (Eq. 4). Its
/// related-work discussion (John, CAN 2004) concludes that arithmetic and
/// harmonic means are both valid with appropriate weights, and the
/// geometric mean is SPEC's tradition for ratio data — so all three are
/// available for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MeanKind {
    /// `Σ W_i·REE_i` — the paper's Eq. 4.
    #[default]
    Arithmetic,
    /// `Π REE_i^{W_i}` — SPEC-style, insensitive to which system is the
    /// reference.
    Geometric,
    /// `1 / Σ (W_i / REE_i)` — rate-averaging semantics.
    Harmonic,
}

impl MeanKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MeanKind::Arithmetic => "arithmetic",
            MeanKind::Geometric => "geometric",
            MeanKind::Harmonic => "harmonic",
        }
    }
}

/// Entry point for computing The Green Index.
#[derive(Debug, Clone)]
pub struct Tgi;

impl Tgi {
    /// Starts a TGI computation with default settings (perf/W metric,
    /// arithmetic-mean weighting).
    pub fn builder() -> TgiBuilder<PerfPerWatt> {
        TgiBuilder {
            metric: PerfPerWatt,
            reference: None,
            weighting: Weighting::Arithmetic,
            mean: MeanKind::Arithmetic,
            measurements: Vec::new(),
        }
    }
}

/// Builder for a TGI computation.
#[derive(Debug, Clone)]
pub struct TgiBuilder<M: EfficiencyMetric> {
    metric: M,
    reference: Option<ReferenceSystem>,
    weighting: Weighting,
    mean: MeanKind,
    measurements: Vec<Measurement>,
}

impl<M: EfficiencyMetric> TgiBuilder<M> {
    /// Swaps the energy-efficiency metric (§II: "TGI … can be used with any
    /// other energy-efficient metric, such as the energy-delay product").
    pub fn metric<N: EfficiencyMetric>(self, metric: N) -> TgiBuilder<N> {
        TgiBuilder {
            metric,
            reference: self.reference,
            weighting: self.weighting,
            mean: self.mean,
            measurements: self.measurements,
        }
    }

    /// Selects the central-tendency measure (default: arithmetic, Eq. 4).
    pub fn mean(mut self, mean: MeanKind) -> Self {
        self.mean = mean;
        self
    }

    /// Sets the reference system (required).
    pub fn reference(mut self, reference: ReferenceSystem) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Sets the weighting scheme (default: arithmetic mean).
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Adds one benchmark measurement.
    pub fn measurement(mut self, m: Measurement) -> Self {
        self.measurements.push(m);
        self
    }

    /// Adds a batch of benchmark measurements.
    pub fn measurements(mut self, ms: impl IntoIterator<Item = Measurement>) -> Self {
        self.measurements.extend(ms);
        self
    }

    /// Runs the four-step TGI algorithm.
    ///
    /// Internally this builds a one-shot [`TgiEvaluator`] — repeated
    /// computations against the same reference should construct the
    /// evaluator once and reuse it.
    pub fn compute(self) -> Result<TgiResult, TgiError> {
        let reference = self.reference.ok_or(TgiError::MissingReferenceSystem)?;
        TgiEvaluator::with_metric(&reference, self.metric).evaluate_result(
            &self.measurements,
            &self.weighting,
            self.mean,
        )
    }
}

impl std::fmt::Display for TgiResult {
    /// A multi-line human-readable summary: the headline value and the
    /// per-benchmark decomposition.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "TGI = {:.4}  ({} mean, {} weights, vs {})",
            self.value,
            self.mean.label(),
            self.weighting.label(),
            self.reference_name
        )?;
        writeln!(
            f,
            "  {:<12} {:>12} {:>12} {:>8} {:>8}",
            "benchmark", "EE", "EE(ref)", "REE", "weight"
        )?;
        for c in &self.contributions {
            writeln!(
                f,
                "  {:<12} {:>12.4e} {:>12.4e} {:>8.4} {:>8.4}",
                c.benchmark, c.energy_efficiency, c.reference_efficiency, c.ree, c.weight
            )?;
        }
        Ok(())
    }
}

/// Per-benchmark decomposition of a TGI value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkContribution {
    /// Benchmark id.
    pub benchmark: String,
    /// `EE_i` — energy efficiency on the system under test (Eq. 2).
    pub energy_efficiency: f64,
    /// `EE_i(reference)` — energy efficiency on the reference system.
    pub reference_efficiency: f64,
    /// `REE_i = EE_i / EE_i(reference)` (Eq. 3).
    pub ree: f64,
    /// `W_i` — the weighting factor (Σ = 1).
    pub weight: f64,
    /// `W_i × REE_i` — this benchmark's share of TGI.
    pub contribution: f64,
}

/// The result of a TGI computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TgiResult {
    value: f64,
    weighting: Weighting,
    #[serde(default)]
    mean: MeanKind,
    reference_name: String,
    contributions: Vec<BenchmarkContribution>,
}

impl TgiResult {
    /// Assembles a result from already-computed parts (the evaluator's
    /// exit point — fields stay private so results can only come from a
    /// real computation or deserialization).
    pub(crate) fn from_parts(
        value: f64,
        weighting: Weighting,
        mean: MeanKind,
        reference_name: String,
        contributions: Vec<BenchmarkContribution>,
    ) -> Self {
        TgiResult { value, weighting, mean, reference_name, contributions }
    }

    /// The Green Index (Eq. 4).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The weighting scheme that produced this value.
    pub fn weighting(&self) -> &Weighting {
        &self.weighting
    }

    /// The central-tendency measure that produced this value.
    pub fn mean(&self) -> MeanKind {
        self.mean
    }

    /// Name of the reference system used for normalization.
    pub fn reference_name(&self) -> &str {
        &self.reference_name
    }

    /// Per-benchmark decomposition, in suite order.
    pub fn contributions(&self) -> &[BenchmarkContribution] {
        &self.contributions
    }

    /// The contribution record for a specific benchmark, if present.
    pub fn contribution(&self, benchmark: &str) -> Option<&BenchmarkContribution> {
        self.contributions.iter().find(|c| c.benchmark == benchmark)
    }

    /// The benchmark with the smallest REE — the subsystem the paper expects
    /// to *bound* system-wide efficiency ("We expect the TGI metric to be
    /// bound by \[the\] benchmark with least REE", §IV-B).
    pub fn least_efficient(&self) -> Option<&BenchmarkContribution> {
        self.contributions
            .iter()
            .min_by(|a, b| a.ree.partial_cmp(&b.ree).expect("REE values are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edp::EnergyDelayProduct;
    use crate::units::{Perf, Seconds, Watts};
    use proptest::prelude::*;

    fn meas(id: &str, perf: Perf, w: f64, t: f64) -> Measurement {
        Measurement::new(id, perf, Watts::new(w), Seconds::new(t)).unwrap()
    }

    fn reference() -> ReferenceSystem {
        ReferenceSystem::builder("SystemG")
            .benchmark(meas("hpl", Perf::tflops(8.1), 26_000.0, 7200.0))
            .benchmark(meas("stream", Perf::mbps(1_600_000.0), 24_000.0, 600.0))
            .benchmark(meas("iozone", Perf::mbps(320.0), 11_500.0, 900.0))
            .build()
            .unwrap()
    }

    fn fire_suite() -> Vec<Measurement> {
        vec![
            meas("hpl", Perf::gflops(90.0), 2_900.0, 1800.0),
            meas("stream", Perf::mbps(80_000.0), 2_500.0, 300.0),
            meas("iozone", Perf::mbps(95.0), 2_300.0, 600.0),
        ]
    }

    #[test]
    fn tgi_arithmetic_mean_matches_hand_computation() {
        let result =
            Tgi::builder().reference(reference()).measurements(fire_suite()).compute().unwrap();

        let ree_hpl = (90e9 / 2_900.0) / (8.1e12 / 26_000.0);
        let ree_stream = (80_000e6 / 2_500.0) / (1_600_000e6 / 24_000.0);
        let ree_io = (95e6 / 2_300.0) / (320e6 / 11_500.0);
        let expected = (ree_hpl + ree_stream + ree_io) / 3.0;
        assert!(
            (result.value() - expected).abs() < 1e-9 * expected,
            "got {} want {expected}",
            result.value()
        );
        assert_eq!(result.reference_name(), "SystemG");
        assert_eq!(result.contributions().len(), 3);
    }

    #[test]
    fn contributions_sum_to_tgi() {
        let result = Tgi::builder()
            .reference(reference())
            .weighting(Weighting::Energy)
            .measurements(fire_suite())
            .compute()
            .unwrap();
        let sum: f64 = result.contributions().iter().map(|c| c.contribution).sum();
        assert!((sum - result.value()).abs() < 1e-12 * result.value().abs().max(1.0));
    }

    #[test]
    fn reference_system_scores_tgi_one_under_any_weighting() {
        // The reference measured against itself must yield TGI = 1 for every
        // weighting scheme, because every REE_i = 1 and Σ W_i = 1.
        let r = reference();
        let self_suite: Vec<Measurement> = r.iter().map(|(_, m)| m.clone()).collect();
        for w in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
            let result = Tgi::builder()
                .reference(r.clone())
                .weighting(w.clone())
                .measurements(self_suite.clone())
                .compute()
                .unwrap();
            assert!(
                (result.value() - 1.0).abs() < 1e-12,
                "{w}: TGI of reference vs itself = {}",
                result.value()
            );
        }
    }

    #[test]
    fn least_efficient_identifies_min_ree() {
        let result =
            Tgi::builder().reference(reference()).measurements(fire_suite()).compute().unwrap();
        let min = result.least_efficient().unwrap();
        for c in result.contributions() {
            assert!(min.ree <= c.ree);
        }
    }

    #[test]
    fn missing_reference_benchmark_errors() {
        let extra = meas("fft", Perf::gflops(5.0), 2_000.0, 120.0);
        let err = Tgi::builder().reference(reference()).measurement(extra).compute().unwrap_err();
        assert!(matches!(err, TgiError::MissingReference(_)));
    }

    #[test]
    fn duplicate_measurement_errors() {
        let err = Tgi::builder()
            .reference(reference())
            .measurement(meas("hpl", Perf::gflops(90.0), 2_900.0, 1800.0))
            .measurement(meas("hpl", Perf::gflops(91.0), 2_900.0, 1800.0))
            .compute()
            .unwrap_err();
        assert!(matches!(err, TgiError::DuplicateBenchmark(_)));
    }

    #[test]
    fn missing_reference_system_errors() {
        let err = Tgi::builder().measurements(fire_suite()).compute().unwrap_err();
        assert_eq!(err, TgiError::MissingReferenceSystem);
    }

    #[test]
    fn empty_suite_errors() {
        let err = Tgi::builder().reference(reference()).compute().unwrap_err();
        assert_eq!(err, TgiError::EmptyBenchmarkSet);
    }

    #[test]
    fn unit_mismatch_against_reference_errors() {
        let wrong = meas("hpl", Perf::mbps(100.0), 2_900.0, 1800.0);
        let err = Tgi::builder().reference(reference()).measurement(wrong).compute().unwrap_err();
        assert!(matches!(err, TgiError::UnitMismatch { .. }));
    }

    #[test]
    fn mean_kinds_obey_am_gm_hm_ordering() {
        // For positive, non-constant REEs: AM ≥ GM ≥ HM.
        let compute = |mean: MeanKind| {
            Tgi::builder()
                .mean(mean)
                .reference(reference())
                .measurements(fire_suite())
                .compute()
                .unwrap()
                .value()
        };
        let am = compute(MeanKind::Arithmetic);
        let gm = compute(MeanKind::Geometric);
        let hm = compute(MeanKind::Harmonic);
        assert!(am > gm && gm > hm, "AM {am} ≥ GM {gm} ≥ HM {hm}");
    }

    #[test]
    fn geometric_mean_is_reference_reciprocal() {
        // The SPEC argument for the geometric mean: swapping system under
        // test and reference exactly inverts the score.
        let r = reference();
        let fire = fire_suite();
        let forward = Tgi::builder()
            .mean(MeanKind::Geometric)
            .reference(r.clone())
            .measurements(fire.clone())
            .compute()
            .unwrap()
            .value();
        let mut fire_ref = ReferenceSystem::builder("fire");
        for m in &fire {
            fire_ref = fire_ref.benchmark(m.clone());
        }
        let fire_ref = fire_ref.build().unwrap();
        let g_suite: Vec<Measurement> = r.iter().map(|(_, m)| m.clone()).collect();
        let backward = Tgi::builder()
            .mean(MeanKind::Geometric)
            .reference(fire_ref)
            .measurements(g_suite)
            .compute()
            .unwrap()
            .value();
        assert!(
            (forward * backward - 1.0).abs() < 1e-9,
            "GM must invert under reference swap: {forward} × {backward}"
        );
        // The arithmetic mean does NOT have this property.
        let am_fwd = Tgi::builder()
            .reference(r.clone())
            .measurements(fire.clone())
            .compute()
            .unwrap()
            .value();
        assert!((am_fwd * backward - 1.0).abs() > 0.01);
    }

    #[test]
    fn mean_kind_recorded_in_result() {
        let result = Tgi::builder()
            .mean(MeanKind::Harmonic)
            .reference(reference())
            .measurements(fire_suite())
            .compute()
            .unwrap();
        assert_eq!(result.mean(), MeanKind::Harmonic);
        assert_eq!(result.mean().label(), "harmonic");
        assert_eq!(MeanKind::default(), MeanKind::Arithmetic);
    }

    #[test]
    fn custom_metric_edp_changes_value() {
        let perf_w =
            Tgi::builder().reference(reference()).measurements(fire_suite()).compute().unwrap();
        let edp = Tgi::builder()
            .metric(EnergyDelayProduct)
            .reference(reference())
            .measurements(fire_suite())
            .compute()
            .unwrap();
        // Different metric, same pipeline — results are both positive and
        // generally different.
        assert!(edp.value() > 0.0);
        assert!((edp.value() - perf_w.value()).abs() > 1e-12);
    }

    #[test]
    fn custom_weighting_emphasizes_benchmark() {
        // Pushing all weight onto iozone makes TGI equal iozone's REE.
        let result = Tgi::builder()
            .reference(reference())
            .weighting(Weighting::Custom(vec![0.0, 0.0, 1.0]))
            .measurements(fire_suite())
            .compute()
            .unwrap();
        let io = result.contribution("iozone").unwrap();
        assert!((result.value() - io.ree).abs() < 1e-12 * io.ree);
    }

    #[test]
    fn display_summarizes_result() {
        let result =
            Tgi::builder().reference(reference()).measurements(fire_suite()).compute().unwrap();
        let text = result.to_string();
        assert!(text.starts_with("TGI = "));
        assert!(text.contains("arithmetic mean"));
        assert!(text.contains("SystemG"));
        for id in ["hpl", "stream", "iozone"] {
            assert!(text.contains(id), "missing {id}:\n{text}");
        }
    }

    #[test]
    fn result_serde_round_trip() {
        let result =
            Tgi::builder().reference(reference()).measurements(fire_suite()).compute().unwrap();
        let json = serde_json::to_string(&result).unwrap();
        let back: TgiResult = serde_json::from_str(&json).unwrap();
        // Floats may lose a ULP through JSON; compare within tolerance.
        assert!((result.value() - back.value()).abs() < 1e-12);
        assert_eq!(result.reference_name(), back.reference_name());
        assert_eq!(result.weighting(), back.weighting());
        assert_eq!(result.contributions().len(), back.contributions().len());
        for (a, b) in result.contributions().iter().zip(back.contributions()) {
            assert_eq!(a.benchmark, b.benchmark);
            assert!((a.ree - b.ree).abs() < 1e-9 * a.ree.abs().max(1.0));
        }
    }

    proptest! {
        /// Scale invariance of the reference (SPEC-rating property): scaling
        /// the system under test's performance by k scales TGI contributions
        /// of that benchmark by k.
        #[test]
        fn prop_tgi_linear_in_performance(k in 0.1..10.0f64) {
            let base = Tgi::builder()
                .reference(reference())
                .measurements(fire_suite())
                .compute()
                .unwrap();
            let scaled_suite = vec![
                meas("hpl", Perf::gflops(90.0 * k), 2_900.0, 1800.0),
                meas("stream", Perf::mbps(80_000.0), 2_500.0, 300.0),
                meas("iozone", Perf::mbps(95.0), 2_300.0, 600.0),
            ];
            let scaled = Tgi::builder()
                .reference(reference())
                .measurements(scaled_suite)
                .compute()
                .unwrap();
            let c0 = base.contribution("hpl").unwrap().contribution;
            let c1 = scaled.contribution("hpl").unwrap().contribution;
            prop_assert!((c1 - k * c0).abs() < 1e-9 * (k * c0).abs());
        }

        /// TGI under any builtin weighting is bounded by [min REE, max REE]
        /// — a weighted mean cannot escape the hull of its inputs.
        #[test]
        fn prop_tgi_within_ree_hull(
            p1 in 1.0..1e3f64, p2 in 1.0..1e6f64, p3 in 1.0..1e3f64,
            w1 in 100.0..1e4f64, w2 in 100.0..1e4f64, w3 in 100.0..1e4f64,
        ) {
            let suite = vec![
                meas("hpl", Perf::gflops(p1), w1, 500.0),
                meas("stream", Perf::mbps(p2), w2, 300.0),
                meas("iozone", Perf::mbps(p3), w3, 600.0),
            ];
            for scheme in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
                let r = Tgi::builder()
                    .reference(reference())
                    .weighting(scheme)
                    .measurements(suite.clone())
                    .compute()
                    .unwrap();
                let rees: Vec<f64> = r.contributions().iter().map(|c| c.ree).collect();
                let lo = rees.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = rees.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(r.value() >= lo - 1e-9 * lo.abs());
                prop_assert!(r.value() <= hi + 1e-9 * hi.abs());
            }
        }
    }
}
