//! Physical-quantity newtypes used throughout the TGI pipeline.
//!
//! The paper combines benchmarks that report performance in different units
//! (HPL in GFLOPS, STREAM and IOzone in MB/s). TGI never compares raw
//! performance across benchmarks — only *ratios* of like units (Eq. 3) — so
//! [`Perf`] keeps its unit alongside the value and refuses to form a ratio
//! across incompatible units.

use crate::error::TgiError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

fn check_finite(quantity: &'static str, value: f64) -> Result<f64, TgiError> {
    if !value.is_finite() {
        return Err(TgiError::NotFinite { quantity });
    }
    Ok(value)
}

fn check_positive(quantity: &'static str, value: f64) -> Result<f64, TgiError> {
    check_finite(quantity, value)?;
    if value <= 0.0 {
        return Err(TgiError::NonPositiveQuantity { quantity, value });
    }
    Ok(value)
}

/// Average electrical power, in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Wraps a wattage. Panics in debug builds on non-finite input; prefer
    /// [`Watts::try_new`] at trust boundaries.
    pub fn new(watts: f64) -> Self {
        debug_assert!(watts.is_finite(), "power must be finite");
        Watts(watts)
    }

    /// Validated constructor: requires a strictly positive, finite value.
    pub fn try_new(watts: f64) -> Result<Self, TgiError> {
        Ok(Watts(check_positive("power", watts)?))
    }

    /// The raw value in watts.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to kilowatts.
    pub fn kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// Energy accumulated over `duration` at this constant power.
    pub fn over(self, duration: Seconds) -> Joules {
        Joules(self.0 * duration.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl std::iter::Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.2} kW", self.0 / 1e3)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

/// Energy, in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Wraps an energy value.
    pub fn new(joules: f64) -> Self {
        debug_assert!(joules.is_finite(), "energy must be finite");
        Joules(joules)
    }

    /// Validated constructor: requires a strictly positive, finite value.
    pub fn try_new(joules: f64) -> Result<Self, TgiError> {
        Ok(Joules(check_positive("energy", joules)?))
    }

    /// The raw value in joules.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to kilowatt-hours.
    pub fn kilowatt_hours(self) -> f64 {
        self.0 / 3.6e6
    }

    /// Average power if this energy was spent over `duration`.
    pub fn average_power(self, duration: Seconds) -> Watts {
        Watts(self.0 / duration.0)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} MJ", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} kJ", self.0 / 1e3)
        } else {
            write!(f, "{:.1} J", self.0)
        }
    }
}

/// Wall-clock duration, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Wraps a duration.
    pub fn new(seconds: f64) -> Self {
        debug_assert!(seconds.is_finite(), "time must be finite");
        Seconds(seconds)
    }

    /// Validated constructor: requires a strictly positive, finite value.
    pub fn try_new(seconds: f64) -> Result<Self, TgiError> {
        Ok(Seconds(check_positive("time", seconds)?))
    }

    /// The raw value in seconds.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl From<std::time::Duration> for Seconds {
    fn from(d: std::time::Duration) -> Self {
        Seconds(d.as_secs_f64())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

/// The unit a benchmark reports its performance in.
///
/// TGI only ever divides performance values of the *same* unit (system under
/// test vs reference), so no cross-unit conversion table is needed — but the
/// unit must travel with the value so that mismatches are caught.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfUnit {
    /// Floating-point operations per second. Stored canonically; displayed
    /// scaled (MFLOPS / GFLOPS / TFLOPS).
    Flops,
    /// Bytes per second (STREAM, IOzone). Displayed scaled (MB/s, GB/s).
    BytesPerSecond,
    /// Giga-updates per second (HPCC RandomAccess).
    Gups,
    /// Any other rate metric, identified by label (e.g. `"iterations/s"`).
    Custom(String),
}

impl PerfUnit {
    /// Human-readable unit label for the *canonical* magnitude.
    pub fn label(&self) -> &str {
        match self {
            PerfUnit::Flops => "FLOPS",
            PerfUnit::BytesPerSecond => "B/s",
            PerfUnit::Gups => "GUPS",
            PerfUnit::Custom(s) => s,
        }
    }
}

impl fmt::Display for PerfUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A performance observation: a rate value in canonical units plus its unit.
///
/// Canonical magnitudes: FLOPS for [`PerfUnit::Flops`], bytes/s for
/// [`PerfUnit::BytesPerSecond`], GUPS for [`PerfUnit::Gups`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perf {
    value: f64,
    unit: PerfUnit,
}

impl Perf {
    /// Constructs a performance value in canonical units.
    pub fn new(value: f64, unit: PerfUnit) -> Result<Self, TgiError> {
        check_positive("performance", value)?;
        Ok(Perf { value, unit })
    }

    /// Mega-FLOPS convenience constructor.
    pub fn mflops(v: f64) -> Self {
        Perf { value: v * 1e6, unit: PerfUnit::Flops }
    }

    /// Giga-FLOPS convenience constructor.
    pub fn gflops(v: f64) -> Self {
        Perf { value: v * 1e9, unit: PerfUnit::Flops }
    }

    /// Tera-FLOPS convenience constructor.
    pub fn tflops(v: f64) -> Self {
        Perf { value: v * 1e12, unit: PerfUnit::Flops }
    }

    /// Megabytes-per-second convenience constructor (decimal MB).
    pub fn mbps(v: f64) -> Self {
        Perf { value: v * 1e6, unit: PerfUnit::BytesPerSecond }
    }

    /// Gigabytes-per-second convenience constructor (decimal GB).
    pub fn gbps(v: f64) -> Self {
        Perf { value: v * 1e9, unit: PerfUnit::BytesPerSecond }
    }

    /// Giga-updates-per-second convenience constructor.
    pub fn gups(v: f64) -> Self {
        Perf { value: v, unit: PerfUnit::Gups }
    }

    /// The canonical-magnitude value (FLOPS, B/s, or GUPS).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The unit this performance value is expressed in.
    pub fn unit(&self) -> &PerfUnit {
        &self.unit
    }

    /// Value expressed in MFLOPS (only meaningful for FLOPS units).
    pub fn as_mflops(&self) -> f64 {
        self.value / 1e6
    }

    /// Value expressed in GFLOPS (only meaningful for FLOPS units).
    pub fn as_gflops(&self) -> f64 {
        self.value / 1e9
    }

    /// Value expressed in MB/s (only meaningful for byte-rate units).
    pub fn as_mbps(&self) -> f64 {
        self.value / 1e6
    }

    /// Ratio of two like-unit performance values (used by REE, Eq. 3).
    pub fn ratio(&self, reference: &Perf) -> Result<f64, TgiError> {
        if self.unit != reference.unit {
            return Err(TgiError::UnitMismatch {
                left: self.unit.label().to_string(),
                right: reference.unit.label().to_string(),
            });
        }
        Ok(self.value / reference.value)
    }
}

impl Div<Watts> for &Perf {
    type Output = f64;
    /// Performance-to-power ratio in canonical units per watt (Eq. 2).
    fn div(self, power: Watts) -> f64 {
        self.value / power.value()
    }
}

impl fmt::Display for Perf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.unit {
            PerfUnit::Flops => {
                if self.value >= 1e12 {
                    write!(f, "{:.3} TFLOPS", self.value / 1e12)
                } else if self.value >= 1e9 {
                    write!(f, "{:.3} GFLOPS", self.value / 1e9)
                } else {
                    write!(f, "{:.3} MFLOPS", self.value / 1e6)
                }
            }
            PerfUnit::BytesPerSecond => {
                if self.value >= 1e9 {
                    write!(f, "{:.3} GB/s", self.value / 1e9)
                } else {
                    write!(f, "{:.3} MB/s", self.value / 1e6)
                }
            }
            PerfUnit::Gups => write!(f, "{:.4} GUPS", self.value),
            PerfUnit::Custom(ref u) => write!(f, "{:.4} {u}", self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic_and_energy() {
        let p = Watts::new(250.0) + Watts::new(50.0);
        assert_eq!(p.value(), 300.0);
        let e = p.over(Seconds::new(10.0));
        assert_eq!(e.value(), 3000.0);
        assert!((e.average_power(Seconds::new(10.0)).value() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn watts_rejects_non_positive() {
        assert!(Watts::try_new(0.0).is_err());
        assert!(Watts::try_new(-5.0).is_err());
        assert!(Watts::try_new(f64::NAN).is_err());
        assert!(Watts::try_new(f64::INFINITY).is_err());
        assert!(Watts::try_new(400.0).is_ok());
    }

    #[test]
    fn joules_kwh_conversion() {
        let e = Joules::new(3.6e6);
        assert!((e.kilowatt_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_from_duration() {
        let s: Seconds = std::time::Duration::from_millis(1500).into();
        assert!((s.value() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn perf_constructors_are_canonical() {
        assert_eq!(Perf::gflops(2.0).value(), 2e9);
        assert_eq!(Perf::tflops(1.5).value(), 1.5e12);
        assert_eq!(Perf::mflops(10.0).value(), 1e7);
        assert_eq!(Perf::mbps(3.0).value(), 3e6);
        assert_eq!(Perf::gbps(1.0).value(), 1e9);
        assert_eq!(Perf::gups(0.02).value(), 0.02);
    }

    #[test]
    fn perf_ratio_same_unit() {
        let a = Perf::gflops(90.0);
        let b = Perf::tflops(8.1);
        let r = a.ratio(&b).unwrap();
        assert!((r - 90.0 / 8100.0).abs() < 1e-12);
    }

    #[test]
    fn perf_ratio_rejects_unit_mismatch() {
        let a = Perf::gflops(90.0);
        let b = Perf::mbps(100.0);
        assert!(matches!(a.ratio(&b), Err(TgiError::UnitMismatch { .. })));
    }

    #[test]
    fn perf_per_watt_division() {
        let p = Perf::mflops(1000.0);
        let ee = &p / Watts::new(500.0);
        assert!((ee - 2e6).abs() < 1e-6); // 2 MFLOPS/W in canonical FLOPS/W
    }

    #[test]
    fn perf_rejects_invalid() {
        assert!(Perf::new(0.0, PerfUnit::Flops).is_err());
        assert!(Perf::new(-1.0, PerfUnit::Gups).is_err());
        assert!(Perf::new(f64::NAN, PerfUnit::Flops).is_err());
    }

    #[test]
    fn display_scales_sensibly() {
        assert_eq!(Perf::tflops(8.1).to_string(), "8.100 TFLOPS");
        assert_eq!(Perf::gflops(90.0).to_string(), "90.000 GFLOPS");
        assert_eq!(Perf::mflops(42.0).to_string(), "42.000 MFLOPS");
        assert_eq!(Perf::mbps(95.5).to_string(), "95.500 MB/s");
        assert_eq!(Watts::new(2500.0).to_string(), "2.50 kW");
        assert_eq!(Watts::new(350.0).to_string(), "350.0 W");
        assert_eq!(Joules::new(2.0e6).to_string(), "2.000 MJ");
    }

    #[test]
    fn custom_unit_round_trip() {
        let p = Perf::new(7.5, PerfUnit::Custom("iter/s".into())).unwrap();
        assert_eq!(p.unit().label(), "iter/s");
        assert!(p.to_string().contains("iter/s"));
    }

    #[test]
    fn serde_round_trip() {
        let p = Perf::gflops(90.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Perf = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
