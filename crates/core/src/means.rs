//! Central-tendency measures for benchmark aggregation (§III, related work).
//!
//! The paper builds TGI on the (weighted) arithmetic mean (Eqs. 6–9) and
//! cites Smith (CACM 1988) and John (CAN 2004) on summarizing benchmark
//! suites with a single number. John concludes both arithmetic and harmonic
//! means are valid with appropriate weights; the geometric mean is the SPEC
//! tradition for ratio data. All three (plus weighted variants) are provided
//! so weight/mean ablations can be benchmarked.

use crate::error::TgiError;

fn validate_nonempty(xs: &[f64]) -> Result<(), TgiError> {
    if xs.is_empty() {
        return Err(TgiError::EmptyBenchmarkSet);
    }
    for &x in xs {
        if !x.is_finite() {
            return Err(TgiError::NotFinite { quantity: "sample" });
        }
    }
    Ok(())
}

fn validate_weights(xs: &[f64], ws: &[f64]) -> Result<(), TgiError> {
    if ws.len() != xs.len() {
        return Err(TgiError::WeightCountMismatch { weights: ws.len(), benchmarks: xs.len() });
    }
    let mut sum = 0.0;
    for &w in ws {
        if !w.is_finite() || w < 0.0 {
            return Err(TgiError::InvalidWeights { sum: f64::NAN });
        }
        sum += w;
    }
    if (sum - 1.0).abs() > 1e-9 {
        return Err(TgiError::InvalidWeights { sum });
    }
    Ok(())
}

/// Arithmetic mean (Eq. 6): `Σ x_i / n`.
///
/// ```
/// assert_eq!(tgi_core::means::arithmetic(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
/// ```
pub fn arithmetic(xs: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Weighted arithmetic mean (Eq. 9): `Σ w_i x_i`, with `Σ w_i = 1`.
///
/// ```
/// let wam = tgi_core::means::weighted_arithmetic(&[10.0, 20.0], &[0.25, 0.75]).unwrap();
/// assert_eq!(wam, 17.5);
/// ```
pub fn weighted_arithmetic(xs: &[f64], ws: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    validate_weights(xs, ws)?;
    Ok(xs.iter().zip(ws).map(|(x, w)| x * w).sum())
}

/// Geometric mean: `(Π x_i)^(1/n)`. Requires strictly positive samples.
pub fn geometric(xs: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    let mut log_sum = 0.0;
    for &x in xs {
        if x <= 0.0 {
            return Err(TgiError::NonPositiveQuantity { quantity: "sample", value: x });
        }
        log_sum += x.ln();
    }
    Ok((log_sum / xs.len() as f64).exp())
}

/// Weighted geometric mean: `Π x_i^{w_i}` with `Σ w_i = 1`.
pub fn weighted_geometric(xs: &[f64], ws: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    validate_weights(xs, ws)?;
    let mut log_sum = 0.0;
    for (&x, &w) in xs.iter().zip(ws) {
        if x <= 0.0 {
            return Err(TgiError::NonPositiveQuantity { quantity: "sample", value: x });
        }
        log_sum += w * x.ln();
    }
    Ok(log_sum.exp())
}

/// Harmonic mean: `n / Σ (1/x_i)`. Requires strictly positive samples.
pub fn harmonic(xs: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    let mut recip_sum = 0.0;
    for &x in xs {
        if x <= 0.0 {
            return Err(TgiError::NonPositiveQuantity { quantity: "sample", value: x });
        }
        recip_sum += 1.0 / x;
    }
    Ok(xs.len() as f64 / recip_sum)
}

/// Weighted harmonic mean: `1 / Σ (w_i / x_i)` with `Σ w_i = 1`.
pub fn weighted_harmonic(xs: &[f64], ws: &[f64]) -> Result<f64, TgiError> {
    validate_nonempty(xs)?;
    validate_weights(xs, ws)?;
    let mut recip_sum = 0.0;
    for (&x, &w) in xs.iter().zip(ws) {
        if x <= 0.0 {
            return Err(TgiError::NonPositiveQuantity { quantity: "sample", value: x });
        }
        recip_sum += w / x;
    }
    Ok(1.0 / recip_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_of_constants() {
        assert!((arithmetic(&[3.0, 3.0, 3.0]).unwrap() - 3.0).abs() < EPS);
    }

    #[test]
    fn arithmetic_simple() {
        assert!((arithmetic(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn weighted_arithmetic_equal_weights_matches_arithmetic() {
        let xs = [1.0, 5.0, 9.0];
        let ws = [1.0 / 3.0; 3];
        assert!((weighted_arithmetic(&xs, &ws).unwrap() - arithmetic(&xs).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn weighted_arithmetic_degenerate_weight_selects_sample() {
        let xs = [1.0, 5.0, 9.0];
        let ws = [0.0, 1.0, 0.0];
        assert!((weighted_arithmetic(&xs, &ws).unwrap() - 5.0).abs() < EPS);
    }

    #[test]
    fn geometric_of_powers_of_two() {
        // gm(2, 8) = 4
        assert!((geometric(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_of_rates() {
        // hm(60, 30) = 40 (classic speed-averaging example)
        assert!((harmonic(&[60.0, 30.0]).unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_errors() {
        assert!(arithmetic(&[]).is_err());
        assert!(geometric(&[]).is_err());
        assert!(harmonic(&[]).is_err());
    }

    #[test]
    fn non_positive_rejected_by_geo_and_harmonic() {
        assert!(geometric(&[1.0, 0.0]).is_err());
        assert!(harmonic(&[1.0, -2.0]).is_err());
        assert!(weighted_geometric(&[1.0, 0.0], &[0.5, 0.5]).is_err());
        assert!(weighted_harmonic(&[-1.0, 2.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn invalid_weights_rejected() {
        let xs = [1.0, 2.0];
        assert!(weighted_arithmetic(&xs, &[0.4, 0.4]).is_err()); // sum != 1
        assert!(weighted_arithmetic(&xs, &[1.5, -0.5]).is_err()); // negative
        assert!(weighted_arithmetic(&xs, &[1.0]).is_err()); // count mismatch
    }

    #[test]
    fn nan_samples_rejected() {
        assert!(arithmetic(&[1.0, f64::NAN]).is_err());
        assert!(weighted_arithmetic(&[1.0, f64::INFINITY], &[0.5, 0.5]).is_err());
    }

    fn positive_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(1e-3..1e6f64, 1..16)
    }

    proptest! {
        /// AM–GM–HM inequality: for positive samples, AM >= GM >= HM.
        #[test]
        fn prop_am_gm_hm_inequality(xs in positive_vec()) {
            let am = arithmetic(&xs).unwrap();
            let gm = geometric(&xs).unwrap();
            let hm = harmonic(&xs).unwrap();
            // Small numeric slack: these can be equal for constant inputs.
            prop_assert!(am >= gm - 1e-9 * am.abs());
            prop_assert!(gm >= hm - 1e-9 * gm.abs());
        }

        /// Every mean lies within [min, max] of the samples.
        #[test]
        fn prop_means_bounded_by_extremes(xs in positive_vec()) {
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for mean in [arithmetic(&xs).unwrap(), geometric(&xs).unwrap(), harmonic(&xs).unwrap()] {
                prop_assert!(mean >= lo - 1e-9 * lo.abs().max(1.0));
                prop_assert!(mean <= hi + 1e-9 * hi.abs().max(1.0));
            }
        }

        /// Weighted means with equal weights reduce to unweighted means.
        #[test]
        fn prop_equal_weights_reduce(xs in positive_vec()) {
            let n = xs.len();
            let ws = vec![1.0 / n as f64; n];
            prop_assert!((weighted_arithmetic(&xs, &ws).unwrap() - arithmetic(&xs).unwrap()).abs()
                < 1e-6 * arithmetic(&xs).unwrap().abs().max(1.0));
            prop_assert!((weighted_geometric(&xs, &ws).unwrap() - geometric(&xs).unwrap()).abs()
                < 1e-6 * geometric(&xs).unwrap().abs().max(1.0));
            prop_assert!((weighted_harmonic(&xs, &ws).unwrap() - harmonic(&xs).unwrap()).abs()
                < 1e-6 * harmonic(&xs).unwrap().abs().max(1.0));
        }

        /// Means are scale-equivariant: mean(k·x) = k·mean(x).
        #[test]
        fn prop_scale_equivariance(xs in positive_vec(), k in 1e-2..1e3f64) {
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let am = arithmetic(&xs).unwrap();
            let am_scaled = arithmetic(&scaled).unwrap();
            prop_assert!((am_scaled - k * am).abs() < 1e-6 * (k * am).abs().max(1e-12));
            let gm = geometric(&xs).unwrap();
            let gm_scaled = geometric(&scaled).unwrap();
            prop_assert!((gm_scaled - k * gm).abs() < 1e-6 * (k * gm).abs().max(1e-12));
        }
    }
}
