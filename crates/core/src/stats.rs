//! Descriptive statistics used by the paper's goodness analysis (§IV).
//!
//! The paper judges TGI variants by the Pearson correlation coefficient
//! (Eq. 17) between the TGI series and each benchmark's energy-efficiency
//! series across the core-count sweep. Spearman rank correlation and simple
//! linear regression are provided for additional ablations.

use crate::error::TgiError;

fn validate_series(xs: &[f64]) -> Result<(), TgiError> {
    for &x in xs {
        if !x.is_finite() {
            return Err(TgiError::NotFinite { quantity: "sample" });
        }
    }
    Ok(())
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> Result<f64, TgiError> {
    if xs.is_empty() {
        return Err(TgiError::EmptyBenchmarkSet);
    }
    validate_series(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (Bessel-corrected, `n-1` denominator).
pub fn variance(xs: &[f64]) -> Result<f64, TgiError> {
    if xs.len() < 2 {
        return Err(TgiError::DegenerateStatistic("variance needs at least 2 samples"));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64, TgiError> {
    Ok(variance(xs)?.sqrt())
}

/// Sample covariance (Bessel-corrected).
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64, TgiError> {
    if xs.len() != ys.len() {
        return Err(TgiError::WeightCountMismatch { weights: ys.len(), benchmarks: xs.len() });
    }
    if xs.len() < 2 {
        return Err(TgiError::DegenerateStatistic("covariance needs at least 2 samples"));
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    Ok(xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Pearson correlation coefficient (Eq. 17 in the paper).
///
/// Returns a value in `[-1, 1]`. Errors on length mismatch, fewer than two
/// samples, or a zero-variance series (the coefficient is undefined there —
/// the paper's Table II implicitly assumes non-constant series).
///
/// ```
/// let r = tgi_core::stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, TgiError> {
    let cov = covariance(xs, ys)?;
    let sx = std_dev(xs)?;
    let sy = std_dev(ys)?;
    if sx == 0.0 || sy == 0.0 {
        return Err(TgiError::DegenerateStatistic("zero variance series"));
    }
    // Clamp tiny numeric excursions outside [-1, 1].
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson correlation of the rank vectors, with
/// average ranks assigned to ties.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, TgiError> {
    let rx = ranks(xs)?;
    let ry = ranks(ys)?;
    pearson(&rx, &ry)
}

fn ranks(xs: &[f64]) -> Result<Vec<f64>, TgiError> {
    validate_series(xs)?;
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values compare"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < idx.len() && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank of the group (1-based ranks).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    Ok(ranks)
}

/// The `p`-th percentile (0–100) of `values` by linear interpolation between
/// order statistics, selected in place.
///
/// Uses `select_nth_unstable` (expected O(n)) instead of a full sort, so a
/// single percentile query over a long power trace does not pay O(n log n).
/// The slice is reordered arbitrarily around the selected rank; callers that
/// need many percentiles of the same data should sort once and index instead.
pub fn percentile_interpolated(values: &mut [f64], p: f64) -> Result<f64, TgiError> {
    if values.is_empty() {
        return Err(TgiError::DegenerateStatistic("percentile of an empty sample"));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(TgiError::OutOfRange { quantity: "percentile", value: p, lo: 0.0, hi: 100.0 });
    }
    validate_series(values)?;
    let rank = p / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    let (_, &mut lo_v, rest) = values.select_nth_unstable_by(lo, f64::total_cmp);
    // The next order statistic is the minimum of the right partition.
    let hi_v = if frac > 0.0 { rest.iter().copied().fold(f64::INFINITY, f64::min) } else { lo_v };
    Ok(lo_v + (hi_v - lo_v) * frac)
}

/// Ordinary least-squares fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Simple linear regression of `ys` on `xs`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, TgiError> {
    let cov = covariance(xs, ys)?;
    let vx = variance(xs)?;
    if vx == 0.0 {
        return Err(TgiError::DegenerateStatistic("zero variance in x"));
    }
    let slope = cov / vx;
    let intercept = mean(ys)? - slope * mean(xs)?;
    let vy = variance(ys)?;
    let r_squared = if vy == 0.0 { 1.0 } else { (cov * cov / (vx * vy)).clamp(0.0, 1.0) };
    Ok(LinearFit { slope, intercept, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed example.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero variance
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolated_matches_sorted_definition() {
        let base = [50.0, 10.0, 40.0, 30.0, 20.0];
        assert_eq!(percentile_interpolated(&mut base.clone(), 0.0).unwrap(), 10.0);
        assert_eq!(percentile_interpolated(&mut base.clone(), 100.0).unwrap(), 50.0);
        assert_eq!(percentile_interpolated(&mut base.clone(), 50.0).unwrap(), 30.0);
        assert_eq!(percentile_interpolated(&mut base.clone(), 25.0).unwrap(), 20.0);
        // Interpolation between order statistics.
        let v = percentile_interpolated(&mut [0.0, 100.0], 30.0).unwrap();
        assert!((v - 30.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolated_rejects_bad_input() {
        assert!(matches!(
            percentile_interpolated(&mut [], 50.0),
            Err(TgiError::DegenerateStatistic(_))
        ));
        assert!(matches!(
            percentile_interpolated(&mut [1.0], 101.0),
            Err(TgiError::OutOfRange { .. })
        ));
        assert!(matches!(
            percentile_interpolated(&mut [1.0, f64::NAN], 50.0),
            Err(TgiError::NotFinite { .. })
        ));
    }

    proptest! {
        /// The selection-based percentile agrees with the full-sort definition.
        #[test]
        fn prop_percentile_matches_full_sort(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..64),
            p in 0.0..100.0f64,
        ) {
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let (lo, frac) = (rank.floor() as usize, rank.fract());
            let expect = sorted[lo]
                + (sorted[(rank.ceil()) as usize] - sorted[lo]) * frac;
            let got = percentile_interpolated(&mut xs.clone(), p).unwrap();
            prop_assert!((got - expect).abs() < 1e-9, "p={p}: {got} vs {expect}");
        }
    }

    fn paired_series() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (2usize..24).prop_flat_map(|n| {
            (proptest::collection::vec(-1e3..1e3f64, n), proptest::collection::vec(-1e3..1e3f64, n))
        })
    }

    proptest! {
        /// Pearson is symmetric and bounded.
        #[test]
        fn prop_pearson_symmetric_bounded((xs, ys) in paired_series()) {
            if let (Ok(a), Ok(b)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
                prop_assert!((a - b).abs() < 1e-9);
                prop_assert!((-1.0..=1.0).contains(&a));
            }
        }

        /// Pearson is invariant under positive affine transforms of either series.
        #[test]
        fn prop_pearson_affine_invariant((xs, ys) in paired_series(),
                                         a in 0.1..10.0f64, b in -50.0..50.0f64) {
            let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let (Ok(r1), Ok(r2)) = (pearson(&xs, &ys), pearson(&xs2, &ys)) {
                prop_assert!((r1 - r2).abs() < 1e-6);
            }
        }

        /// Self-correlation is 1 for any non-constant series.
        #[test]
        fn prop_pearson_self_is_one(xs in proptest::collection::vec(-1e3..1e3f64, 2..24)) {
            if let Ok(r) = pearson(&xs, &xs) {
                prop_assert!((r - 1.0).abs() < 1e-9);
            }
        }
    }
}
