//! Reference system registry (the SPEC-rating analogy, §II / Eq. 1).
//!
//! Like the SPEC rating, TGI is *relative*: every benchmark's energy
//! efficiency is divided by the corresponding result on a fixed reference
//! machine (SystemG in the paper). A [`ReferenceSystem`] is therefore a named
//! set of [`Measurement`]s keyed by benchmark id.

use crate::efficiency::EfficiencyMetric;
use crate::error::TgiError;
use crate::measurement::Measurement;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named reference machine with one measurement per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceSystem {
    name: String,
    measurements: BTreeMap<String, Measurement>,
}

impl ReferenceSystem {
    /// Starts building a reference system with the given display name.
    pub fn builder(name: impl Into<String>) -> ReferenceSystemBuilder {
        ReferenceSystemBuilder { name: name.into(), measurements: Vec::new() }
    }

    /// The reference machine's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of benchmarks with reference measurements.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Whether the reference set is empty (builder forbids this, but a
    /// deserialized value could be).
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Looks up the reference measurement for a benchmark id.
    pub fn measurement(&self, benchmark: &str) -> Option<&Measurement> {
        self.measurements.get(benchmark)
    }

    /// Reference energy efficiency for a benchmark under the given metric.
    pub fn efficiency(
        &self,
        benchmark: &str,
        metric: &dyn EfficiencyMetric,
    ) -> Result<f64, TgiError> {
        let m = self
            .measurement(benchmark)
            .ok_or_else(|| TgiError::MissingReference(benchmark.to_string()))?;
        Ok(metric.evaluate(m))
    }

    /// Iterates over `(benchmark id, measurement)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Measurement)> {
        self.measurements.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Relative energy efficiency (Eq. 3) of `m` against this reference,
    /// under the performance-to-power metric.
    ///
    /// Performs a unit check: the measurement's performance unit must match
    /// the reference's for the same benchmark id.
    pub fn ree(&self, m: &Measurement) -> Result<f64, TgiError> {
        let reference = self
            .measurement(m.id())
            .ok_or_else(|| TgiError::MissingReference(m.id().to_string()))?;
        // Unit check via Perf::ratio; then EE ratio = perf ratio × power ratio⁻¹.
        let perf_ratio = m.performance().ratio(reference.performance())?;
        Ok(perf_ratio * reference.power().value() / m.power().value())
    }
}

/// Builder for [`ReferenceSystem`]; rejects duplicates and empty sets.
#[derive(Debug, Clone)]
pub struct ReferenceSystemBuilder {
    name: String,
    measurements: Vec<Measurement>,
}

impl ReferenceSystemBuilder {
    /// Adds one benchmark's reference measurement.
    pub fn benchmark(mut self, m: Measurement) -> Self {
        self.measurements.push(m);
        self
    }

    /// Finalizes the reference system.
    pub fn build(self) -> Result<ReferenceSystem, TgiError> {
        if self.measurements.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        let mut map = BTreeMap::new();
        for m in self.measurements {
            let id = m.id().to_string();
            if map.insert(id.clone(), m).is_some() {
                return Err(TgiError::DuplicateBenchmark(id));
            }
        }
        Ok(ReferenceSystem { name: self.name, measurements: map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::PerfPerWatt;
    use crate::units::{Perf, Seconds, Watts};

    fn m(id: &str, perf: Perf, w: f64) -> Measurement {
        Measurement::new(id, perf, Watts::new(w), Seconds::new(100.0)).unwrap()
    }

    fn sysg() -> ReferenceSystem {
        ReferenceSystem::builder("SystemG")
            .benchmark(m("hpl", Perf::tflops(8.1), 26_000.0))
            .benchmark(m("stream", Perf::mbps(1_600_000.0), 24_000.0))
            .benchmark(m("iozone", Perf::mbps(320.0), 11_500.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let r = sysg();
        assert_eq!(r.name(), "SystemG");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.measurement("hpl").is_some());
        assert!(r.measurement("fft").is_none());
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(ReferenceSystem::builder("empty").build().is_err());
    }

    #[test]
    fn builder_rejects_duplicates() {
        let r = ReferenceSystem::builder("dup")
            .benchmark(m("hpl", Perf::tflops(8.1), 26_000.0))
            .benchmark(m("hpl", Perf::tflops(9.0), 26_000.0))
            .build();
        assert!(matches!(r, Err(TgiError::DuplicateBenchmark(_))));
    }

    #[test]
    fn efficiency_lookup() {
        let r = sysg();
        let ee = r.efficiency("hpl", &PerfPerWatt).unwrap();
        assert!((ee - 8.1e12 / 26_000.0).abs() < 1.0);
        assert!(r.efficiency("fft", &PerfPerWatt).is_err());
    }

    #[test]
    fn ree_matches_manual_eq3() {
        let r = sysg();
        // Fire-like measurement: 90 GFLOPS at 2.9 kW.
        let fire = m("hpl", Perf::gflops(90.0), 2_900.0);
        let ree = r.ree(&fire).unwrap();
        let expected = (90e9 / 2_900.0) / (8.1e12 / 26_000.0);
        assert!((ree - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn ree_of_reference_itself_is_one() {
        let r = sysg();
        let same = r.measurement("stream").unwrap().clone();
        assert!((r.ree(&same).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ree_rejects_unknown_benchmark() {
        let r = sysg();
        let unknown = m("fft", Perf::gflops(1.0), 100.0);
        assert!(matches!(r.ree(&unknown), Err(TgiError::MissingReference(_))));
    }

    #[test]
    fn ree_rejects_unit_mismatch() {
        let r = sysg();
        // "hpl" reported in MB/s instead of FLOPS.
        let wrong = m("hpl", Perf::mbps(100.0), 2_900.0);
        assert!(matches!(r.ree(&wrong), Err(TgiError::UnitMismatch { .. })));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let r = sysg();
        let ids: Vec<&str> = r.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["hpl", "iozone", "stream"]);
    }
}
