//! The SPEC rating (Eq. 1) — the historical model for TGI's normalization.
//!
//! "The earliest metric for comparing system performance is the Standard
//! Performance Evaluation Corporation (SPEC) rating. … the SPEC rating
//! defines the performance of a system under test, relative to a reference
//! system, where time is used as the unit of performance. A SPEC rating of
//! 25 means that the system under test is 25 times faster than the
//! reference system."
//!
//! Implemented exactly as Eq. 1 for completeness, since TGI inherits its
//! normalize-against-a-reference structure from it (and because it makes a
//! crisp oracle for tests: REE is to efficiency what the SPEC rating is to
//! time).

use crate::error::TgiError;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// One SPEC-style benchmark timing pair: reference time and measured time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingPair {
    /// Runtime on the reference system.
    pub reference: Seconds,
    /// Runtime on the system under test.
    pub measured: Seconds,
}

/// The SPEC rating of one benchmark (Eq. 1):
/// `reference time / measured time`. Larger is faster.
///
/// ```
/// use tgi_core::spec_rating::{spec_rating, TimingPair};
/// use tgi_core::Seconds;
/// let pair = TimingPair { reference: Seconds::new(2500.0), measured: Seconds::new(100.0) };
/// assert_eq!(spec_rating(pair).unwrap(), 25.0); // "25 times faster"
/// ```
pub fn spec_rating(pair: TimingPair) -> Result<f64, TgiError> {
    let r = Seconds::try_new(pair.reference.value())?;
    let m = Seconds::try_new(pair.measured.value())?;
    Ok(r.value() / m.value())
}

/// The overall SPEC rating of a suite: the geometric mean of the
/// per-benchmark ratings (SPEC's aggregation choice, contrast with TGI's
/// weighted arithmetic mean).
pub fn suite_rating(pairs: &[TimingPair]) -> Result<f64, TgiError> {
    if pairs.is_empty() {
        return Err(TgiError::EmptyBenchmarkSet);
    }
    let ratings: Result<Vec<f64>, TgiError> = pairs.iter().map(|p| spec_rating(*p)).collect();
    crate::means::geometric(&ratings?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(reference: f64, measured: f64) -> TimingPair {
        TimingPair { reference: Seconds::new(reference), measured: Seconds::new(measured) }
    }

    #[test]
    fn rating_of_25_means_25x_faster() {
        // The paper's own example sentence.
        assert!((spec_rating(pair(2500.0, 100.0)).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn reference_against_itself_scores_one() {
        assert!((spec_rating(pair(100.0, 100.0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slower_than_reference_scores_below_one() {
        assert!(spec_rating(pair(100.0, 400.0)).unwrap() < 1.0);
    }

    #[test]
    fn invalid_times_rejected() {
        assert!(spec_rating(pair(0.0, 1.0)).is_err());
        assert!(spec_rating(pair(1.0, -1.0)).is_err());
    }

    #[test]
    fn suite_rating_is_geometric_mean() {
        // Ratings 2 and 8 → geometric mean 4.
        let pairs = [pair(200.0, 100.0), pair(800.0, 100.0)];
        assert!((suite_rating(&pairs).unwrap() - 4.0).abs() < 1e-9);
        assert!(suite_rating(&[]).is_err());
    }

    #[test]
    fn ree_generalizes_spec_rating() {
        // For a fixed amount of work at fixed power, REE reduces to the SPEC
        // rating: performance ratio = inverse time ratio.
        use crate::measurement::Measurement;
        use crate::reference::ReferenceSystem;
        use crate::units::{Perf, Watts};
        let work_gflop = 1000.0;
        let (t_ref, t_sut) = (500.0, 100.0);
        let reference = ReferenceSystem::builder("ref")
            .benchmark(
                Measurement::new(
                    "b",
                    Perf::gflops(work_gflop / t_ref),
                    Watts::new(300.0),
                    Seconds::new(t_ref),
                )
                .expect("valid"),
            )
            .build()
            .expect("non-empty");
        let sut = Measurement::new(
            "b",
            Perf::gflops(work_gflop / t_sut),
            Watts::new(300.0),
            Seconds::new(t_sut),
        )
        .expect("valid");
        let ree = reference.ree(&sut).expect("valid");
        let rating = spec_rating(pair(t_ref, t_sut)).expect("valid");
        assert!((ree - rating).abs() < 1e-12);
    }
}
