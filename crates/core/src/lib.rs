//! # tgi-core — The Green Index (TGI)
//!
//! This crate implements the metric proposed in *"The Green Index: A Metric
//! for Evaluating System-Wide Energy Efficiency in HPC Systems"*
//! (Subramaniam & Feng, IPDPSW 2012).
//!
//! TGI aggregates the energy efficiency of a *suite* of benchmarks — each
//! stressing a different subsystem (CPU, memory, I/O, ...) and each reporting
//! performance in its own unit — into a single, rankable number:
//!
//! 1. For each benchmark `i`, measure energy efficiency
//!    `EE_i = Performance_i / Power_i` (Eq. 2 in the paper).
//! 2. Normalize against a *reference system* (SPEC-rating style, Eq. 3):
//!    `REE_i = EE_i / EE_i(reference)`.
//! 3. Pick weights `W_i` with `Σ W_i = 1` (Eqs. 10–12 study time-, energy-
//!    and power-proportional weights; equal weights give the arithmetic mean).
//! 4. `TGI = Σ_i W_i · REE_i` (Eq. 4).
//!
//! The crate also provides the supporting machinery the paper's evaluation
//! relies on: central-tendency means (§III), Pearson correlation for the
//! goodness analysis (§IV, Eq. 17), the energy-delay-product alternative
//! metric mentioned in §II, and Green500-style ranking of systems.
//!
//! ## Quick example
//!
//! ```
//! use tgi_core::prelude::*;
//!
//! // Reference system measurements (e.g. SystemG in the paper).
//! let reference = ReferenceSystem::builder("SystemG")
//!     .benchmark(Measurement::new("hpl", Perf::tflops(8.1), Watts::new(26_000.0), Seconds::new(7200.0)).unwrap())
//!     .benchmark(Measurement::new("stream", Perf::mbps(1_600_000.0), Watts::new(24_000.0), Seconds::new(600.0)).unwrap())
//!     .benchmark(Measurement::new("iozone", Perf::mbps(320.0), Watts::new(11_500.0), Seconds::new(900.0)).unwrap())
//!     .build()
//!     .unwrap();
//!
//! // System under test (e.g. the Fire cluster).
//! let suite = vec![
//!     Measurement::new("hpl", Perf::gflops(90.0), Watts::new(2900.0), Seconds::new(1800.0)).unwrap(),
//!     Measurement::new("stream", Perf::mbps(80_000.0), Watts::new(2500.0), Seconds::new(300.0)).unwrap(),
//!     Measurement::new("iozone", Perf::mbps(95.0), Watts::new(2300.0), Seconds::new(600.0)).unwrap(),
//! ];
//!
//! let tgi = Tgi::builder()
//!     .reference(reference)
//!     .weighting(Weighting::Arithmetic)
//!     .measurements(suite)
//!     .compute()
//!     .unwrap();
//! assert!(tgi.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edp;
pub mod efficiency;
pub mod error;
pub mod evaluator;
pub mod means;
pub mod measurement;
pub mod ranking;
pub mod reference;
pub mod repeats;
pub mod sensitivity;
pub mod spec_rating;
pub mod stats;
pub mod tgi;
pub mod units;
pub mod vector;
pub mod weights;

pub use edp::{EnergyDelayProduct, EnergyDelaySquaredProduct};
pub use efficiency::{EfficiencyMetric, EnergyEfficiency, PerfPerWatt};
pub use error::TgiError;
pub use evaluator::{EvalScratch, TgiEvaluator};
pub use measurement::Measurement;
pub use ranking::{RankedSystem, Ranking};
pub use reference::{ReferenceSystem, ReferenceSystemBuilder};
pub use repeats::{MeasurementSet, TgiWithUncertainty};
pub use sensitivity::{FlipPoint, Robustness};
pub use tgi::{BenchmarkContribution, MeanKind, Tgi, TgiBuilder, TgiResult};
pub use units::{Joules, Perf, PerfUnit, Seconds, Watts};
pub use vector::{Dominance, EfficiencyVector};
pub use weights::{WeightSet, Weighting};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::edp::{EnergyDelayProduct, EnergyDelaySquaredProduct};
    pub use crate::efficiency::{EfficiencyMetric, EnergyEfficiency, PerfPerWatt};
    pub use crate::error::TgiError;
    pub use crate::evaluator::{EvalScratch, TgiEvaluator};
    pub use crate::means;
    pub use crate::measurement::Measurement;
    pub use crate::ranking::{RankedSystem, Ranking};
    pub use crate::reference::ReferenceSystem;
    pub use crate::stats;
    pub use crate::tgi::{MeanKind, Tgi, TgiResult};
    pub use crate::units::{Joules, Perf, PerfUnit, Seconds, Watts};
    pub use crate::vector::{Dominance, EfficiencyVector};
    pub use crate::weights::{WeightSet, Weighting};
}
