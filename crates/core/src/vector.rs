//! The vector view of energy efficiency.
//!
//! §II: "Despite arguments that energy efficiency can only be represented by
//! a vector which captures the effect of energy consumed by a benchmark
//! suite, we seek the holy grail of a single representative number."
//!
//! This module implements the vector side of that argument so the collapse
//! to TGI can be *checked* rather than assumed: an [`EfficiencyVector`]
//! holds one REE per benchmark and supports Pareto-dominance comparison.
//! When one system dominates another, every weighting of TGI agrees on
//! their order (proved as a property test in `tgi.rs`-adjacent tests here);
//! when neither dominates, the scalar ranking is weight-dependent — the
//! information the single number necessarily discards.

use crate::error::TgiError;
use crate::measurement::Measurement;
use crate::reference::ReferenceSystem;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How two efficiency vectors compare under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// Strictly better on at least one benchmark, no worse on any.
    Dominates,
    /// Strictly worse on at least one benchmark, no better on any.
    DominatedBy,
    /// Identical on every benchmark.
    Equal,
    /// Better on some benchmarks, worse on others: no scalar-free order.
    Incomparable,
}

/// A per-benchmark vector of relative energy efficiencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyVector {
    entries: BTreeMap<String, f64>,
}

impl EfficiencyVector {
    /// Builds the REE vector of a suite of measurements against a reference.
    pub fn from_suite(
        reference: &ReferenceSystem,
        suite: &[Measurement],
    ) -> Result<Self, TgiError> {
        if suite.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        let mut entries = BTreeMap::new();
        for m in suite {
            let ree = reference.ree(m)?;
            if entries.insert(m.id().to_string(), ree).is_some() {
                return Err(TgiError::DuplicateBenchmark(m.id().to_string()));
            }
        }
        Ok(EfficiencyVector { entries })
    }

    /// Builds a vector directly from `(benchmark, REE)` pairs.
    pub fn from_rees(pairs: impl IntoIterator<Item = (String, f64)>) -> Result<Self, TgiError> {
        let mut entries = BTreeMap::new();
        for (id, ree) in pairs {
            if !ree.is_finite() || ree <= 0.0 {
                return Err(TgiError::NonPositiveQuantity { quantity: "REE", value: ree });
            }
            if entries.insert(id.clone(), ree).is_some() {
                return Err(TgiError::DuplicateBenchmark(id));
            }
        }
        if entries.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        Ok(EfficiencyVector { entries })
    }

    /// The REE for one benchmark.
    pub fn get(&self, benchmark: &str) -> Option<f64> {
        self.entries.get(benchmark).copied()
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty (cannot occur via constructors).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(benchmark, REE)` in benchmark order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The benchmark with the least REE — the paper's expected bound on
    /// system-wide efficiency.
    pub fn least(&self) -> (&str, f64) {
        self.entries
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("REEs are finite"))
            .map(|(k, v)| (k.as_str(), *v))
            .expect("constructors forbid empty vectors")
    }

    /// Pareto-dominance comparison with another vector over the *same*
    /// benchmark set.
    pub fn dominance(&self, other: &EfficiencyVector) -> Result<Dominance, TgiError> {
        if self.entries.len() != other.entries.len() {
            return Err(TgiError::WeightCountMismatch {
                weights: other.entries.len(),
                benchmarks: self.entries.len(),
            });
        }
        let mut better = false;
        let mut worse = false;
        for (id, &ree) in &self.entries {
            let theirs = other
                .entries
                .get(id)
                .copied()
                .ok_or_else(|| TgiError::MissingReference(id.clone()))?;
            if ree > theirs {
                better = true;
            } else if ree < theirs {
                worse = true;
            }
        }
        Ok(match (better, worse) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Equal,
            (true, true) => Dominance::Incomparable,
        })
    }
}

impl fmt::Display for EfficiencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (id, ree)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}: {ree:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Perf, Seconds, Watts};
    use proptest::prelude::*;

    fn vector(rees: &[(&str, f64)]) -> EfficiencyVector {
        EfficiencyVector::from_rees(rees.iter().map(|(id, r)| (id.to_string(), *r))).expect("valid")
    }

    #[test]
    fn from_suite_matches_reference_ree() {
        let reference = ReferenceSystem::builder("ref")
            .benchmark(
                Measurement::new("hpl", Perf::gflops(10.0), Watts::new(1000.0), Seconds::new(60.0))
                    .expect("valid"),
            )
            .build()
            .expect("non-empty");
        let suite =
            vec![Measurement::new("hpl", Perf::gflops(5.0), Watts::new(250.0), Seconds::new(60.0))
                .expect("valid")];
        let v = EfficiencyVector::from_suite(&reference, &suite).expect("valid");
        // EE = 5e9/250 = 2e7; ref EE = 1e7 → REE = 2.
        assert!((v.get("hpl").expect("present") - 2.0).abs() < 1e-12);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn least_identifies_minimum() {
        let v = vector(&[("hpl", 0.1), ("stream", 2.0), ("iozone", 0.5)]);
        assert_eq!(v.least(), ("hpl", 0.1));
    }

    #[test]
    fn dominance_cases() {
        let base = vector(&[("a", 1.0), ("b", 1.0)]);
        assert_eq!(
            base.dominance(&vector(&[("a", 0.5), ("b", 0.9)])).expect("comparable"),
            Dominance::Dominates
        );
        assert_eq!(
            base.dominance(&vector(&[("a", 2.0), ("b", 1.5)])).expect("comparable"),
            Dominance::DominatedBy
        );
        assert_eq!(
            base.dominance(&vector(&[("a", 1.0), ("b", 1.0)])).expect("comparable"),
            Dominance::Equal
        );
        assert_eq!(
            base.dominance(&vector(&[("a", 2.0), ("b", 0.5)])).expect("comparable"),
            Dominance::Incomparable
        );
    }

    #[test]
    fn dominance_rejects_mismatched_sets() {
        let a = vector(&[("a", 1.0), ("b", 1.0)]);
        let b = vector(&[("a", 1.0)]);
        assert!(a.dominance(&b).is_err());
        let c = vector(&[("a", 1.0), ("c", 1.0)]);
        assert!(a.dominance(&c).is_err());
    }

    #[test]
    fn constructors_reject_bad_input() {
        assert!(EfficiencyVector::from_rees(std::iter::empty()).is_err());
        assert!(EfficiencyVector::from_rees([("a".to_string(), -1.0)]).is_err());
        assert!(EfficiencyVector::from_rees([("a".to_string(), f64::NAN)]).is_err());
        assert!(
            EfficiencyVector::from_rees([("a".to_string(), 1.0), ("a".to_string(), 2.0)]).is_err()
        );
    }

    #[test]
    fn display_lists_benchmarks() {
        let v = vector(&[("hpl", 0.5), ("stream", 2.0)]);
        let s = v.to_string();
        assert!(s.contains("hpl: 0.5000"));
        assert!(s.contains("stream: 2.0000"));
    }

    proptest! {
        /// When A dominates B, every valid weighting's TGI agrees:
        /// Σ w·A >= Σ w·B. This is the precise sense in which the scalar
        /// collapse is safe for dominated pairs (and only for them).
        #[test]
        fn prop_dominance_implies_scalar_agreement(
            a in proptest::collection::vec(0.1..10.0f64, 3),
            bump in proptest::collection::vec(0.0..5.0f64, 3),
            w in proptest::collection::vec(0.01..1.0f64, 3),
        ) {
            let ids = ["x", "y", "z"];
            let total: f64 = w.iter().sum();
            let weights: Vec<f64> = w.iter().map(|v| v / total).collect();
            let b: Vec<f64> = a.iter().zip(&bump).map(|(v, d)| v + d).collect();
            let va = vector(&[(ids[0], a[0]), (ids[1], a[1]), (ids[2], a[2])]);
            let vb = vector(&[(ids[0], b[0]), (ids[1], b[1]), (ids[2], b[2])]);
            let dom = vb.dominance(&va).expect("comparable");
            prop_assert!(matches!(dom, Dominance::Dominates | Dominance::Equal));
            let tgi_a: f64 = a.iter().zip(&weights).map(|(v, w)| v * w).sum();
            let tgi_b: f64 = b.iter().zip(&weights).map(|(v, w)| v * w).sum();
            prop_assert!(tgi_b >= tgi_a - 1e-12);
        }

        /// Dominance is antisymmetric: if A dominates B then B is dominated
        /// by A.
        #[test]
        fn prop_dominance_antisymmetric(
            a in proptest::collection::vec(0.1..10.0f64, 3),
            b in proptest::collection::vec(0.1..10.0f64, 3),
        ) {
            let ids = ["x", "y", "z"];
            let va = vector(&[(ids[0], a[0]), (ids[1], a[1]), (ids[2], a[2])]);
            let vb = vector(&[(ids[0], b[0]), (ids[1], b[1]), (ids[2], b[2])]);
            let ab = va.dominance(&vb).expect("comparable");
            let ba = vb.dominance(&va).expect("comparable");
            let expected = match ab {
                Dominance::Dominates => Dominance::DominatedBy,
                Dominance::DominatedBy => Dominance::Dominates,
                Dominance::Equal => Dominance::Equal,
                Dominance::Incomparable => Dominance::Incomparable,
            };
            prop_assert_eq!(ba, expected);
        }
    }
}
