//! Energy-delay-product (EDP) family of metrics.
//!
//! §II of the paper: the TGI methodology "can be used with any other
//! energy-efficient metric, such as the energy-delay product". Hsu et al.
//! (cited as \[11\]) analyzed EDP and FLOPS/W on several platforms.
//!
//! EDP = energy × delay; ED²P = energy × delay². Both are *smaller is
//! better*, so to satisfy the [`EfficiencyMetric`] contract (larger =
//! greener) we expose their reciprocals.

use crate::efficiency::EfficiencyMetric;
use crate::measurement::Measurement;
use serde::{Deserialize, Serialize};

/// Reciprocal energy-delay product: `1 / (E × t)`.
///
/// Weighs energy and runtime equally; a system that halves energy at the
/// cost of doubled runtime scores the same.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyDelayProduct;

impl EnergyDelayProduct {
    /// The raw (smaller-is-better) EDP in joule-seconds.
    pub fn raw(m: &Measurement) -> f64 {
        m.energy().value() * m.time().value()
    }
}

impl EfficiencyMetric for EnergyDelayProduct {
    fn name(&self) -> &'static str {
        "1/EDP"
    }

    fn evaluate(&self, m: &Measurement) -> f64 {
        1.0 / Self::raw(m)
    }
}

/// Reciprocal energy-delay-squared product: `1 / (E × t²)`.
///
/// Emphasizes performance more strongly than EDP; appropriate for
/// performance-first HPC procurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyDelaySquaredProduct;

impl EnergyDelaySquaredProduct {
    /// The raw (smaller-is-better) ED²P in joule-seconds².
    pub fn raw(m: &Measurement) -> f64 {
        m.energy().value() * m.time().value() * m.time().value()
    }
}

impl EfficiencyMetric for EnergyDelaySquaredProduct {
    fn name(&self) -> &'static str {
        "1/ED2P"
    }

    fn evaluate(&self, m: &Measurement) -> f64 {
        1.0 / Self::raw(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Perf, Seconds, Watts};

    fn m(watts: f64, secs: f64) -> Measurement {
        Measurement::new("b", Perf::gflops(1.0), Watts::new(watts), Seconds::new(secs)).unwrap()
    }

    #[test]
    fn edp_raw_is_energy_times_delay() {
        // 100 W × 10 s = 1000 J; EDP = 1000 J × 10 s = 10_000 J·s.
        assert!((EnergyDelayProduct::raw(&m(100.0, 10.0)) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn ed2p_raw_is_energy_times_delay_squared() {
        assert!((EnergyDelaySquaredProduct::raw(&m(100.0, 10.0)) - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocals_are_larger_is_better() {
        // Faster run (same power) must score higher on both metrics.
        let slow = m(100.0, 20.0);
        let fast = m(100.0, 10.0);
        assert!(EnergyDelayProduct.evaluate(&fast) > EnergyDelayProduct.evaluate(&slow));
        assert!(
            EnergyDelaySquaredProduct.evaluate(&fast) > EnergyDelaySquaredProduct.evaluate(&slow)
        );
    }

    #[test]
    fn ed2p_rewards_speed_more_than_edp() {
        // Halving time at double power: energy unchanged.
        // EDP improves 2x; ED2P improves 4x.
        let base = m(100.0, 20.0);
        let fast_hot = m(200.0, 10.0);
        let edp_gain = EnergyDelayProduct.evaluate(&fast_hot) / EnergyDelayProduct.evaluate(&base);
        let ed2p_gain = EnergyDelaySquaredProduct.evaluate(&fast_hot)
            / EnergyDelaySquaredProduct.evaluate(&base);
        assert!((edp_gain - 2.0).abs() < 1e-9);
        assert!((ed2p_gain - 4.0).abs() < 1e-9);
    }

    #[test]
    fn names_distinguish_metrics() {
        assert_ne!(
            EfficiencyMetric::name(&EnergyDelayProduct),
            EfficiencyMetric::name(&EnergyDelaySquaredProduct)
        );
    }
}
