//! A single benchmark observation: performance, power, time, energy.
//!
//! This is the record the TGI pipeline consumes. One `Measurement` per
//! benchmark per system configuration — e.g. "HPL on Fire with 64 processes".

use crate::error::TgiError;
use crate::units::{Joules, Perf, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One benchmark run's measured quantities.
///
/// Energy is `power × time` unless an independently integrated energy value
/// is supplied via [`Measurement::with_energy`] (a real power meter integrates
/// the sampled trace, which need not equal `avg_power × time` exactly when
/// samples are quantized).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    id: String,
    performance: Perf,
    power: Watts,
    time: Seconds,
    energy: Joules,
}

impl Measurement {
    /// Creates a measurement, deriving energy as `power × time`.
    ///
    /// `id` identifies the benchmark (e.g. `"hpl"`); it is the key used to
    /// match against the reference system.
    pub fn new(
        id: impl Into<String>,
        performance: Perf,
        power: Watts,
        time: Seconds,
    ) -> Result<Self, TgiError> {
        let power = Watts::try_new(power.value())?;
        let time = Seconds::try_new(time.value())?;
        let id = id.into();
        if id.is_empty() {
            return Err(TgiError::InvalidBenchmarkId(String::from("id is empty")));
        }
        let energy = power.over(time);
        Ok(Measurement { id, performance, power, time, energy })
    }

    /// Overrides the derived energy with an independently measured value
    /// (e.g. integrated from a sampled power trace).
    pub fn with_energy(mut self, energy: Joules) -> Result<Self, TgiError> {
        self.energy = Joules::try_new(energy.value())?;
        Ok(self)
    }

    /// Benchmark identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Measured performance.
    pub fn performance(&self) -> &Perf {
        &self.performance
    }

    /// Average power drawn during the run.
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Wall-clock execution time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Total energy consumed by the run.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Energy efficiency: performance-to-power ratio (Eq. 2),
    /// in canonical performance units per watt.
    pub fn energy_efficiency(&self) -> f64 {
        self.performance.value() / self.power.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(id: &str, gflops: f64, watts: f64, secs: f64) -> Measurement {
        Measurement::new(id, Perf::gflops(gflops), Watts::new(watts), Seconds::new(secs)).unwrap()
    }

    #[test]
    fn energy_is_power_times_time_by_default() {
        let meas = m("hpl", 90.0, 2000.0, 100.0);
        assert!((meas.energy().value() - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn with_energy_overrides() {
        let meas = m("hpl", 90.0, 2000.0, 100.0).with_energy(Joules::new(123_456.0)).unwrap();
        assert_eq!(meas.energy().value(), 123_456.0);
    }

    #[test]
    fn with_energy_rejects_non_positive() {
        assert!(m("hpl", 1.0, 1.0, 1.0).with_energy(Joules::new(0.0)).is_err());
    }

    #[test]
    fn energy_efficiency_matches_eq2() {
        let meas = m("hpl", 90.0, 2000.0, 100.0);
        // 90 GFLOPS / 2000 W = 45 MFLOPS/W = 4.5e7 FLOPS/W
        assert!((meas.energy_efficiency() - 4.5e7).abs() < 1.0);
    }

    #[test]
    fn rejects_bad_power_and_time() {
        assert!(
            Measurement::new("x", Perf::gflops(1.0), Watts::new(0.0), Seconds::new(1.0)).is_err()
        );
        assert!(
            Measurement::new("x", Perf::gflops(1.0), Watts::new(1.0), Seconds::new(-2.0)).is_err()
        );
    }

    #[test]
    fn rejects_empty_id() {
        // Regression: this used to be misreported as DuplicateBenchmark.
        let err = Measurement::new("", Perf::gflops(1.0), Watts::new(1.0), Seconds::new(1.0))
            .unwrap_err();
        assert!(matches!(err, TgiError::InvalidBenchmarkId(_)), "got {err:?}");
    }

    #[test]
    fn accessors_round_trip() {
        let meas = m("stream", 5.0, 300.0, 60.0);
        assert_eq!(meas.id(), "stream");
        assert_eq!(meas.power().value(), 300.0);
        assert_eq!(meas.time().value(), 60.0);
        assert_eq!(meas.performance().as_gflops(), 5.0);
    }

    proptest! {
        /// EE is always performance / power, and positive, for any valid inputs.
        #[test]
        fn prop_ee_positive(gf in 1e-3..1e6f64, w in 1e-3..1e7f64, t in 1e-3..1e6f64) {
            let meas = m("b", gf, w, t);
            let ee = meas.energy_efficiency();
            prop_assert!(ee > 0.0);
            prop_assert!((ee - gf * 1e9 / w).abs() <= 1e-6 * ee);
        }

        /// Derived energy equals power × time for any valid inputs.
        #[test]
        fn prop_energy_derivation(w in 1e-3..1e7f64, t in 1e-3..1e6f64) {
            let meas = m("b", 1.0, w, t);
            prop_assert!((meas.energy().value() - w * t).abs() <= 1e-9 * (w * t).max(1.0));
        }
    }
}
