//! Error type shared by all TGI computations.

use std::fmt;

/// Errors produced while constructing measurements or computing TGI.
#[derive(Debug, Clone, PartialEq)]
pub enum TgiError {
    /// A physical quantity (power, time, performance, energy) was not a
    /// strictly positive, finite number.
    NonPositiveQuantity {
        /// Which quantity was invalid (e.g. `"power"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A value was NaN or infinite where a finite number was required.
    NotFinite {
        /// Which quantity was invalid.
        quantity: &'static str,
    },
    /// The benchmark set was empty where at least one entry is required.
    EmptyBenchmarkSet,
    /// A benchmark id was empty or otherwise malformed.
    InvalidBenchmarkId(String),
    /// Two measurements in one suite share the same benchmark id.
    DuplicateBenchmark(String),
    /// The reference system has no entry for a benchmark in the suite.
    MissingReference(String),
    /// A custom weight vector did not match the number of benchmarks.
    WeightCountMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of benchmarks in the suite.
        benchmarks: usize,
    },
    /// Weights must be non-negative and sum to 1 (within tolerance).
    InvalidWeights {
        /// The actual sum of the supplied weights.
        sum: f64,
    },
    /// Two performance values with incompatible units were combined.
    UnitMismatch {
        /// Unit of the left operand.
        left: String,
        /// Unit of the right operand.
        right: String,
    },
    /// A statistic was requested over too few samples (e.g. correlation of
    /// one point) or over a degenerate sample (zero variance).
    DegenerateStatistic(&'static str),
    /// The TGI builder was finalized without a reference system.
    MissingReferenceSystem,
    /// A power trace was empty where at least one sample is required
    /// (percentiles, idle estimation, phase segmentation).
    EmptyTrace,
    /// A parameter fell outside its valid range (e.g. a percentile rank
    /// outside `[0, 100]`).
    OutOfRange {
        /// Which parameter was invalid (e.g. `"percentile"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound of the valid range.
        lo: f64,
        /// Inclusive upper bound of the valid range.
        hi: f64,
    },
}

impl fmt::Display for TgiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgiError::NonPositiveQuantity { quantity, value } => {
                write!(f, "{quantity} must be strictly positive, got {value}")
            }
            TgiError::NotFinite { quantity } => {
                write!(f, "{quantity} must be a finite number")
            }
            TgiError::EmptyBenchmarkSet => write!(f, "benchmark set is empty"),
            TgiError::InvalidBenchmarkId(detail) => {
                write!(f, "invalid benchmark id: {detail}")
            }
            TgiError::DuplicateBenchmark(id) => {
                write!(f, "duplicate benchmark id `{id}` in suite")
            }
            TgiError::MissingReference(id) => {
                write!(f, "reference system has no measurement for benchmark `{id}`")
            }
            TgiError::WeightCountMismatch { weights, benchmarks } => {
                write!(f, "got {weights} weights for {benchmarks} benchmarks; counts must match")
            }
            TgiError::InvalidWeights { sum } => {
                write!(f, "weights must be non-negative and sum to 1, got sum {sum}")
            }
            TgiError::UnitMismatch { left, right } => {
                write!(f, "incompatible performance units: `{left}` vs `{right}`")
            }
            TgiError::DegenerateStatistic(what) => {
                write!(f, "degenerate statistic: {what}")
            }
            TgiError::MissingReferenceSystem => {
                write!(f, "TGI computation requires a reference system")
            }
            TgiError::EmptyTrace => write!(f, "power trace is empty"),
            TgiError::OutOfRange { quantity, value, lo, hi } => {
                write!(f, "{quantity} {value} out of range [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for TgiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TgiError, &str)> = vec![
            (TgiError::NonPositiveQuantity { quantity: "power", value: -1.0 }, "power"),
            (TgiError::NotFinite { quantity: "time" }, "time"),
            (TgiError::EmptyBenchmarkSet, "empty"),
            (TgiError::InvalidBenchmarkId("id is empty".into()), "id is empty"),
            (TgiError::DuplicateBenchmark("hpl".into()), "hpl"),
            (TgiError::MissingReference("stream".into()), "stream"),
            (TgiError::WeightCountMismatch { weights: 2, benchmarks: 3 }, "2 weights"),
            (TgiError::InvalidWeights { sum: 0.5 }, "0.5"),
            (TgiError::UnitMismatch { left: "GFLOPS".into(), right: "MB/s".into() }, "GFLOPS"),
            (TgiError::DegenerateStatistic("zero variance"), "zero variance"),
            (TgiError::MissingReferenceSystem, "reference"),
            (TgiError::EmptyTrace, "empty"),
            (
                TgiError::OutOfRange { quantity: "percentile", value: 150.0, lo: 0.0, hi: 100.0 },
                "out of range",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{msg}` should contain `{needle}`");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TgiError::EmptyBenchmarkSet);
    }
}
