//! Weight-sensitivity analysis of TGI comparisons.
//!
//! The paper makes weights a first-class feature (§II advantage 1, §III's
//! weight study) — which raises the procurement question: *how robust is a
//! ranking to the choice of weights?* This module answers it exactly for
//! the tilt family
//!
//! ```text
//! W(ε, i) = (1−ε)·W_base + ε·e_i        (all weight moved toward benchmark i)
//! ```
//!
//! Because TGI is linear in the weights, `TGI(ε) = (1−ε)·TGI_base +
//! ε·REE_i`, and the exact flip point between two systems has a closed
//! form. If no tilt toward any single benchmark flips the comparison, the
//! leader wins under *every* weighting reachable by single-benchmark tilts
//! of the base — in particular, Pareto dominance implies no flip exists.

use crate::error::TgiError;
use crate::tgi::TgiResult;
use serde::{Deserialize, Serialize};

/// The gradient of TGI with respect to the weights: `∂TGI/∂W_i = REE_i`,
/// keyed by benchmark. (Linear metric — the gradient *is* the REE vector.)
///
/// Benchmark names are borrowed from the result — no per-call `String`
/// clones, so this is cheap enough to call inside sweep loops.
pub fn weight_gradient(result: &TgiResult) -> Vec<(&str, f64)> {
    result.contributions().iter().map(|c| (c.benchmark.as_str(), c.ree)).collect()
}

/// The smallest single-benchmark tilt that flips a comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipPoint {
    /// The benchmark the weight must be tilted toward.
    pub benchmark: String,
    /// The tilt fraction `ε ∈ (0, 1]` at which the two systems tie.
    pub epsilon: f64,
}

/// Outcome of a robustness comparison between two TGI results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Robustness {
    /// Which system leads under the base weights (`a` or `b` by name).
    pub leader: String,
    /// The base-weight TGI gap (leader minus trailer, positive).
    pub gap: f64,
    /// The cheapest flip, if any single-benchmark tilt can flip the order.
    pub flip: Option<FlipPoint>,
}

/// Analyses how robust the comparison between two systems is to weight
/// tilts. `name_a`/`name_b` label the results in the report.
///
/// Both results must come from the same benchmark suite (same ids in the
/// same order) and the same base weighting.
pub fn compare(
    name_a: &str,
    a: &TgiResult,
    name_b: &str,
    b: &TgiResult,
) -> Result<Robustness, TgiError> {
    let ca = a.contributions();
    let cb = b.contributions();
    if ca.len() != cb.len() {
        return Err(TgiError::WeightCountMismatch { weights: cb.len(), benchmarks: ca.len() });
    }
    for (x, y) in ca.iter().zip(cb) {
        if x.benchmark != y.benchmark {
            return Err(TgiError::MissingReference(y.benchmark.clone()));
        }
        if (x.weight - y.weight).abs() > 1e-9 {
            return Err(TgiError::InvalidWeights { sum: x.weight - y.weight });
        }
    }

    // Orient so `lead` is the base-weight winner.
    let delta = a.value() - b.value();
    if delta == 0.0 {
        return Err(TgiError::DegenerateStatistic("systems tie under base weights"));
    }
    let (leader, gap, sign) =
        if delta > 0.0 { (name_a, delta, 1.0) } else { (name_b, -delta, -1.0) };

    // TGI_lead(ε,i) − TGI_trail(ε,i) = (1−ε)·gap + ε·sign·(REE_a,i − REE_b,i).
    // Flip at ε* = gap / (gap − d_i) where d_i = sign·(REE_a,i − REE_b,i),
    // valid when d_i < 0 and ε* ≤ 1.
    let mut best: Option<FlipPoint> = None;
    for (x, y) in ca.iter().zip(cb) {
        let d = sign * (x.ree - y.ree);
        if d >= 0.0 {
            continue; // tilting toward this benchmark helps the leader
        }
        let eps = gap / (gap - d);
        if eps <= 1.0 + 1e-12 {
            let candidate = FlipPoint { benchmark: x.benchmark.clone(), epsilon: eps.min(1.0) };
            if best.as_ref().is_none_or(|b| candidate.epsilon < b.epsilon) {
                best = Some(candidate);
            }
        }
    }

    Ok(Robustness { leader: leader.to_string(), gap, flip: best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use crate::reference::ReferenceSystem;
    use crate::tgi::Tgi;
    use crate::units::{Perf, Seconds, Watts};
    use crate::weights::Weighting;

    fn reference() -> ReferenceSystem {
        let mut b = ReferenceSystem::builder("ref");
        for id in ["cpu", "mem", "io"] {
            b = b.benchmark(
                Measurement::new(id, Perf::gflops(10.0), Watts::new(1000.0), Seconds::new(60.0))
                    .expect("valid"),
            );
        }
        b.build().expect("non-empty")
    }

    /// Builds a TGI result with the given per-benchmark performance values
    /// (REE = perf/10 at fixed 1000 W).
    fn result(perfs: [f64; 3]) -> TgiResult {
        let suite: Vec<Measurement> = ["cpu", "mem", "io"]
            .iter()
            .zip(perfs)
            .map(|(id, p)| {
                Measurement::new(*id, Perf::gflops(p), Watts::new(1000.0), Seconds::new(60.0))
                    .expect("valid")
            })
            .collect();
        Tgi::builder()
            .reference(reference())
            .weighting(Weighting::Arithmetic)
            .measurements(suite)
            .compute()
            .expect("valid")
    }

    #[test]
    fn gradient_is_the_ree_vector() {
        let r = result([20.0, 10.0, 5.0]);
        let g = weight_gradient(&r);
        assert_eq!(g.len(), 3);
        // Names are borrowed from the result, in suite order.
        assert_eq!(g.iter().map(|(b, _)| *b).collect::<Vec<_>>(), vec!["cpu", "mem", "io"]);
        assert!((g[0].1 - 2.0).abs() < 1e-12);
        assert!((g[1].1 - 1.0).abs() < 1e-12);
        assert!((g[2].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dominated_system_has_no_flip() {
        // A beats B on every benchmark: no tilt can save B.
        let a = result([20.0, 15.0, 12.0]);
        let b = result([18.0, 14.0, 10.0]);
        let rob = compare("A", &a, "B", &b).expect("comparable");
        assert_eq!(rob.leader, "A");
        assert!(rob.gap > 0.0);
        assert!(rob.flip.is_none(), "{:?}", rob.flip);
    }

    #[test]
    fn incomparable_pair_has_flip_on_the_right_benchmark() {
        // A leads overall, but B is better on io: only io can flip it.
        let a = result([30.0, 20.0, 5.0]);
        let b = result([10.0, 10.0, 20.0]);
        let rob = compare("A", &a, "B", &b).expect("comparable");
        assert_eq!(rob.leader, "A");
        let flip = rob.flip.expect("io tilt must flip");
        assert_eq!(flip.benchmark, "io");
        assert!(flip.epsilon > 0.0 && flip.epsilon <= 1.0);

        // Verify the closed form: at ε*, the tilted TGIs tie.
        let eps = flip.epsilon;
        let tilt = |r: &TgiResult, bench: &str| {
            let base = r.value();
            let ree = r.contribution(bench).expect("present").ree;
            (1.0 - eps) * base + eps * ree
        };
        let ta = tilt(&a, "io");
        let tb = tilt(&b, "io");
        assert!((ta - tb).abs() < 1e-9, "{ta} vs {tb}");
    }

    #[test]
    fn orientation_follows_the_actual_leader() {
        let a = result([5.0, 5.0, 5.0]);
        let b = result([10.0, 10.0, 2.0]);
        let rob = compare("A", &a, "B", &b).expect("comparable");
        assert_eq!(rob.leader, "B");
        // A is better only on io; a flip toward io must exist.
        assert_eq!(rob.flip.expect("flip exists").benchmark, "io");
    }

    #[test]
    fn tie_is_degenerate() {
        let a = result([10.0, 10.0, 10.0]);
        let b = result([10.0, 10.0, 10.0]);
        assert!(matches!(compare("A", &a, "B", &b), Err(TgiError::DegenerateStatistic(_))));
    }

    #[test]
    fn mismatched_suites_rejected() {
        let a = result([10.0, 10.0, 10.0]);
        // Build a result with different ids.
        let reference = ReferenceSystem::builder("r2")
            .benchmark(
                Measurement::new("other", Perf::gflops(1.0), Watts::new(1.0), Seconds::new(1.0))
                    .expect("valid"),
            )
            .build()
            .expect("non-empty");
        let b = Tgi::builder()
            .reference(reference)
            .measurement(
                Measurement::new("other", Perf::gflops(2.0), Watts::new(1.0), Seconds::new(1.0))
                    .expect("valid"),
            )
            .compute()
            .expect("valid");
        assert!(compare("A", &a, "B", &b).is_err());
    }

    #[test]
    fn small_gap_flips_cheaply_large_gap_expensively() {
        // Same trailer, same flip benchmark (io), growing lead for A.
        let b = result([10.0, 10.0, 8.0]);
        let close = compare("A", &result([12.0, 12.0, 5.0]), "B", &b).expect("comparable");
        let far = compare("A", &result([20.0, 20.0, 5.0]), "B", &b).expect("comparable");
        assert_eq!(close.leader, "A");
        assert_eq!(far.leader, "A");
        let (ec, ef) =
            (close.flip.expect("flip exists").epsilon, far.flip.expect("flip exists").epsilon);
        assert!(ec < ef, "closer race must flip at a smaller tilt: {ec} vs {ef}");
    }
}
