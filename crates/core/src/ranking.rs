//! Green500-style ranking of systems by TGI.
//!
//! The motivation for a single-number metric (§I) is *rankability*: the
//! TOP500/Green500 lists order systems by one number. [`Ranking`] holds a set
//! of scored systems and produces a stable, descending order (greener first),
//! breaking ties by name so the order is deterministic.

use crate::error::TgiError;
use crate::tgi::TgiResult;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One system's entry in a ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSystem {
    /// Display name of the system.
    pub name: String,
    /// The system's Green Index.
    pub tgi: f64,
    /// Optional per-benchmark decomposition retained for reports.
    pub detail: Option<TgiResult>,
}

/// A collection of systems ordered by TGI (descending).
///
/// ```
/// use tgi_core::Ranking;
/// let mut list = Ranking::new();
/// list.add("fire", 0.4);
/// list.add("ember", 1.2);
/// assert_eq!(list.rank_of("ember"), Some(1));
/// assert_eq!(list.greenest().unwrap().name, "ember");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ranking {
    entries: Vec<RankedSystem>,
}

impl Ranking {
    /// Creates an empty ranking.
    pub fn new() -> Self {
        Ranking::default()
    }

    /// Adds a system by name and raw TGI value.
    ///
    /// # Panics
    /// Panics on a non-finite score; use [`Ranking::try_add`] to reject it
    /// as an error instead.
    pub fn add(&mut self, name: impl Into<String>, tgi: f64) {
        self.try_add(name, tgi).expect("TGI values are finite");
    }

    /// Adds a system by name and raw TGI value, rejecting non-finite
    /// scores: NaN has no place in a total order, and a ±∞ "score" always
    /// indicates an upstream division gone wrong, not a green machine.
    pub fn try_add(&mut self, name: impl Into<String>, tgi: f64) -> Result<(), TgiError> {
        if !tgi.is_finite() {
            return Err(TgiError::NotFinite { quantity: "ranking score" });
        }
        self.entries.push(RankedSystem { name: name.into(), tgi, detail: None });
        self.sort();
        Ok(())
    }

    /// Adds a system with its full TGI decomposition.
    ///
    /// # Panics
    /// Panics on a non-finite score, like [`Ranking::add`].
    pub fn add_result(&mut self, name: impl Into<String>, result: TgiResult) {
        self.try_add_result(name, result).expect("TGI values are finite");
    }

    /// Adds a system with its full TGI decomposition, rejecting non-finite
    /// scores as [`Ranking::try_add`] does.
    pub fn try_add_result(
        &mut self,
        name: impl Into<String>,
        result: TgiResult,
    ) -> Result<(), TgiError> {
        if !result.value().is_finite() {
            return Err(TgiError::NotFinite { quantity: "ranking score" });
        }
        self.entries.push(RankedSystem {
            name: name.into(),
            tgi: result.value(),
            detail: Some(result),
        });
        self.sort();
        Ok(())
    }

    fn sort(&mut self) {
        self.entries.sort_by(|a, b| {
            b.tgi
                .partial_cmp(&a.tgi)
                .expect("TGI values are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
    }

    /// The ranked entries, greenest first.
    pub fn entries(&self) -> &[RankedSystem] {
        &self.entries
    }

    /// Number of ranked systems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// 1-based rank of a system by name.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name).map(|i| i + 1)
    }

    /// The top-ranked (greenest) system.
    pub fn greenest(&self) -> Option<&RankedSystem> {
        self.entries.first()
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>4}  {:<24} {:>10}", "Rank", "System", "TGI")?;
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{:>4}  {:<24} {:>10.4}", i + 1, e.name, e.tgi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        r.add("ember", 1.2);
        r.add("ash", 0.9);
        assert_eq!(r.rank_of("ember"), Some(1));
        assert_eq!(r.rank_of("ash"), Some(2));
        assert_eq!(r.rank_of("fire"), Some(3));
        assert_eq!(r.greenest().unwrap().name, "ember");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ties_break_by_name() {
        let mut r = Ranking::new();
        r.add("zeta", 1.0);
        r.add("alpha", 1.0);
        assert_eq!(r.rank_of("alpha"), Some(1));
        assert_eq!(r.rank_of("zeta"), Some(2));
    }

    #[test]
    fn unknown_system_has_no_rank() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        assert_eq!(r.rank_of("unknown"), None);
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::new();
        assert!(r.is_empty());
        assert!(r.greenest().is_none());
    }

    #[test]
    fn display_contains_all_entries() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        r.add("ember", 1.2);
        let out = r.to_string();
        assert!(out.contains("fire"));
        assert!(out.contains("ember"));
        assert!(out.contains("Rank"));
    }

    #[test]
    fn duplicate_tgi_values_rank_in_stable_name_order() {
        // A synthetic fleet can produce exact TGI collisions; the order
        // must be deterministic (by id) no matter the insertion order.
        let mut fwd = Ranking::new();
        let mut rev = Ranking::new();
        let systems = ["g500-003", "g500-001", "g500-002"];
        for name in systems {
            fwd.add(name, 0.75);
        }
        for name in systems.iter().rev() {
            rev.add(*name, 0.75);
        }
        let order: Vec<&str> = fwd.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, vec!["g500-001", "g500-002", "g500-003"]);
        assert_eq!(fwd, rev, "insertion order must not matter");
        // Duplicates interleaved with distinct values keep descending TGI
        // as the primary key.
        fwd.add("g500-000", 0.9);
        assert_eq!(fwd.rank_of("g500-000"), Some(1));
        assert_eq!(fwd.rank_of("g500-001"), Some(2));
    }

    #[test]
    fn single_system_fleet_ranks_itself() {
        let mut r = Ranking::new();
        r.add("only", 0.42);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rank_of("only"), Some(1));
        assert_eq!(r.greenest().unwrap().name, "only");
        assert_eq!(r.greenest().unwrap().tgi, 0.42);
    }

    #[test]
    fn non_finite_scores_are_rejected() {
        let mut r = Ranking::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = r.try_add("broken", bad).unwrap_err();
            assert!(matches!(err, TgiError::NotFinite { quantity: "ranking score" }));
        }
        assert!(r.is_empty(), "rejected scores must not be inserted");
        r.try_add("fine", 1.0).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "TGI values are finite")]
    fn add_panics_on_nan() {
        Ranking::new().add("broken", f64::NAN);
    }

    #[test]
    fn insertion_keeps_order_incrementally() {
        let mut r = Ranking::new();
        for (name, v) in [("a", 0.1), ("b", 0.5), ("c", 0.3), ("d", 0.9)] {
            r.add(name, v);
            // After every insertion, order is non-increasing.
            let tgis: Vec<f64> = r.entries().iter().map(|e| e.tgi).collect();
            assert!(tgis.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
