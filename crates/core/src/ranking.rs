//! Green500-style ranking of systems by TGI.
//!
//! The motivation for a single-number metric (§I) is *rankability*: the
//! TOP500/Green500 lists order systems by one number. [`Ranking`] holds a set
//! of scored systems and produces a stable, descending order (greener first),
//! breaking ties by name so the order is deterministic.

use crate::tgi::TgiResult;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One system's entry in a ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSystem {
    /// Display name of the system.
    pub name: String,
    /// The system's Green Index.
    pub tgi: f64,
    /// Optional per-benchmark decomposition retained for reports.
    pub detail: Option<TgiResult>,
}

/// A collection of systems ordered by TGI (descending).
///
/// ```
/// use tgi_core::Ranking;
/// let mut list = Ranking::new();
/// list.add("fire", 0.4);
/// list.add("ember", 1.2);
/// assert_eq!(list.rank_of("ember"), Some(1));
/// assert_eq!(list.greenest().unwrap().name, "ember");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ranking {
    entries: Vec<RankedSystem>,
}

impl Ranking {
    /// Creates an empty ranking.
    pub fn new() -> Self {
        Ranking::default()
    }

    /// Adds a system by name and raw TGI value.
    pub fn add(&mut self, name: impl Into<String>, tgi: f64) {
        self.entries.push(RankedSystem { name: name.into(), tgi, detail: None });
        self.sort();
    }

    /// Adds a system with its full TGI decomposition.
    pub fn add_result(&mut self, name: impl Into<String>, result: TgiResult) {
        self.entries.push(RankedSystem {
            name: name.into(),
            tgi: result.value(),
            detail: Some(result),
        });
        self.sort();
    }

    fn sort(&mut self) {
        self.entries.sort_by(|a, b| {
            b.tgi
                .partial_cmp(&a.tgi)
                .expect("TGI values are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
    }

    /// The ranked entries, greenest first.
    pub fn entries(&self) -> &[RankedSystem] {
        &self.entries
    }

    /// Number of ranked systems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// 1-based rank of a system by name.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name).map(|i| i + 1)
    }

    /// The top-ranked (greenest) system.
    pub fn greenest(&self) -> Option<&RankedSystem> {
        self.entries.first()
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>4}  {:<24} {:>10}", "Rank", "System", "TGI")?;
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(f, "{:>4}  {:<24} {:>10.4}", i + 1, e.name, e.tgi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        r.add("ember", 1.2);
        r.add("ash", 0.9);
        assert_eq!(r.rank_of("ember"), Some(1));
        assert_eq!(r.rank_of("ash"), Some(2));
        assert_eq!(r.rank_of("fire"), Some(3));
        assert_eq!(r.greenest().unwrap().name, "ember");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ties_break_by_name() {
        let mut r = Ranking::new();
        r.add("zeta", 1.0);
        r.add("alpha", 1.0);
        assert_eq!(r.rank_of("alpha"), Some(1));
        assert_eq!(r.rank_of("zeta"), Some(2));
    }

    #[test]
    fn unknown_system_has_no_rank() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        assert_eq!(r.rank_of("unknown"), None);
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::new();
        assert!(r.is_empty());
        assert!(r.greenest().is_none());
    }

    #[test]
    fn display_contains_all_entries() {
        let mut r = Ranking::new();
        r.add("fire", 0.4);
        r.add("ember", 1.2);
        let out = r.to_string();
        assert!(out.contains("fire"));
        assert!(out.contains("ember"));
        assert!(out.contains("Rank"));
    }

    #[test]
    fn insertion_keeps_order_incrementally() {
        let mut r = Ranking::new();
        for (name, v) in [("a", 0.1), ("b", 0.5), ("c", 0.3), ("d", 0.9)] {
            r.add(name, v);
            // After every insertion, order is non-increasing.
            let tgis: Vec<f64> = r.entries().iter().map(|e| e.tgi).collect();
            assert!(tgis.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
