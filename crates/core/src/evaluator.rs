//! Reusable, allocation-free batch TGI evaluation.
//!
//! [`crate::tgi::Tgi::builder`] is the ergonomic entry point, but it pays a
//! heavy per-call toll: it owns a clone of the [`ReferenceSystem`], the
//! [`Weighting`], and the full measurement vector, and re-derives the
//! reference efficiencies on every `compute()`. Sweeps and grid studies —
//! thousands to millions of TGI evaluations against *one* reference — need
//! a path where everything that depends only on the reference is computed
//! once.
//!
//! [`TgiEvaluator`] is that path. Constructed once from `&ReferenceSystem`,
//! it precomputes
//!
//! * the benchmark-id → index map (the reference's ids, sorted, resolved by
//!   binary search — no hashing, no per-call `String` keys), and
//! * the reference energy-efficiency vector `EE_i(ref)` under the
//!   configured [`EfficiencyMetric`].
//!
//! [`TgiEvaluator::evaluate_into`] then scores a `&[Measurement]` slice
//! using caller-provided [`EvalScratch`] buffers: once the scratch is warm
//! (capacity ≥ suite length), the happy path performs **zero heap
//! allocations** (proven by `tests/zero_alloc.rs`). Error paths may
//! allocate (error variants carry `String`s).
//!
//! ## Bit-identity with the builder
//!
//! The evaluator replays the builder's exact floating-point operations in
//! the exact same order — weight normalization via
//! [`Weighting::weights_into`] (the single source of the weight math),
//! `REE_i = EE_i / EE_i(ref)` per measurement in suite order, and the same
//! mean combinators — so its values are *bit-identical* to
//! `Tgi::builder().….compute()`. The builder itself is a thin wrapper over
//! this type, and `tests/evaluator_oracle.rs` holds the property oracle.

use crate::efficiency::{EfficiencyMetric, PerfPerWatt};
use crate::error::TgiError;
use crate::measurement::Measurement;
use crate::reference::ReferenceSystem;
use crate::tgi::{BenchmarkContribution, MeanKind, TgiResult};
use crate::weights::Weighting;

/// Sentinel index for a measurement whose id has no reference entry. The
/// error is deferred to the REE pass so that error precedence matches the
/// builder (duplicate and weight errors are reported first).
const UNRESOLVED: usize = usize::MAX;

/// Caller-owned scratch buffers for [`TgiEvaluator`].
///
/// All buffers are cleared and refilled per evaluation but keep their
/// capacity, so a scratch reused across a batch stops allocating after the
/// largest suite has been seen once. A fresh `EvalScratch::default()` works
/// for any suite; sharing one across threads is prevented by `&mut`.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Per-measurement index into the evaluator's reference vectors
    /// (`UNRESOLVED` for ids the reference does not know).
    indices: Vec<usize>,
    /// Duplicate-detection bitmap over the reference's benchmark ids.
    seen: Vec<bool>,
    /// Normalized weights, in suite order.
    weights: Vec<f64>,
    /// `REE_i = EE_i / EE_i(ref)`, in suite order.
    rees: Vec<f64>,
}

impl EvalScratch {
    /// A scratch pre-sized for suites of up to `n` benchmarks (avoids even
    /// the warm-up allocations of the first evaluation).
    pub fn with_capacity(n: usize) -> Self {
        EvalScratch {
            indices: Vec::with_capacity(n),
            seen: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            rees: Vec::with_capacity(n),
        }
    }

    /// The REE vector of the last successful evaluation, in suite order.
    pub fn rees(&self) -> &[f64] {
        &self.rees
    }

    /// The weight vector of the last successful evaluation, in suite order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// A reusable TGI evaluator bound to one reference system.
///
/// See the [module docs](self) for the design; in short: construct once,
/// evaluate many suites against it with zero per-call heap allocation, and
/// get values bit-identical to [`crate::tgi::Tgi::builder`].
///
/// ```
/// use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
/// use tgi_core::prelude::*;
///
/// let reference = ReferenceSystem::builder("SystemG")
///     .benchmark(Measurement::new("hpl", Perf::tflops(8.1), Watts::new(26_000.0), Seconds::new(7200.0)).unwrap())
///     .build()
///     .unwrap();
/// let suite = vec![
///     Measurement::new("hpl", Perf::gflops(90.0), Watts::new(2900.0), Seconds::new(1800.0)).unwrap(),
/// ];
///
/// let evaluator = TgiEvaluator::new(&reference);
/// let mut scratch = EvalScratch::default();
/// let tgi = evaluator
///     .evaluate_into(&suite, &Weighting::Arithmetic, MeanKind::Arithmetic, &mut scratch)
///     .unwrap();
/// assert!(tgi > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TgiEvaluator<'r, M: EfficiencyMetric = PerfPerWatt> {
    reference: &'r ReferenceSystem,
    metric: M,
    /// Reference benchmark ids, sorted (the `BTreeMap` iteration order),
    /// so id → index resolution is a binary search over `&str`s.
    ids: Vec<&'r str>,
    /// Reference measurements, parallel to `ids` (for the unit check).
    ref_meas: Vec<&'r Measurement>,
    /// `EE_i(ref)` under `metric`, parallel to `ids`.
    ref_ees: Vec<f64>,
}

impl<'r> TgiEvaluator<'r, PerfPerWatt> {
    /// Builds an evaluator with the paper's default perf/W metric (Eq. 2).
    pub fn new(reference: &'r ReferenceSystem) -> Self {
        Self::with_metric(reference, PerfPerWatt)
    }
}

impl<'r, M: EfficiencyMetric> TgiEvaluator<'r, M> {
    /// Builds an evaluator with a custom [`EfficiencyMetric`], precomputing
    /// the id → index map and the reference efficiency vector.
    pub fn with_metric(reference: &'r ReferenceSystem, metric: M) -> Self {
        let n = reference.len();
        let mut ids = Vec::with_capacity(n);
        let mut ref_meas = Vec::with_capacity(n);
        let mut ref_ees = Vec::with_capacity(n);
        for (id, m) in reference.iter() {
            ids.push(id);
            ref_meas.push(m);
            ref_ees.push(metric.evaluate(m));
        }
        TgiEvaluator { reference, metric, ids, ref_meas, ref_ees }
    }

    /// The reference system this evaluator is bound to.
    pub fn reference(&self) -> &'r ReferenceSystem {
        self.reference
    }

    /// Number of benchmarks the reference provides.
    pub fn benchmark_count(&self) -> usize {
        self.ids.len()
    }

    /// The precomputed reference efficiency for a benchmark id, if present.
    pub fn reference_efficiency(&self, benchmark: &str) -> Option<f64> {
        self.ids.binary_search(&benchmark).ok().map(|i| self.ref_ees[i])
    }

    /// Computes TGI for one suite into caller-provided scratch, returning
    /// only the value. Allocation-free once `scratch` is warm.
    ///
    /// Values and error variants match
    /// `Tgi::builder().reference(…).weighting(…).mean(…).measurements(…).compute()`
    /// exactly (values to the last bit).
    pub fn evaluate_into(
        &self,
        measurements: &[Measurement],
        weighting: &Weighting,
        mean: MeanKind,
        scratch: &mut EvalScratch,
    ) -> Result<f64, TgiError> {
        // Phase order mirrors the builder's error precedence: empty set,
        // duplicates, weight validation, then per-measurement reference
        // resolution in suite order.
        self.resolve(measurements, scratch)?;
        weighting.weights_into(measurements, &mut scratch.weights)?;
        self.rees_into(measurements, scratch)?;
        combine(&scratch.rees, &scratch.weights, mean)
    }

    /// Convenience wrapper over [`TgiEvaluator::evaluate_into`] with a
    /// throwaway scratch (one-off callers; batch callers should reuse one).
    pub fn evaluate(
        &self,
        measurements: &[Measurement],
        weighting: &Weighting,
        mean: MeanKind,
    ) -> Result<f64, TgiError> {
        self.evaluate_into(measurements, weighting, mean, &mut EvalScratch::default())
    }

    /// Evaluates every (weighting × mean) cell for one suite, resolving the
    /// reference and computing the REE vector once and reusing them across
    /// all cells. `out` is cleared, then filled weighting-major:
    /// `out[w * means.len() + m]`.
    ///
    /// Each cell's value is bit-identical to the corresponding builder
    /// computation. (Error *precedence* differs from the single-cell path
    /// in one corner: a missing reference entry is reported before a bad
    /// weighting here, because the REE pass is shared across cells.)
    pub fn evaluate_cells_into(
        &self,
        measurements: &[Measurement],
        weightings: &[Weighting],
        means: &[MeanKind],
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), TgiError> {
        // Gated so the disabled path stays allocation-free (this is the
        // batch hot loop the zero-allocation tests cover).
        let batch_span = if tgi_telemetry::enabled() {
            tgi_telemetry::counter!("tgi_eval_batches_total").inc();
            tgi_telemetry::counter!("tgi_eval_cells_total")
                .add((weightings.len() * means.len()) as u64);
            Some(
                tgi_telemetry::span_cat("eval.cells", "core")
                    .field("measurements", measurements.len())
                    .field("cells", weightings.len() * means.len()),
            )
        } else {
            None
        };
        out.clear();
        self.resolve(measurements, scratch)?;
        self.rees_into(measurements, scratch)?;
        for weighting in weightings {
            weighting.weights_into(measurements, &mut scratch.weights)?;
            for &mean in means {
                out.push(combine(&scratch.rees, &scratch.weights, mean)?);
            }
        }
        drop(batch_span);
        Ok(())
    }

    /// Computes TGI with the full per-benchmark decomposition, reusing
    /// caller scratch for the numeric phases. Building the
    /// [`TgiResult`] allocates (it owns its benchmark-name `String`s) —
    /// use [`TgiEvaluator::evaluate_into`] when only the value is needed.
    pub fn evaluate_result_with(
        &self,
        measurements: &[Measurement],
        weighting: &Weighting,
        mean: MeanKind,
        scratch: &mut EvalScratch,
    ) -> Result<TgiResult, TgiError> {
        let value = self.evaluate_into(measurements, weighting, mean, scratch)?;
        let contributions = measurements
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ree = scratch.rees[i];
                let weight = scratch.weights[i];
                BenchmarkContribution {
                    benchmark: m.id().to_string(),
                    energy_efficiency: self.metric.evaluate(m),
                    reference_efficiency: self.ref_ees[scratch.indices[i]],
                    ree,
                    weight,
                    contribution: weight * ree,
                }
            })
            .collect();
        Ok(TgiResult::from_parts(
            value,
            weighting.clone(),
            mean,
            self.reference.name().to_string(),
            contributions,
        ))
    }

    /// [`TgiEvaluator::evaluate_result_with`] with a throwaway scratch.
    pub fn evaluate_result(
        &self,
        measurements: &[Measurement],
        weighting: &Weighting,
        mean: MeanKind,
    ) -> Result<TgiResult, TgiError> {
        self.evaluate_result_with(measurements, weighting, mean, &mut EvalScratch::default())
    }

    /// Resolves each measurement's reference index into `scratch.indices`
    /// and rejects empty and duplicate-id suites — the builder's first two
    /// checks. Ids the reference knows are deduplicated via the `seen`
    /// bitmap; unknown ids (which cannot use the bitmap) fall back to a
    /// linear scan of the already-seen prefix so `["fft", "fft"]` is still
    /// a duplicate error, not a missing-reference error.
    fn resolve(
        &self,
        measurements: &[Measurement],
        scratch: &mut EvalScratch,
    ) -> Result<(), TgiError> {
        if measurements.is_empty() {
            return Err(TgiError::EmptyBenchmarkSet);
        }
        scratch.indices.clear();
        scratch.seen.clear();
        scratch.seen.resize(self.ids.len(), false);
        for (i, m) in measurements.iter().enumerate() {
            match self.ids.binary_search(&m.id()) {
                Ok(idx) => {
                    if scratch.seen[idx] {
                        return Err(TgiError::DuplicateBenchmark(m.id().to_string()));
                    }
                    scratch.seen[idx] = true;
                    scratch.indices.push(idx);
                }
                Err(_) => {
                    if measurements[..i].iter().any(|p| p.id() == m.id()) {
                        return Err(TgiError::DuplicateBenchmark(m.id().to_string()));
                    }
                    scratch.indices.push(UNRESOLVED);
                }
            }
        }
        Ok(())
    }

    /// Fills `scratch.rees` in suite order: the builder's step-1/step-2
    /// loop (metric evaluation, reference lookup, unit check, division by
    /// the precomputed reference efficiency — same operations, same order).
    fn rees_into(
        &self,
        measurements: &[Measurement],
        scratch: &mut EvalScratch,
    ) -> Result<(), TgiError> {
        scratch.rees.clear();
        for (m, &idx) in measurements.iter().zip(&scratch.indices) {
            if idx == UNRESOLVED {
                return Err(TgiError::MissingReference(m.id().to_string()));
            }
            m.performance().ratio(self.ref_meas[idx].performance())?;
            let ee = self.metric.evaluate(m);
            scratch.rees.push(ee / self.ref_ees[idx]);
        }
        Ok(())
    }
}

/// Combines weighted REEs under the chosen mean — the builder's step 4.
/// The arithmetic path sums `w_i × REE_i` in suite order (Eq. 4); the other
/// means call the same `means::weighted_*` functions as the builder.
fn combine(rees: &[f64], weights: &[f64], mean: MeanKind) -> Result<f64, TgiError> {
    match mean {
        MeanKind::Arithmetic => Ok(weights.iter().zip(rees).map(|(w, r)| w * r).sum()),
        MeanKind::Geometric => crate::means::weighted_geometric(rees, weights),
        MeanKind::Harmonic => crate::means::weighted_harmonic(rees, weights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgi::Tgi;
    use crate::units::{Perf, Seconds, Watts};

    fn meas(id: &str, perf: Perf, w: f64, t: f64) -> Measurement {
        Measurement::new(id, perf, Watts::new(w), Seconds::new(t)).unwrap()
    }

    fn reference() -> ReferenceSystem {
        ReferenceSystem::builder("SystemG")
            .benchmark(meas("hpl", Perf::tflops(8.1), 26_000.0, 7200.0))
            .benchmark(meas("stream", Perf::mbps(1_600_000.0), 24_000.0, 600.0))
            .benchmark(meas("iozone", Perf::mbps(320.0), 11_500.0, 900.0))
            .build()
            .unwrap()
    }

    fn fire_suite() -> Vec<Measurement> {
        vec![
            meas("hpl", Perf::gflops(90.0), 2_900.0, 1800.0),
            meas("stream", Perf::mbps(80_000.0), 2_500.0, 300.0),
            meas("iozone", Perf::mbps(95.0), 2_300.0, 600.0),
        ]
    }

    #[test]
    fn matches_builder_bitwise_across_weightings_and_means() {
        let reference = reference();
        let suite = fire_suite();
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::default();
        for weighting in [
            Weighting::Arithmetic,
            Weighting::Time,
            Weighting::Energy,
            Weighting::Power,
            Weighting::Custom(vec![0.5, 0.25, 0.25]),
        ] {
            for mean in [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic] {
                let via_builder = Tgi::builder()
                    .reference(reference.clone())
                    .weighting(weighting.clone())
                    .mean(mean)
                    .measurements(suite.iter().cloned())
                    .compute()
                    .unwrap();
                let value =
                    evaluator.evaluate_into(&suite, &weighting, mean, &mut scratch).unwrap();
                assert_eq!(
                    value.to_bits(),
                    via_builder.value().to_bits(),
                    "{weighting} / {}",
                    mean.label()
                );
                let full =
                    evaluator.evaluate_result_with(&suite, &weighting, mean, &mut scratch).unwrap();
                assert_eq!(full, via_builder, "{weighting} / {}", mean.label());
            }
        }
    }

    #[test]
    fn scratch_exposes_rees_and_weights_of_last_evaluation() {
        let reference = reference();
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::with_capacity(3);
        let suite = fire_suite();
        evaluator
            .evaluate_into(&suite, &Weighting::Arithmetic, MeanKind::Arithmetic, &mut scratch)
            .unwrap();
        assert_eq!(scratch.rees().len(), 3);
        assert_eq!(scratch.weights(), &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        // Suite order, not reference (sorted) order: hpl, stream, iozone.
        let ree_hpl = (90e9 / 2_900.0) / (8.1e12 / 26_000.0);
        assert!((scratch.rees()[0] - ree_hpl).abs() < 1e-12 * ree_hpl);
    }

    #[test]
    fn cells_cover_the_weighting_mean_grid() {
        let reference = reference();
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        let suite = fire_suite();
        let weightings = [Weighting::Arithmetic, Weighting::Time];
        let means = [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic];
        evaluator.evaluate_cells_into(&suite, &weightings, &means, &mut scratch, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        for (wi, weighting) in weightings.iter().enumerate() {
            for (mi, &mean) in means.iter().enumerate() {
                let single = evaluator.evaluate(&suite, weighting, mean).unwrap();
                assert_eq!(out[wi * means.len() + mi].to_bits(), single.to_bits());
            }
        }
    }

    #[test]
    fn duplicate_unknown_id_is_a_duplicate_not_missing_reference() {
        let reference = reference();
        let evaluator = TgiEvaluator::new(&reference);
        let suite = vec![
            meas("hpl", Perf::gflops(90.0), 2_900.0, 1800.0),
            meas("fft", Perf::gflops(5.0), 2_000.0, 120.0),
            meas("fft", Perf::gflops(6.0), 2_000.0, 120.0),
        ];
        let err =
            evaluator.evaluate(&suite, &Weighting::Arithmetic, MeanKind::Arithmetic).unwrap_err();
        assert_eq!(err, TgiError::DuplicateBenchmark("fft".to_string()));
    }

    #[test]
    fn reference_efficiency_lookup() {
        let reference = reference();
        let evaluator = TgiEvaluator::new(&reference);
        assert_eq!(evaluator.benchmark_count(), 3);
        assert_eq!(evaluator.reference().name(), "SystemG");
        let ee = evaluator.reference_efficiency("hpl").unwrap();
        assert!((ee - 8.1e12 / 26_000.0).abs() < 1.0);
        assert!(evaluator.reference_efficiency("fft").is_none());
    }

    #[test]
    fn scratch_shrinks_and_grows_across_suites() {
        let reference = reference();
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::default();
        let full = fire_suite();
        let one = vec![full[0].clone()];
        let a3 = evaluator
            .evaluate_into(&full, &Weighting::Arithmetic, MeanKind::Arithmetic, &mut scratch)
            .unwrap();
        let a1 = evaluator
            .evaluate_into(&one, &Weighting::Arithmetic, MeanKind::Arithmetic, &mut scratch)
            .unwrap();
        let a3_again = evaluator
            .evaluate_into(&full, &Weighting::Arithmetic, MeanKind::Arithmetic, &mut scratch)
            .unwrap();
        assert_eq!(a3.to_bits(), a3_again.to_bits());
        assert_eq!(scratch.rees().len(), 3);
        // Single-benchmark suite: TGI is that benchmark's REE.
        let ree_hpl = (90e9 / 2_900.0) / (8.1e12 / 26_000.0);
        assert!((a1 - ree_hpl).abs() < 1e-12 * ree_hpl);
    }
}
