//! Energy-efficiency metrics (Eq. 2 and alternatives).
//!
//! The paper computes TGI from the performance-to-power ratio, but notes in
//! §II that "the methodology used for computing TGI can be used with any
//! other energy-efficient metric, such as the energy-delay product". The
//! [`EfficiencyMetric`] trait captures that pluggability: anything that maps
//! a [`Measurement`] to a positive scalar where *larger is better* can drive
//! the TGI pipeline.

use crate::measurement::Measurement;
use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// A metric mapping one benchmark measurement to a positive scalar where
/// larger values mean a greener system.
pub trait EfficiencyMetric {
    /// Short name used in reports (e.g. `"perf/W"`).
    fn name(&self) -> &'static str;

    /// Evaluates the metric on one measurement.
    fn evaluate(&self, m: &Measurement) -> f64;
}

/// The paper's default metric: performance-to-power ratio (Eq. 2).
///
/// For rate-based performance this indirectly measures operations per joule
/// (Eq. 5): `FLOPS / W = FLOP / J`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfPerWatt;

impl EfficiencyMetric for PerfPerWatt {
    fn name(&self) -> &'static str {
        "perf/W"
    }

    fn evaluate(&self, m: &Measurement) -> f64 {
        m.energy_efficiency()
    }
}

/// A computed energy-efficiency value together with its inputs, convenient
/// for tabulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyEfficiency {
    /// Benchmark identifier the value belongs to.
    pub benchmark: String,
    /// The efficiency value, in canonical performance units per watt.
    pub value: f64,
    /// The power used in the denominator.
    pub power: Watts,
}

impl EnergyEfficiency {
    /// Computes Eq. 2 for a measurement.
    pub fn of(m: &Measurement) -> Self {
        EnergyEfficiency {
            benchmark: m.id().to_string(),
            value: m.energy_efficiency(),
            power: m.power(),
        }
    }

    /// The value expressed in MFLOPS/W (meaningful when the underlying
    /// performance unit is FLOPS — the Green500 convention).
    pub fn as_mflops_per_watt(&self) -> f64 {
        self.value / 1e6
    }

    /// The value expressed in MB/s per watt (for byte-rate benchmarks).
    pub fn as_mbps_per_watt(&self) -> f64 {
        self.value / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Perf, Seconds};

    fn m(gflops: f64, watts: f64) -> Measurement {
        Measurement::new("hpl", Perf::gflops(gflops), Watts::new(watts), Seconds::new(10.0))
            .unwrap()
    }

    #[test]
    fn perf_per_watt_is_eq2() {
        let meas = m(90.0, 2000.0);
        assert_eq!(PerfPerWatt.evaluate(&meas), meas.energy_efficiency());
        assert_eq!(PerfPerWatt.name(), "perf/W");
    }

    #[test]
    fn mflops_per_watt_matches_green500_convention() {
        // 90 GFLOPS at 2000 W is 45 MFLOPS/W.
        let ee = EnergyEfficiency::of(&m(90.0, 2000.0));
        assert!((ee.as_mflops_per_watt() - 45.0).abs() < 1e-9);
        assert_eq!(ee.benchmark, "hpl");
        assert_eq!(ee.power.value(), 2000.0);
    }

    #[test]
    fn flops_per_watt_equals_flop_per_joule() {
        // Eq. 5: FLOPS/W == FLOP/J. Verify numerically.
        let meas = m(10.0, 500.0);
        let flops_per_watt = meas.energy_efficiency();
        let total_flop = meas.performance().value() * meas.time().value();
        let flop_per_joule = total_flop / meas.energy().value();
        assert!((flops_per_watt - flop_per_joule).abs() < 1e-6 * flops_per_watt);
    }

    #[test]
    fn metric_trait_is_object_safe() {
        let metric: &dyn EfficiencyMetric = &PerfPerWatt;
        assert!(metric.evaluate(&m(1.0, 1.0)) > 0.0);
    }
}
