//! Proof of the evaluator's zero-allocation contract: after warm-up, the
//! batch evaluation paths perform **no heap allocation at all**, measured
//! by a counting global allocator wrapping the system one.
//!
//! Single `#[test]` on purpose — the Rust test harness runs tests on
//! multiple threads, and a concurrent test's allocations would show up in
//! the global counter as false positives.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Measurement, Perf, ReferenceSystem, Seconds, Watts, Weighting};

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates directly to `System`, only adding a counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn measurement(id: &str, perf: f64, watts: f64, secs: f64) -> Measurement {
    Measurement::new(id, Perf::gflops(perf), Watts::new(watts), Seconds::new(secs))
        .expect("valid quantities")
}

#[test]
fn warm_evaluation_does_not_allocate() {
    let ids = ["cpu", "io", "mem", "net", "fpu", "ram", "ssd", "nic"];
    let mut builder = ReferenceSystem::builder("ref");
    for (i, id) in ids.iter().enumerate() {
        builder = builder.benchmark(measurement(id, 10.0 + i as f64, 1000.0, 60.0));
    }
    let reference = builder.build().expect("non-empty");
    let suite: Vec<Measurement> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| measurement(id, 7.0 + 1.3 * i as f64, 800.0 + 10.0 * i as f64, 55.0))
        .collect();

    let evaluator = TgiEvaluator::new(&reference);
    let weightings = [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power];
    let means = [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic];
    let mut scratch = EvalScratch::with_capacity(suite.len());
    let mut cells = Vec::with_capacity(weightings.len() * means.len());

    // Warm-up: every (weighting, mean) cell once, so scratch buffers reach
    // their steady-state capacities.
    let mut warm = 0.0;
    for w in &weightings {
        for &m in &means {
            warm += evaluator.evaluate_into(&suite, w, m, &mut scratch).expect("valid suite");
        }
    }
    evaluator
        .evaluate_cells_into(&suite, &weightings, &means, &mut scratch, &mut cells)
        .expect("valid suite");

    // Measured region: repeat the same work many times; the counter must
    // not move at all.
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut hot = 0.0;
    for round in 0..100 {
        let w = &weightings[round % weightings.len()];
        let m = means[round % means.len()];
        hot += evaluator.evaluate_into(&suite, w, m, &mut scratch).expect("valid suite");
        evaluator
            .evaluate_cells_into(&suite, &weightings, &means, &mut scratch, &mut cells)
            .expect("valid suite");
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert!(warm.is_finite() && hot.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm TgiEvaluator::evaluate_into / evaluate_cells_into must not heap-allocate"
    );
}
