//! Property-test oracle: [`TgiEvaluator`] must be **bit-identical** to the
//! `Tgi::builder` path — same values (`f64::to_bits` equality), same
//! error variants, same error precedence — across every weighting scheme,
//! every mean kind, and degenerate inputs. Run under `TGI_NUM_THREADS=1`
//! and `TGI_NUM_THREADS=4` in CI: evaluation itself is single-threaded,
//! but the matrix proves thread-count never leaks into the math.

use proptest::prelude::*;
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{
    MeanKind, Measurement, Perf, ReferenceSystem, Seconds, Tgi, TgiError, TgiResult, Watts,
    Weighting,
};

fn measurement(id: &str, perf: f64, watts: f64, secs: f64) -> Measurement {
    Measurement::new(id, Perf::gflops(perf), Watts::new(watts), Seconds::new(secs))
        .expect("strategy yields valid quantities")
}

fn reference_of(suite: &[Measurement]) -> ReferenceSystem {
    let mut b = ReferenceSystem::builder("oracle-ref");
    for m in suite {
        b = b.benchmark(m.clone());
    }
    b.build().expect("non-empty suite")
}

fn builder_compute(
    reference: &ReferenceSystem,
    suite: &[Measurement],
    weighting: &Weighting,
    mean: MeanKind,
) -> Result<TgiResult, TgiError> {
    Tgi::builder()
        .reference(reference.clone())
        .weighting(weighting.clone())
        .mean(mean)
        .measurements(suite.iter().cloned())
        .compute()
}

/// A positive quantity comfortably inside every validation range, spanning
/// several orders of magnitude.
fn quantity() -> impl Strategy<Value = f64> {
    (-2.0..6.0f64).prop_map(|exp| 10.0f64.powf(exp))
}

/// A random benchmark suite (1..=8 unique ids) plus a same-shape reference
/// suite over the identical ids.
fn suite_pair() -> impl Strategy<Value = (Vec<Measurement>, Vec<Measurement>)> {
    (1usize..=8)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec((quantity(), quantity(), quantity()), n),
                proptest::collection::vec((quantity(), quantity(), quantity()), n),
            )
        })
        .prop_map(|(sys, refs)| {
            let build = |vals: Vec<(f64, f64, f64)>| {
                vals.into_iter()
                    .enumerate()
                    .map(|(i, (p, w, t))| measurement(&format!("bench-{i}"), p, w, t))
                    .collect::<Vec<Measurement>>()
            };
            (build(sys), build(refs))
        })
}

fn all_weightings(n: usize) -> Vec<Weighting> {
    let uniform = vec![1.0 / n as f64; n];
    vec![
        Weighting::Arithmetic,
        Weighting::Time,
        Weighting::Energy,
        Weighting::Power,
        Weighting::Custom(uniform),
    ]
}

const MEANS: [MeanKind; 3] = [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic];

proptest! {
    /// The headline guarantee: for random valid suites, every
    /// (weighting, mean) cell matches the builder to the last bit, for the
    /// scalar path, the batched cells path, and the full-result path.
    #[test]
    fn evaluator_matches_builder_bitwise((suite, refs) in suite_pair()) {
        let reference = reference_of(&refs);
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::default();
        let weightings = all_weightings(suite.len());

        let mut cells = Vec::new();
        evaluator
            .evaluate_cells_into(&suite, &weightings, &MEANS, &mut scratch, &mut cells)
            .expect("valid suite");

        for (w, weighting) in weightings.iter().enumerate() {
            for (m, &mean) in MEANS.iter().enumerate() {
                let expected = builder_compute(&reference, &suite, weighting, mean)
                    .expect("valid suite");
                let scalar = evaluator
                    .evaluate_into(&suite, weighting, mean, &mut scratch)
                    .expect("valid suite");
                let full = evaluator
                    .evaluate_result_with(&suite, weighting, mean, &mut scratch)
                    .expect("valid suite");

                prop_assert_eq!(scalar.to_bits(), expected.value().to_bits());
                prop_assert_eq!(cells[w * MEANS.len() + m].to_bits(), expected.value().to_bits());
                prop_assert_eq!(full.value().to_bits(), expected.value().to_bits());
                // The whole result — contributions included — is equal.
                prop_assert_eq!(&full, &expected);
            }
        }
    }

    /// Scratch reuse across differently-shaped suites never contaminates a
    /// later evaluation.
    #[test]
    fn scratch_reuse_is_stateless(
        (suite_a, refs_a) in suite_pair(),
        (suite_b, refs_b) in suite_pair(),
    ) {
        let (ra, rb) = (reference_of(&refs_a), reference_of(&refs_b));
        let (ea, eb) = (TgiEvaluator::new(&ra), TgiEvaluator::new(&rb));
        let mut shared = EvalScratch::default();
        let a1 = ea
            .evaluate_into(&suite_a, &Weighting::Energy, MeanKind::Geometric, &mut shared)
            .expect("valid");
        let _ = eb
            .evaluate_into(&suite_b, &Weighting::Time, MeanKind::Harmonic, &mut shared)
            .expect("valid");
        let a2 = ea
            .evaluate_into(&suite_a, &Weighting::Energy, MeanKind::Geometric, &mut shared)
            .expect("valid");
        prop_assert_eq!(a1.to_bits(), a2.to_bits());
    }

    /// A TgiResult produced by the evaluator survives a JSON round trip
    /// exactly (serde satellite).
    #[test]
    fn evaluator_result_serde_round_trips((suite, refs) in suite_pair()) {
        let reference = reference_of(&refs);
        let evaluator = TgiEvaluator::new(&reference);
        let mut scratch = EvalScratch::default();
        let result = evaluator
            .evaluate_result_with(&suite, &Weighting::Power, MeanKind::Arithmetic, &mut scratch)
            .expect("valid suite");
        let json = serde_json::to_string(&result).expect("serializable");
        let back: TgiResult = serde_json::from_str(&json).expect("deserializable");
        prop_assert_eq!(&back, &result);
        prop_assert_eq!(back.value().to_bits(), result.value().to_bits());
    }
}

/// The builder and the evaluator report the same error variant on the same
/// degenerate input. `assert_same_error` compares discriminants and the
/// display string (which carries the payload).
fn assert_same_error(
    reference: &ReferenceSystem,
    suite: &[Measurement],
    weighting: &Weighting,
    mean: MeanKind,
) {
    let evaluator = TgiEvaluator::new(reference);
    let mut scratch = EvalScratch::default();
    let from_builder = builder_compute(reference, suite, weighting, mean)
        .expect_err("oracle case must be degenerate");
    let from_eval = evaluator
        .evaluate_into(suite, weighting, mean, &mut scratch)
        .expect_err("oracle case must be degenerate");
    assert_eq!(
        std::mem::discriminant(&from_builder),
        std::mem::discriminant(&from_eval),
        "builder: {from_builder}, evaluator: {from_eval}"
    );
    assert_eq!(from_builder.to_string(), from_eval.to_string());
    let from_result = evaluator
        .evaluate_result_with(suite, weighting, mean, &mut scratch)
        .expect_err("oracle case must be degenerate");
    assert_eq!(from_builder.to_string(), from_result.to_string());
}

#[test]
fn error_parity_on_degenerate_inputs() {
    let refs = vec![
        measurement("cpu", 10.0, 100.0, 60.0),
        measurement("io", 5.0, 50.0, 30.0),
        measurement("mem", 8.0, 80.0, 45.0),
    ];
    let reference = reference_of(&refs);
    let cpu = measurement("cpu", 20.0, 150.0, 40.0);
    let io = measurement("io", 6.0, 60.0, 20.0);
    let am = MeanKind::Arithmetic;

    // Empty suite.
    assert_same_error(&reference, &[], &Weighting::Arithmetic, am);
    // Duplicate of a known benchmark.
    assert_same_error(
        &reference,
        &[cpu.clone(), io.clone(), cpu.clone()],
        &Weighting::Arithmetic,
        am,
    );
    // Duplicate of an UNKNOWN benchmark must still be DuplicateBenchmark,
    // not MissingReference (duplicates are detected first).
    let ghost = measurement("ghost", 1.0, 10.0, 5.0);
    assert_same_error(&reference, &[ghost.clone(), ghost.clone()], &Weighting::Arithmetic, am);
    // Missing reference entry.
    assert_same_error(&reference, &[cpu.clone(), ghost.clone()], &Weighting::Arithmetic, am);
    // Unit mismatch: bandwidth measured against a FLOPS reference.
    let wrong_unit =
        Measurement::new("cpu", Perf::mbps(100.0), Watts::new(10.0), Seconds::new(5.0))
            .expect("valid");
    assert_same_error(&reference, &[wrong_unit], &Weighting::Arithmetic, am);
    // Custom weights: wrong count, then bad sum — and precedence: weight
    // errors are reported before missing references.
    assert_same_error(
        &reference,
        std::slice::from_ref(&cpu),
        &Weighting::Custom(vec![0.5, 0.5]),
        am,
    );
    assert_same_error(&reference, std::slice::from_ref(&cpu), &Weighting::Custom(vec![0.7]), am);
    assert_same_error(
        &reference,
        std::slice::from_ref(&ghost),
        &Weighting::Custom(vec![0.5, 0.5]),
        am,
    );
    // Geometric mean meets a zero-performance REE… impossible with valid
    // Perf, so instead: harmonic/geometric paths still agree on dup errors.
    assert_same_error(&reference, &[cpu, io.clone(), io], &Weighting::Time, MeanKind::Geometric);
}

#[test]
fn missing_reference_system_matches_builder() {
    // The builder's very first check; the evaluator can't even be built
    // without a reference, so parity here is the builder returning the
    // dedicated variant.
    let err = Tgi::builder()
        .measurement(measurement("cpu", 1.0, 10.0, 5.0))
        .compute()
        .expect_err("no reference configured");
    assert!(matches!(err, TgiError::MissingReferenceSystem));
}
