//! # tgi-harness — regenerate every figure and table of the paper
//!
//! One entry point per artifact of the paper's evaluation (§IV):
//!
//! | Artifact | Function | Content |
//! |---|---|---|
//! | Fig. 2 | [`experiments::fig2_hpl_efficiency`] | EE of HPL (MFLOPS/W) vs processes on Fire |
//! | Fig. 3 | [`experiments::fig3_stream_efficiency`] | EE of STREAM (MB/s per W) vs processes |
//! | Fig. 4 | [`experiments::fig4_iozone_efficiency`] | EE of IOzone (MB/s per W) vs nodes |
//! | Fig. 5 | [`experiments::fig5_tgi_arithmetic`] | TGI (arithmetic mean) vs cores |
//! | Fig. 6 | [`experiments::fig6_tgi_weighted`] | TGI with time/power/energy weights vs cores |
//! | Table I | [`experiments::table1_reference_performance`] | SystemG performance & power per benchmark |
//! | Table II | [`experiments::table2_pcc`] | PCC between per-benchmark EE and TGI per weighting |
//!
//! [`sweep`] runs the underlying Fire core-count sweep once and shares it
//! across figures; [`report`] renders figures/tables as text and CSV.
//! [`grid`] generalizes the sweep to a full (cluster × cores × weighting ×
//! mean) study evaluated in parallel with memoized cluster simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod extensions;
pub mod fleet;
pub mod grid;
pub mod journal;
pub mod list;
pub mod report;
pub mod sweep;
pub mod telemetry;

pub use experiments::{
    fig2_hpl_efficiency, fig3_stream_efficiency, fig4_iozone_efficiency, fig5_tgi_arithmetic,
    fig6_tgi_weighted, system_g_reference, table1_reference_performance, table2_pcc,
};
pub use export::ExperimentBundle;
pub use fleet::{FleetSweep, FleetTable};
pub use grid::{GridSweep, GridTable};
pub use report::{FigureData, Series, TableData};
pub use sweep::FireSweep;
pub use telemetry::TelemetrySession;
