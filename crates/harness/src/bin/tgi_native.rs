//! `tgi-native` — run the benchmark suite on *this* machine and score it.
//!
//! ```text
//! tgi-native                         # the standard 3-benchmark suite
//! tgi-native --preset quick|hpcc    # built-in suite presets
//! tgi-native --spec suite.json      # a custom SuiteSpec
//! tgi-native --reference ref.json   # score against a saved reference
//! tgi-native --save-reference ref.json   # save this run as the reference
//! tgi-native --json out.json        # dump measurements as JSON
//! tgi-native --repeats 3 --retries 2 --timeout 120 --keep-going \
//!            --journal runs.jsonl   # resilient runner + JSONL journal
//! tgi-native --telemetry metrics.prom --trace-out trace.json  # observability
//! ```
//!
//! Power comes from the background sampler over the modeled node (see
//! `power-model`); on a machine with a real metering daemon, implement
//! `PowerSource` against it and the rest of the pipeline is unchanged.
//! Native benchmarks hold the exclusive meter token, so they serialize
//! even under `--parallel`; the flag mainly helps mixed suites.

use std::path::PathBuf;
use std::time::Duration;
use tgi_core::prelude::*;
use tgi_harness::journal;
use tgi_suite::{FailureMode, RunOutcome, SuiteRunner, SuiteSpec};

struct Args {
    preset: String,
    spec: Option<PathBuf>,
    reference: Option<PathBuf>,
    save_reference: Option<PathBuf>,
    json: Option<PathBuf>,
    parallel: usize,
    repeats: usize,
    retries: usize,
    timeout_secs: Option<f64>,
    keep_going: bool,
    journal: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn usage_text() -> &'static str {
    "usage: tgi-native [--preset standard|quick|hpcc | --spec suite.json]\n\
     \x20                [--reference ref.json] [--save-reference ref.json]\n\
     \x20                [--json out.json] [--parallel N] [--repeats N]\n\
     \x20                [--retries N] [--timeout SECS] [--keep-going]\n\
     \x20                [--journal runs.jsonl]\n\
     \x20                [--telemetry metrics.prom] [--trace-out trace.json]\n\
     \n\
     \x20 --telemetry PATH  record run telemetry, write a Prometheus text\n\
     \x20                   snapshot to PATH, and print a span summary\n\
     \x20 --trace-out PATH  write the run timeline as Chrome trace_event\n\
     \x20                   JSON (open in chrome://tracing or Perfetto)"
}

fn parse_args() -> Args {
    let mut args = Args {
        preset: "standard".to_string(),
        spec: None,
        reference: None,
        save_reference: None,
        json: None,
        parallel: 1,
        repeats: 1,
        retries: 0,
        timeout_secs: None,
        keep_going: false,
        journal: None,
        telemetry: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        fn parse<T: std::str::FromStr>(flag: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{v}`");
                std::process::exit(2);
            })
        }
        match a.as_str() {
            "--preset" => args.preset = value("--preset"),
            "--spec" => args.spec = Some(PathBuf::from(value("--spec"))),
            "--reference" => args.reference = Some(PathBuf::from(value("--reference"))),
            "--save-reference" => {
                args.save_reference = Some(PathBuf::from(value("--save-reference")))
            }
            "--json" => args.json = Some(PathBuf::from(value("--json"))),
            "--parallel" => args.parallel = parse("--parallel", value("--parallel")),
            "--repeats" => args.repeats = parse("--repeats", value("--repeats")),
            "--retries" => args.retries = parse("--retries", value("--retries")),
            "--timeout" => args.timeout_secs = Some(parse("--timeout", value("--timeout"))),
            "--keep-going" => args.keep_going = true,
            "--journal" => args.journal = Some(PathBuf::from(value("--journal"))),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry"))),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{}", usage_text());
                std::process::exit(2);
            }
        }
    }
    args
}

fn load_spec(args: &Args) -> SuiteSpec {
    if let Some(path) = &args.spec {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid suite spec {}: {e}", path.display());
            std::process::exit(1);
        })
    } else {
        match args.preset.as_str() {
            "standard" => SuiteSpec::standard(),
            "quick" => SuiteSpec::quick(),
            "hpcc" => SuiteSpec::hpcc_style(),
            other => {
                eprintln!("unknown preset `{other}` (expected standard|quick|hpcc)");
                std::process::exit(2);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let telemetry =
        tgi_harness::TelemetrySession::start(args.telemetry.clone(), args.trace_out.clone());
    let spec = load_spec(&args);
    let suite = spec.build();
    eprintln!("running {} benchmarks natively...", suite.len());

    let runner = SuiteRunner::new()
        .parallelism(args.parallel)
        .repeats(args.repeats)
        .retries(args.retries)
        .timeout(args.timeout_secs.map(Duration::from_secs_f64))
        .failure_mode(if args.keep_going {
            FailureMode::CollectErrors
        } else {
            FailureMode::FailFast
        });
    let report = runner.run(&suite);

    if let Some(path) = &args.journal {
        match journal::append(path, &report) {
            Ok(n) => eprintln!("journaled {n} records to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write journal {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    for entry in &report.entries {
        match &entry.outcome {
            RunOutcome::Failed(e) => eprintln!(
                "FAILED {} (repeat {}, {} attempts): {e}",
                entry.benchmark, entry.repeat, entry.attempts
            ),
            RunOutcome::Skipped => {
                eprintln!("skipped {} (repeat {})", entry.benchmark, entry.repeat)
            }
            RunOutcome::Success(_) => {}
        }
    }

    let measurements: Vec<Measurement> = if args.keep_going {
        let ms: Vec<Measurement> = report.measurements().into_iter().cloned().collect();
        if ms.is_empty() {
            eprintln!("suite failed: no benchmark succeeded");
            std::process::exit(1);
        }
        ms
    } else {
        match report.into_result() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("suite failed: {e}");
                std::process::exit(1);
            }
        }
    };

    println!(
        "{:<10} {:>18} {:>12} {:>12} {:>14}",
        "benchmark", "performance", "power", "time", "EE (unit/W)"
    );
    for m in &measurements {
        println!(
            "{:<10} {:>18} {:>12} {:>12} {:>14.4e}",
            m.id(),
            m.performance().to_string(),
            m.power().to_string(),
            m.time().to_string(),
            m.energy_efficiency()
        );
    }

    if let Some(path) = &args.save_reference {
        let json = serde_json::to_string_pretty(&measurements).expect("measurements serialize");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("saved reference measurements to {}", path.display());
    }

    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&measurements).expect("measurements serialize");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    // Score against a reference, if one is available.
    if let Some(path) = &args.reference {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let ref_measurements: Vec<Measurement> = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid reference {}: {e}", path.display());
            std::process::exit(1);
        });
        let mut builder = ReferenceSystem::builder(
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("reference"),
        );
        for m in ref_measurements {
            builder = builder.benchmark(m);
        }
        let reference = match builder.build() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("invalid reference suite: {e}");
                std::process::exit(1);
            }
        };

        println!();
        for weighting in
            [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power]
        {
            match Tgi::builder()
                .reference(reference.clone())
                .weighting(weighting.clone())
                .measurements(measurements.iter().cloned())
                .compute()
            {
                Ok(result) => {
                    println!("TGI ({:<15}) = {:.4}", weighting.to_string(), result.value())
                }
                Err(e) => {
                    eprintln!("cannot compute TGI ({weighting}): {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        eprintln!(
            "\nno --reference given: showing raw efficiencies only.\n\
             Tip: run once on the reference machine with --save-reference ref.json,\n\
             then score others with --reference ref.json."
        );
    }

    if let Err(e) = telemetry.finish() {
        eprintln!("cannot write telemetry output: {e}");
        std::process::exit(1);
    }
}
