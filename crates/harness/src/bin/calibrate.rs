//! `calibrate` — diagnostic dump for tuning the cluster scaling models.
//!
//! Prints, for every Fire sweep point: per-benchmark performance, power,
//! time, energy, EE, and REE; then each weighting's TGI series and the full
//! PCC matrix. Used to keep the simulator calibrated to the paper's anchor
//! points and correlation pattern (see DESIGN.md §6).
//!
//! CLI contract (PR 5 convention): `--help` is an answer, not an error —
//! stdout, exit 0. Parse errors print usage to stderr and exit 2. Runtime
//! failures (a sweep point the reference cannot score) are reported on
//! stderr with exit 1 — never a panic.

use tgi_core::Weighting;
use tgi_harness::{experiments, FireSweep};

const USAGE: &str = "\
usage: calibrate [--help]

Dumps the Fire sweep calibration detail: per-benchmark REE against the
SystemG reference, every weighting's TGI series, and the PCC matrix.

options:
  -h, --help   print this help and exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if let Some(unknown) = args.first() {
        eprintln!("unknown argument `{unknown}`");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    if let Err(e) = run() {
        eprintln!("calibrate failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), tgi_core::TgiError> {
    let reference = experiments::system_g_reference();
    println!("reference: {}", reference.name());
    for (id, m) in reference.iter() {
        println!(
            "  {:8} perf={:>16} power={:>9} time={:>9} ee={:.4e}",
            id,
            m.performance().to_string(),
            m.power().to_string(),
            m.time().to_string(),
            m.energy_efficiency()
        );
    }

    let sweep = FireSweep::run();
    println!("\nsweep detail:");
    for p in sweep.points() {
        println!("cores={}", p.cores);
        for m in &p.measurements {
            let ree = reference.ree(m)?;
            println!(
                "  {:8} perf={:>16} power={:>9} time={:>10} energy={:>11} ee={:.4e} ree={:.4}",
                m.id(),
                m.performance().to_string(),
                m.power().to_string(),
                m.time().to_string(),
                m.energy().to_string(),
                m.energy_efficiency(),
                ree
            );
        }
    }

    println!("\nTGI series:");
    for w in [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power] {
        let series = sweep.tgi_series(&reference, w.clone())?;
        let vals: Vec<String> = series.iter().map(|(_, r)| format!("{:.3}", r.value())).collect();
        println!("  {:16} {}", w.label(), vals.join(" "));
    }

    println!("\nPCC matrix (rows: benchmark EE, cols: weighting):");
    println!("  {:8} {:>7} {:>7} {:>7} {:>7}", "", "AM", "time", "energy", "power");
    let cols: Vec<Vec<(String, f64)>> =
        [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power]
            .into_iter()
            .map(|w| experiments::pcc_for_weighting(&sweep, &reference, w))
            .collect();
    for i in 0..3 {
        print!("  {:8}", cols[0][i].0);
        for c in &cols {
            print!(" {:>7.3}", c[i].1);
        }
        println!();
    }
    Ok(())
}
