//! `tgi-experiments` — regenerate the paper's figures and tables.
//!
//! ```text
//! tgi-experiments all              # every artifact, text to stdout
//! tgi-experiments fig2 … fig6      # one figure
//! tgi-experiments table1 table2    # one table
//! tgi-experiments extensions       # §VI future-work experiments
//! tgi-experiments list             # Green500-style side-by-side list
//! tgi-experiments --csv <dir> all  # also write CSV files into <dir>
//! tgi-experiments --json <file> all # also write one JSON bundle
//! tgi-experiments --markdown <file> all # also write a Markdown report
//! ```

use std::path::PathBuf;
use tgi_harness::{
    fig2_hpl_efficiency, fig3_stream_efficiency, fig4_iozone_efficiency, fig5_tgi_arithmetic,
    fig6_tgi_weighted, system_g_reference, table1_reference_performance, table2_pcc,
    ExperimentBundle, FigureData, FireSweep, TableData,
};

const USAGE: &str = "\
usage: tgi-experiments [options] [artifact...]

artifacts: fig2 fig3 fig4 fig5 fig6 table1 table2 list extensions all
(default: all)

options:
  --csv <dir>        also write one CSV file per artifact into <dir>
  --json <file>      also write one JSON bundle
  --markdown <file>  also write a Markdown report
  -h, --help         print this help and exit
";

/// Parse error: usage on stderr, exit 2 (PR 5 CLI convention).
fn parse_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprint!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let mut csv_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            parse_error("--csv requires a directory argument");
        }
        csv_dir = Some(PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    let mut json_path: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if pos + 1 >= args.len() {
            parse_error("--json requires a file argument");
        }
        json_path = Some(PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    let mut md_path: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--markdown") {
        if pos + 1 >= args.len() {
            parse_error("--markdown requires a file argument");
        }
        md_path = Some(PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    if let Some(unknown) = args.iter().find(|a| a.starts_with('-')) {
        parse_error(&format!("unknown argument `{unknown}`"));
    }
    if args.is_empty() {
        args.push("all".to_string());
    }
    const KNOWN: [&str; 10] =
        ["fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2", "list", "extensions", "all"];
    if let Some(bad) = args.iter().find(|a| !KNOWN.contains(&a.as_str())) {
        parse_error(&format!("unknown artifact `{bad}`"));
    }

    let want = |name: &str| args.iter().any(|a| a == name || a == "all");

    eprintln!("running SystemG reference experiments (1024 cores)...");
    let reference = system_g_reference();
    eprintln!("running Fire core-count sweep (16..128 cores x 3 benchmarks)...");
    let sweep = FireSweep::run();

    let mut figures: Vec<FigureData> = Vec::new();
    let mut tables: Vec<TableData> = Vec::new();

    if want("fig2") {
        figures.push(fig2_hpl_efficiency(&sweep));
    }
    if want("fig3") {
        figures.push(fig3_stream_efficiency(&sweep));
    }
    if want("fig4") {
        figures.push(fig4_iozone_efficiency(&sweep));
    }
    if want("fig5") {
        figures.push(fig5_tgi_arithmetic(&sweep, &reference));
    }
    if want("fig6") {
        figures.push(fig6_tgi_weighted(&sweep, &reference));
    }
    if want("table1") {
        tables.push(table1_reference_performance(&reference));
    }
    if want("table2") {
        tables.push(table2_pcc(&sweep, &reference));
    }
    if args.iter().any(|a| a == "list") {
        eprintln!("scoring the built-in fleet under FLOPS/W and TGI...");
        match tgi_harness::list::Green500StyleList::build(
            &reference,
            &tgi_harness::list::builtin_fleet(),
        ) {
            Ok(l) => tables.push(l.to_table()),
            Err(e) => {
                eprintln!("list failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.iter().any(|a| a == "extensions") {
        eprintln!("running extension experiments (GPU platform, cooling, DVFS)...");
        match tgi_harness::extensions::gpu_platform_comparison(&reference) {
            Ok(t) => tables.push(t),
            Err(e) => {
                eprintln!("gpu extension failed: {e}");
                std::process::exit(1);
            }
        }
        match tgi_harness::extensions::center_wide_tgi(&reference) {
            Ok(t) => tables.push(t),
            Err(e) => {
                eprintln!("cooling extension failed: {e}");
                std::process::exit(1);
            }
        }
        match tgi_harness::extensions::mean_ablation(&reference) {
            Ok(t) => tables.push(t),
            Err(e) => {
                eprintln!("mean ablation failed: {e}");
                std::process::exit(1);
            }
        }
        match tgi_harness::extensions::dvfs_sweep(&reference) {
            Ok(f) => figures.push(f),
            Err(e) => {
                eprintln!("dvfs extension failed: {e}");
                std::process::exit(1);
            }
        }
        match tgi_harness::extensions::more_systems_ranking(&reference) {
            Ok(r) => println!("{r}"),
            Err(e) => {
                eprintln!("ranking extension failed: {e}");
                std::process::exit(1);
            }
        }
    }

    for f in &figures {
        println!("{}", f.to_text());
    }
    for t in &tables {
        println!("{}", t.to_text());
    }

    if json_path.is_some() || md_path.is_some() {
        let bundle = ExperimentBundle::new(reference.name(), figures.clone(), tables.clone());
        if let Some(path) = json_path {
            if let Err(e) = bundle.write(&path) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = md_path {
            if let Err(e) = std::fs::write(&path, bundle.to_markdown()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }

    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        for f in &figures {
            let path = dir.join(format!("{}.csv", f.id));
            if let Err(e) = std::fs::write(&path, f.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
        for t in &tables {
            let path = dir.join(format!("{}.csv", t.id));
            if let Err(e) = std::fs::write(&path, t.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }
}
