//! `tgi-simulate` — run one workload on a simulated cluster.
//!
//! ```text
//! tgi-simulate --cluster fire --workload hpl --procs 128
//! tgi-simulate --cluster fire-gpu --workload stream --procs 64 --dvfs 0.8
//! tgi-simulate --cluster sandy --workload iozone --procs 32 \
//!              --noise 0.01 --seed 7 --thermal --trace out.csv
//! tgi-simulate --spec my_cluster.json --workload hpl --procs 16
//! ```
//!
//! Prints the measurement (performance, power, time, energy, EE) and can
//! dump the metered power trace as a `seconds,watts` CSV.

use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use power_model::{trace_io, ThermalModel};
use std::path::PathBuf;

struct Args {
    cluster: String,
    spec: Option<PathBuf>,
    workload: String,
    procs: usize,
    dvfs: Option<f64>,
    noise: Option<f64>,
    seed: u64,
    thermal: bool,
    trace: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn usage_text() -> &'static str {
    "usage: tgi-simulate [--cluster fire|fire-gpu|sandy|systemg | --spec file.json]\n\
     \x20                  --workload hpl|stream|iozone --procs N\n\
     \x20                  [--dvfs RATIO] [--noise SIGMA] [--seed N] [--thermal]\n\
     \x20                  [--trace out.csv]\n\
     \x20                  [--telemetry metrics.prom] [--trace-out trace.json]\n\
     \n\
     \x20 --telemetry PATH  record run telemetry, write a Prometheus text\n\
     \x20                   snapshot to PATH, and print a span summary\n\
     \x20 --trace-out PATH  write the run timeline as Chrome trace_event\n\
     \x20                   JSON (open in chrome://tracing or Perfetto)"
}

/// Parse error: usage to stderr, exit 2 (`--help` prints to stdout, exit 0).
fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cluster: "fire".into(),
        spec: None,
        workload: String::new(),
        procs: 0,
        dvfs: None,
        noise: None,
        seed: 0,
        thermal: false,
        trace: None,
        telemetry: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                usage()
            })
        };
        match a.as_str() {
            "--cluster" => args.cluster = value("--cluster"),
            "--spec" => args.spec = Some(PathBuf::from(value("--spec"))),
            "--workload" => args.workload = value("--workload"),
            "--procs" => args.procs = value("--procs").parse().unwrap_or_else(|_| usage()),
            "--dvfs" => args.dvfs = Some(value("--dvfs").parse().unwrap_or_else(|_| usage())),
            "--noise" => args.noise = Some(value("--noise").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--thermal" => args.thermal = true,
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry"))),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    if args.workload.is_empty() || args.procs == 0 {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let telemetry =
        tgi_harness::TelemetrySession::start(args.telemetry.clone(), args.trace_out.clone());

    let cluster: ClusterSpec = if let Some(path) = &args.spec {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid cluster spec {}: {e}", path.display());
            std::process::exit(1);
        })
    } else {
        match args.cluster.as_str() {
            "fire" => ClusterSpec::fire(),
            "fire-gpu" => ClusterSpec::fire_gpu(),
            "sandy" => ClusterSpec::sandy(),
            "systemg" => ClusterSpec::system_g(),
            other => {
                eprintln!("unknown cluster `{other}`");
                usage()
            }
        }
    };
    if let Err(e) = cluster.validate() {
        eprintln!("{e}");
        std::process::exit(1);
    }

    let workload = match args.workload.as_str() {
        "hpl" => Workload::fire_suite()[0],
        "stream" => Workload::fire_suite()[1],
        "iozone" => Workload::fire_suite()[2],
        other => {
            eprintln!("unknown workload `{other}`");
            usage()
        }
    };

    let mut engine = ExecutionEngine::new(cluster.clone());
    if let Some(ratio) = args.dvfs {
        engine = engine.with_frequency_ratio(ratio);
    }
    if let Some(sigma) = args.noise {
        engine = engine.with_run_noise(sigma, args.seed);
    }
    if args.thermal {
        engine = engine.with_thermal(ThermalModel::typical_server());
    }

    let run = engine.run(workload, args.procs);
    println!(
        "{} on {} with {} processes{}{}{}",
        run.benchmark,
        cluster.name,
        args.procs,
        args.dvfs.map(|r| format!(", clock {:.0}%", r * 100.0)).unwrap_or_default(),
        args.noise.map(|s| format!(", noise σ={s}")).unwrap_or_default(),
        if args.thermal { ", thermal dynamics on" } else { "" },
    );
    println!("  performance : {}", run.performance);
    println!("  avg power   : {}", run.average_power);
    println!("  wall time   : {:.1} s", run.seconds);
    println!("  energy      : {:.3} MJ", run.energy_joules / 1e6);
    println!("  efficiency  : {:.4e} (canonical units per watt)", run.energy_efficiency());

    if let Some(path) = &args.trace {
        if let Err(e) = trace_io::write_log_file(&run.trace, path) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {} samples to {}", run.trace.len(), path.display());
    }

    if let Err(e) = telemetry.finish() {
        eprintln!("cannot write telemetry output: {e}");
        std::process::exit(1);
    }
}
