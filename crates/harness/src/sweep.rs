//! The Fire core-count sweep underlying Figures 2–6 and Table II.
//!
//! §IV-B: "Each point in Figure 5 represents TGI calculated while executing
//! HPL, STREAM and IOzone using a particular number of cores in the
//! cluster." The sweep runs the three fixed-work benchmarks at each core
//! count and retains every measurement, so all downstream artifacts share
//! one set of runs (as the paper's did).

use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Measurement, ReferenceSystem, TgiResult, Weighting};

/// The paper's Fire sweep: 16…128 cores in steps of 16 (one core-per-node
/// granularity step per point on the 8-node cluster).
pub const FIRE_CORE_COUNTS: [usize; 8] = [16, 32, 48, 64, 80, 96, 112, 128];

/// One sweep point: the core count and the three benchmark measurements.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cores (MPI processes) used.
    pub cores: usize,
    /// Measurements in suite order (hpl, stream, iozone).
    pub measurements: Vec<Measurement>,
}

/// The complete Fire sweep.
#[derive(Debug, Clone)]
pub struct FireSweep {
    points: Vec<SweepPoint>,
}

impl FireSweep {
    /// Runs the sweep on the Fire cluster with the paper's workload set.
    pub fn run() -> Self {
        Self::run_with(ClusterSpec::fire(), &Workload::fire_suite(), &FIRE_CORE_COUNTS)
    }

    /// Runs the paper's sweep with run-to-run performance noise (relative
    /// σ, deterministic per seed) — for robustness studies of the
    /// correlation results.
    pub fn run_noisy(sigma: f64, seed: u64) -> Self {
        let engine = ExecutionEngine::new(ClusterSpec::fire()).with_run_noise(sigma, seed);
        Self::run_on(engine, &Workload::fire_suite(), &FIRE_CORE_COUNTS)
    }

    /// Runs a custom sweep.
    pub fn run_with(cluster: ClusterSpec, workloads: &[Workload], cores: &[usize]) -> Self {
        Self::run_on(ExecutionEngine::new(cluster), workloads, cores)
    }

    /// Runs a sweep on a pre-configured engine (noise, DVFS, meter serial).
    pub fn run_on(engine: ExecutionEngine, workloads: &[Workload], cores: &[usize]) -> Self {
        let points = cores
            .iter()
            .map(|&c| SweepPoint {
                cores: c,
                measurements: engine
                    .run_suite(workloads, c)
                    .into_iter()
                    .map(|r| r.measurement())
                    .collect(),
            })
            .collect();
        FireSweep { points }
    }

    /// The sweep points in core order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The energy-efficiency series for one benchmark, as
    /// `(cores, EE in canonical units per watt)` pairs.
    pub fn efficiency_series(&self, benchmark: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| {
                p.measurements
                    .iter()
                    .find(|m| m.id() == benchmark)
                    .map(|m| (p.cores as f64, m.energy_efficiency()))
            })
            .collect()
    }

    /// TGI at every sweep point under a weighting scheme, with full
    /// per-benchmark contribution breakdowns.
    ///
    /// One [`TgiEvaluator`] serves the whole series — the reference is
    /// resolved once, and no measurements or weightings are cloned per
    /// point. Values are bit-identical to the `Tgi::builder` path.
    pub fn tgi_series(
        &self,
        reference: &ReferenceSystem,
        weighting: Weighting,
    ) -> Result<Vec<(f64, TgiResult)>, tgi_core::TgiError> {
        let evaluator = TgiEvaluator::new(reference);
        let mut scratch = EvalScratch::default();
        self.points
            .iter()
            .map(|p| {
                evaluator
                    .evaluate_result_with(
                        &p.measurements,
                        &weighting,
                        MeanKind::Arithmetic,
                        &mut scratch,
                    )
                    .map(|r| (p.cores as f64, r))
            })
            .collect()
    }

    /// Bare TGI values at every sweep point — the allocation-light path for
    /// correlation studies that only need the scalar (Table II).
    ///
    /// Bitwise-identical to mapping [`FireSweep::tgi_series`] results
    /// through [`TgiResult::value`], without building contribution vectors.
    pub fn tgi_values(
        &self,
        reference: &ReferenceSystem,
        weighting: &Weighting,
        mean: MeanKind,
    ) -> Result<Vec<f64>, tgi_core::TgiError> {
        let evaluator = TgiEvaluator::new(reference);
        let mut scratch = EvalScratch::default();
        self.points
            .iter()
            .map(|p| evaluator.evaluate_into(&p.measurements, weighting, mean, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::system_g_reference;

    #[test]
    fn sweep_covers_all_core_counts() {
        let sweep = FireSweep::run();
        assert_eq!(sweep.points().len(), 8);
        let cores: Vec<usize> = sweep.points().iter().map(|p| p.cores).collect();
        assert_eq!(cores, FIRE_CORE_COUNTS.to_vec());
        for p in sweep.points() {
            assert_eq!(p.measurements.len(), 3);
        }
    }

    #[test]
    fn efficiency_series_complete_and_positive() {
        let sweep = FireSweep::run();
        for b in ["hpl", "stream", "iozone"] {
            let series = sweep.efficiency_series(b);
            assert_eq!(series.len(), 8, "{b}");
            assert!(series.iter().all(|&(_, ee)| ee > 0.0), "{b}");
        }
        assert!(sweep.efficiency_series("nonexistent").is_empty());
    }

    #[test]
    fn tgi_series_has_one_value_per_point() {
        let sweep = FireSweep::run();
        let reference = system_g_reference();
        let series = sweep.tgi_series(&reference, Weighting::Arithmetic).unwrap();
        assert_eq!(series.len(), 8);
        assert!(series.iter().all(|(_, r)| r.value() > 0.0));
    }

    #[test]
    fn tgi_values_match_tgi_series_bitwise() {
        let sweep = FireSweep::run();
        let reference = system_g_reference();
        for weighting in
            [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power]
        {
            let series = sweep.tgi_series(&reference, weighting.clone()).unwrap();
            let values = sweep.tgi_values(&reference, &weighting, MeanKind::Arithmetic).unwrap();
            assert_eq!(series.len(), values.len());
            for ((_, r), v) in series.iter().zip(&values) {
                assert_eq!(r.value().to_bits(), v.to_bits(), "{weighting}");
            }
        }
    }

    #[test]
    fn hpl_efficiency_rises_then_dips_through_sweep() {
        let sweep = FireSweep::run();
        let series = sweep.efficiency_series("hpl");
        let ys: Vec<f64> = series.iter().map(|&(_, y)| y).collect();
        // Rising through mid-scale, peaking around 64–80 processes, then a
        // mild dip as convex CPU power outruns the saturating performance.
        assert!(ys[1] > ys[0] && ys[2] > ys[1] && ys[3] > ys[2], "rising: {ys:?}");
        let peak = ys.iter().cloned().fold(0.0, f64::max);
        assert!(*ys.last().unwrap() < peak, "tail dips: {ys:?}");
        assert!(*ys.last().unwrap() > 0.7 * peak, "dip is mild: {ys:?}");
    }
}
