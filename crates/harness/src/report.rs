//! Figure/table data containers and text/CSV rendering.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Escapes one CSV field per RFC 4180: fields containing a comma, a double
/// quote, or a line break are wrapped in double quotes, with embedded
/// quotes doubled. Plain fields are passed through unchanged (borrowed), so
/// numeric columns cost nothing. Generated fleet spec names (and any
/// user-supplied label) can therefore never corrupt a CSV row.
pub fn csv_field(field: &str) -> Cow<'_, str> {
    if field.contains(['"', ',', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(field)
    }
}

/// One (x, y) point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (process count, node count, core count).
    pub x: f64,
    /// Y coordinate (efficiency, TGI).
    pub y: f64,
}

/// A named series of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Builds a series from `(x, y)` pairs.
    pub fn from_pairs(name: impl Into<String>, pairs: &[(f64, f64)]) -> Self {
        Series { name: name.into(), points: pairs.iter().map(|&(x, y)| Point { x, y }).collect() }
    }

    /// The y values in order.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// The x values in order.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }
}

/// Everything needed to regenerate one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig2"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// One or more series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders as an aligned text table (one x column, one column per
    /// series), which is how the harness binary prints figures.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", s.name);
        }
        let _ = writeln!(out);
        let n = self.series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        // Integer x axes (process/core counts) print without decimals;
        // fractional ones (clock ratios) keep two.
        let integral_x =
            self.series.iter().flat_map(|s| &s.points).all(|p| (p.x - p.x.round()).abs() < 1e-9);
        for i in 0..n {
            let x =
                self.series.iter().find_map(|s| s.points.get(i).map(|p| p.x)).unwrap_or(f64::NAN);
            if integral_x {
                let _ = write!(out, "{x:>12.0}");
            } else {
                let _ = write!(out, "{x:>12.2}");
            }
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, " {:>18.4}", p.y);
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        let n = self.series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for i in 0..n {
            let x =
                self.series.iter().find_map(|s| s.points.get(i).map(|p| p.x)).unwrap_or(f64::NAN);
            let _ = write!(out, "| {x} |");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, " {:.4} |", p.y);
                    }
                    None => {
                        let _ = write!(out, " – |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV: header `x,<series...>`, one row per x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(' ', "_"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.name.replace(' ', "_"));
        }
        let _ = writeln!(out);
        let n = self.series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        for i in 0..n {
            let x =
                self.series.iter().find_map(|s| s.points.get(i).map(|p| p.x)).unwrap_or(f64::NAN);
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, ",{}", p.y);
                    }
                    None => out.push(','),
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Everything needed to regenerate one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// Identifier, e.g. `"table1"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Renders as an aligned text table.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out);
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let render =
            |cells: &[String]| cells.iter().map(|c| csv_field(c)).collect::<Vec<_>>().join(",");
        let mut out = String::new();
        let _ = writeln!(out, "{}", render(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row));
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(self.headers.len()));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_field_escapes_per_rfc_4180() {
        assert_eq!(csv_field("plain"), "plain");
        assert!(matches!(csv_field("plain"), Cow::Borrowed(_)));
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn table_csv_escapes_cells() {
        let t = TableData {
            id: "t".into(),
            title: "t".into(),
            headers: vec!["name".into(), "value".into()],
            rows: vec![vec!["a,b".into(), "1".into()]],
        };
        assert_eq!(t.to_csv(), "name,value\n\"a,b\",1\n");
    }

    fn fig() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "Test figure".into(),
            x_label: "procs".into(),
            y_label: "EE".into(),
            series: vec![
                Series::from_pairs("a", &[(16.0, 1.5), (32.0, 2.5)]),
                Series::from_pairs("b", &[(16.0, 0.5), (32.0, 0.75)]),
            ],
        }
    }

    #[test]
    fn series_accessors() {
        let s = Series::from_pairs("s", &[(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.xs(), vec![1.0, 2.0]);
        assert_eq!(s.ys(), vec![10.0, 20.0]);
    }

    #[test]
    fn figure_text_contains_all_values() {
        let t = fig().to_text();
        assert!(t.contains("figX"));
        assert!(t.contains("1.5000"));
        assert!(t.contains("0.7500"));
        assert!(t.contains("16"));
        assert!(t.contains("32"));
    }

    #[test]
    fn figure_csv_is_parseable() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "procs,a,b");
        assert_eq!(lines.len(), 3);
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], "16");
    }

    #[test]
    fn ragged_series_render_dashes() {
        let mut f = fig();
        f.series[1].points.pop();
        let t = f.to_text();
        assert!(t.contains('-'));
        let csv = f.to_csv();
        assert!(csv.lines().nth(2).unwrap().ends_with(','));
    }

    #[test]
    fn table_text_aligns_and_contains_cells() {
        let t = TableData {
            id: "table1".into(),
            title: "Performance on SystemG".into(),
            headers: vec!["Benchmark".into(), "Performance".into(), "Power".into()],
            rows: vec![
                vec!["HPL".into(), "8.1 TFLOPS".into(), "26.00 kW".into()],
                vec!["STREAM".into(), "1.2 TB/s".into(), "24.00 kW".into()],
            ],
        };
        let text = t.to_text();
        assert!(text.contains("8.1 TFLOPS"));
        assert!(text.contains("STREAM"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "Benchmark,Performance,Power");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn markdown_renders_pipes_and_headers() {
        let md = fig().to_markdown();
        assert!(md.starts_with("### figX"));
        assert!(md.contains("| procs | a | b |"));
        assert!(md.contains("| 16 | 1.5000 | 0.5000 |"));
        let t = TableData {
            id: "t".into(),
            title: "x".into(),
            headers: vec!["A".into(), "B".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let md = t.to_markdown();
        assert!(md.contains("| A | B |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn fractional_x_axis_keeps_decimals() {
        let f = FigureData {
            id: "f".into(),
            title: "t".into(),
            x_label: "ratio".into(),
            y_label: "y".into(),
            series: vec![Series::from_pairs("s", &[(0.55, 1.0), (0.6, 2.0)])],
        };
        let text = f.to_text();
        assert!(text.contains("0.55"), "{text}");
        assert!(text.contains("0.60"), "{text}");
    }

    #[test]
    fn empty_figure_renders() {
        let f = FigureData {
            id: "f".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(f.to_text().contains("# f"));
        assert!(f.to_csv().starts_with('x'));
    }
}
