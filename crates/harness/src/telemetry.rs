//! CLI-side telemetry sessions: the shared `--telemetry` / `--trace-out`
//! wiring of the harness binaries.
//!
//! A [`TelemetrySession`] installs the global collector when at least one
//! output is requested, and on [`TelemetrySession::finish`] drains the
//! recorded events, writes the requested exports (Prometheus text snapshot
//! and/or Chrome `trace_event` JSON), and prints the end-of-run
//! [`tgi_telemetry::summary()`] table to stderr. With neither output
//! requested the session is inert and the run records nothing.

use std::io;
use std::path::PathBuf;

/// One CLI run's telemetry lifecycle; construct with
/// [`TelemetrySession::start`], consume with [`TelemetrySession::finish`].
#[derive(Debug)]
pub struct TelemetrySession {
    prometheus_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    active: bool,
}

impl TelemetrySession {
    /// Installs the collector when either output path is given.
    ///
    /// `prometheus_out` receives the metrics snapshot (`--telemetry`),
    /// `trace_out` the Chrome trace (`--trace-out`).
    pub fn start(prometheus_out: Option<PathBuf>, trace_out: Option<PathBuf>) -> Self {
        let wanted = prometheus_out.is_some() || trace_out.is_some();
        let active = wanted && tgi_telemetry::install();
        if wanted && !active {
            eprintln!(
                "warning: telemetry requested but the collector could not be installed \
                 (already active, or compiled out with --no-default-features)"
            );
        }
        TelemetrySession { prometheus_out, trace_out, active }
    }

    /// Whether this session actually records.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Stops recording, writes the requested exports (creating parent
    /// directories), and prints the span/metric summary to stderr.
    pub fn finish(self) -> io::Result<()> {
        if !self.active {
            return Ok(());
        }
        let events = tgi_telemetry::uninstall();
        let snapshot = tgi_telemetry::metrics::snapshot();
        if let Some(path) = &self.trace_out {
            tgi_telemetry::export::write_chrome_trace(path, &events)?;
            eprintln!(
                "wrote {} trace event(s) to {} (open in chrome://tracing or ui.perfetto.dev)",
                events.len(),
                path.display()
            );
        }
        if let Some(path) = &self.prometheus_out {
            tgi_telemetry::export::write_prometheus(path, &snapshot)?;
            eprintln!("wrote metrics snapshot to {}", path.display());
        }
        eprint!("{}", tgi_telemetry::summary(&events, &snapshot));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_output_paths() {
        let session = TelemetrySession::start(None, None);
        assert!(!session.active());
        assert!(!tgi_telemetry::installed());
        session.finish().unwrap();
    }
}
