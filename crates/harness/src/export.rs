//! Machine-readable export of a full experiment run.
//!
//! Everything the `tgi-experiments` binary prints can also be captured as
//! one JSON bundle, so downstream tooling (plotting scripts, regression
//! dashboards) can diff runs without re-parsing text tables.

use crate::report::{FigureData, TableData};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A complete, self-describing experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentBundle {
    /// Bundle format version (bump on breaking layout changes).
    pub version: u32,
    /// Name of the reference system the TGI values are normalized to.
    pub reference_system: String,
    /// All regenerated figures.
    pub figures: Vec<FigureData>,
    /// All regenerated tables.
    pub tables: Vec<TableData>,
}

/// Current bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

impl ExperimentBundle {
    /// Assembles a bundle.
    pub fn new(
        reference_system: impl Into<String>,
        figures: Vec<FigureData>,
        tables: Vec<TableData>,
    ) -> Self {
        ExperimentBundle {
            version: BUNDLE_VERSION,
            reference_system: reference_system.into(),
            figures,
            tables,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bundle contains only serializable data")
    }

    /// Parses a bundle, rejecting unknown versions.
    pub fn from_json(json: &str) -> Result<Self, ExportError> {
        let bundle: ExperimentBundle = serde_json::from_str(json)?;
        if bundle.version != BUNDLE_VERSION {
            return Err(ExportError::UnsupportedVersion(bundle.version));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `path` as JSON.
    pub fn write(&self, path: &Path) -> Result<(), ExportError> {
        Ok(std::fs::write(path, self.to_json())?)
    }

    /// Reads a bundle back from `path`.
    pub fn read(path: &Path) -> Result<Self, ExportError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Renders the whole bundle as one Markdown report.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# TGI experiment bundle (reference: {})\n\n",
            self.reference_system
        ));
        for f in &self.figures {
            out.push_str(&f.to_markdown());
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Looks up a figure by id.
    pub fn figure(&self, id: &str) -> Option<&FigureData> {
        self.figures.iter().find(|f| f.id == id)
    }

    /// Looks up a table by id.
    pub fn table(&self, id: &str) -> Option<&TableData> {
        self.tables.iter().find(|t| t.id == id)
    }
}

/// Export/import failures.
#[derive(Debug)]
pub enum ExportError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// A bundle written by an incompatible version of this crate.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "I/O error: {e}"),
            ExportError::Json(e) => write!(f, "JSON error: {e}"),
            ExportError::UnsupportedVersion(v) => {
                write!(f, "unsupported bundle version {v} (expected {BUNDLE_VERSION})")
            }
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl From<serde_json::Error> for ExportError {
    fn from(e: serde_json::Error) -> Self {
        ExportError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn bundle() -> ExperimentBundle {
        ExperimentBundle::new(
            "SystemG",
            vec![FigureData {
                id: "fig2".into(),
                title: "t".into(),
                x_label: "x".into(),
                y_label: "y".into(),
                series: vec![Series::from_pairs("s", &[(1.0, 2.0)])],
            }],
            vec![TableData {
                id: "table1".into(),
                title: "t".into(),
                headers: vec!["a".into()],
                rows: vec![vec!["1".into()]],
            }],
        )
    }

    #[test]
    fn json_round_trip() {
        let b = bundle();
        let parsed = ExperimentBundle::from_json(&b.to_json()).unwrap();
        assert_eq!(b, parsed);
    }

    #[test]
    fn lookup_by_id() {
        let b = bundle();
        assert!(b.figure("fig2").is_some());
        assert!(b.figure("fig9").is_none());
        assert!(b.table("table1").is_some());
        assert!(b.table("tableX").is_none());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut b = bundle();
        b.version = 99;
        let json = serde_json::to_string(&b).unwrap();
        assert!(matches!(
            ExperimentBundle::from_json(&json),
            Err(ExportError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(ExperimentBundle::from_json("{not json"), Err(ExportError::Json(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tgi_bundle_test_{}.json", std::process::id()));
        let b = bundle();
        b.write(&path).unwrap();
        let back = ExperimentBundle::read(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bundle_markdown_contains_everything() {
        let md = bundle().to_markdown();
        assert!(md.starts_with("# TGI experiment bundle (reference: SystemG)"));
        assert!(md.contains("### fig2"));
        assert!(md.contains("### table1"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ExperimentBundle::read(Path::new("/nonexistent/bundle.json")).unwrap_err();
        assert!(matches!(err, ExportError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
