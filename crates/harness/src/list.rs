//! A Green500-style list: systems ranked side-by-side under FLOPS/W and TGI.
//!
//! §I frames the problem as list-making ("the TOP500 list uses … HPL … to
//! rank the 500 fastest supercomputers"; the Green500 ranks by FLOPS/W).
//! This module produces the list TGI argues for: every system scored under
//! both metrics, with the rank movement between them — the systems that
//! move are exactly the ones whose non-CPU subsystems diverge from their
//! CPU story.

use crate::report::TableData;
use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use tgi_core::{Measurement, ReferenceSystem, Tgi, TgiError};

/// One scored system.
#[derive(Debug, Clone, PartialEq)]
pub struct ListedSystem {
    /// Display name.
    pub name: String,
    /// HPL performance, GFLOPS.
    pub hpl_gflops: f64,
    /// HPL energy efficiency, MFLOPS/W (the Green500 number).
    pub mflops_per_watt: f64,
    /// The Green Index (arithmetic mean) against the list's reference.
    pub tgi: f64,
}

/// The composed list.
#[derive(Debug, Clone, PartialEq)]
pub struct Green500StyleList {
    /// Reference system name the TGI column is normalized to.
    pub reference: String,
    /// Systems in TGI order (greenest first).
    pub systems: Vec<ListedSystem>,
}

impl Green500StyleList {
    /// Scores a set of clusters at full core count against `reference`.
    pub fn build(reference: &ReferenceSystem, clusters: &[ClusterSpec]) -> Result<Self, TgiError> {
        let mut systems = Vec::with_capacity(clusters.len());
        for cluster in clusters {
            let measurements: Vec<Measurement> = ExecutionEngine::new(cluster.clone())
                .run_suite(&Workload::fire_suite(), cluster.total_cores())
                .into_iter()
                .map(|r| r.measurement())
                .collect();
            let hpl = measurements.iter().find(|m| m.id() == "hpl").expect("suite contains hpl");
            let tgi = Tgi::builder()
                .reference(reference.clone())
                .measurements(measurements.iter().cloned())
                .compute()?
                .value();
            systems.push(ListedSystem {
                name: cluster.name.clone(),
                hpl_gflops: hpl.performance().as_gflops(),
                mflops_per_watt: hpl.energy_efficiency() / 1e6,
                tgi,
            });
        }
        systems.sort_by(|a, b| {
            b.tgi.partial_cmp(&a.tgi).expect("finite").then_with(|| a.name.cmp(&b.name))
        });
        Ok(Green500StyleList { reference: reference.name().to_string(), systems })
    }

    /// 1-based rank of a system under the FLOPS/W column.
    pub fn flops_per_watt_rank(&self, name: &str) -> Option<usize> {
        let mut order: Vec<&ListedSystem> = self.systems.iter().collect();
        order.sort_by(|a, b| {
            b.mflops_per_watt
                .partial_cmp(&a.mflops_per_watt)
                .expect("finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        order.iter().position(|s| s.name == name).map(|i| i + 1)
    }

    /// Renders as a table: TGI rank, FLOPS/W rank, and the movement.
    pub fn to_table(&self) -> TableData {
        let rows = self
            .systems
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let tgi_rank = i + 1;
                let fw_rank = self.flops_per_watt_rank(&s.name).expect("system is in its own list");
                let movement = fw_rank as i64 - tgi_rank as i64;
                let arrow = match movement.cmp(&0) {
                    std::cmp::Ordering::Greater => format!("▲{movement}"),
                    std::cmp::Ordering::Less => format!("▼{}", -movement),
                    std::cmp::Ordering::Equal => "=".to_string(),
                };
                vec![
                    tgi_rank.to_string(),
                    s.name.clone(),
                    format!("{:.1}", s.hpl_gflops),
                    format!("{:.2}", s.mflops_per_watt),
                    format!("#{fw_rank}"),
                    format!("{:.4}", s.tgi),
                    arrow,
                ]
            })
            .collect();
        TableData {
            id: "green500-style".into(),
            title: format!(
                "System-wide list (TGI vs {}; Δ = movement vs FLOPS/W rank)",
                self.reference
            ),
            headers: vec![
                "Rank".into(),
                "System".into(),
                "HPL GFLOPS".into(),
                "MFLOPS/W".into(),
                "FLOPS/W rank".into(),
                "TGI".into(),
                "Δ".into(),
            ],
            rows,
        }
    }
}

/// The built-in fleet: every cluster preset plus instructive variants.
pub fn builtin_fleet() -> Vec<ClusterSpec> {
    let mut fast_io = ClusterSpec::fire();
    fast_io.name = "Fire-FastIO".to_string();
    fast_io.shared_fs.server_cap_mbps *= 3.0;
    fast_io.shared_fs.per_client_mbps *= 2.0;
    vec![ClusterSpec::fire(), ClusterSpec::fire_gpu(), ClusterSpec::sandy(), fast_io]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::system_g_reference;
    use std::sync::OnceLock;

    fn list() -> &'static Green500StyleList {
        static LIST: OnceLock<Green500StyleList> = OnceLock::new();
        LIST.get_or_init(|| {
            Green500StyleList::build(&system_g_reference(), &builtin_fleet()).expect("fleet scores")
        })
    }

    #[test]
    fn list_is_sorted_by_tgi() {
        let l = list();
        assert_eq!(l.systems.len(), 4);
        let tgis: Vec<f64> = l.systems.iter().map(|s| s.tgi).collect();
        assert!(tgis.windows(2).all(|w| w[0] >= w[1]), "{tgis:?}");
    }

    #[test]
    fn gpu_system_moves_down_from_its_flops_per_watt_rank() {
        let l = list();
        let gpu_tgi_rank = l.systems.iter().position(|s| s.name == "Fire-GPU").expect("listed") + 1;
        let gpu_fw_rank = l.flops_per_watt_rank("Fire-GPU").expect("listed");
        assert!(
            gpu_fw_rank < gpu_tgi_rank,
            "GPU system should rank better under FLOPS/W ({gpu_fw_rank}) than TGI ({gpu_tgi_rank})"
        );
    }

    #[test]
    fn table_renders_movement_arrows() {
        let t = list().to_table();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.headers.len(), 7);
        let all_cells = t.rows.iter().flatten().cloned().collect::<String>();
        assert!(
            all_cells.contains('▲') || all_cells.contains('▼'),
            "at least one system should move between rankings: {all_cells}"
        );
    }

    #[test]
    fn unknown_system_has_no_rank() {
        assert_eq!(list().flops_per_watt_rank("nonexistent"), None);
    }
}
