//! Append-only JSONL run journal.
//!
//! Every [`tgi_suite::RunReport`] the harness produces can be appended to a
//! journal file: one JSON object per line, one line per (benchmark × repeat)
//! item, in suite order. Appending (never rewriting) means the journal
//! survives crashed or aborted runs — everything that finished before the
//! abort is already on disk — and successive runs accumulate into a single
//! machine-readable history.
//!
//! Line schema (see [`tgi_suite::RunRecord`]):
//!
//! ```json
//! {"benchmark": "hpl", "subsystem": "compute", "repeat": 0, "attempts": 1,
//!  "wall_secs": 12.3, "trace_samples": 61, "status": "success",
//!  "perf": 9.1e10, "perf_unit": "FLOPS", "power_watts": 215.0,
//!  "time_secs": 12.1, "energy_joules": 2601.5, "error": null}
//! ```
//!
//! `status` is `"success"`, `"failed"` (then `error` is set and the
//! measurement fields are null), or `"skipped"` (fail-fast abort before the
//! item started).

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use tgi_suite::{RunRecord, RunReport};

/// Errors while writing or reading a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line was not a valid journal record.
    Json {
        /// 1-based line number of the bad record.
        line: usize,
        /// Parser detail.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Json { line, detail } => {
                write!(f, "journal line {line} is not a valid record: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Appends every entry of `report` to the JSONL journal at `path`,
/// creating the file — and any missing parent directories (a fresh
/// `results/` dir must not be a setup step) — if needed. Returns the
/// number of lines written.
pub fn append(path: impl AsRef<Path>, report: &RunReport) -> Result<usize, JournalError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let records = report.records();
    let mut buf = String::new();
    for record in &records {
        buf.push_str(
            &serde_json::to_string(record)
                .expect("journal records contain only serializable plain data"),
        );
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())?;
    Ok(records.len())
}

/// Reads every record from the journal at `path`, skipping blank lines.
///
/// Strict: the first malformed line fails the whole read. Use
/// [`read_tolerant`] to recover everything that *is* parseable from a
/// journal whose writer died mid-append.
pub fn read(path: impl AsRef<Path>) -> Result<Vec<RunRecord>, JournalError> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            serde_json::from_str(line)
                .map_err(|e| JournalError::Json { line: i + 1, detail: e.to_string() })
        })
        .collect()
}

/// One journal line that [`read_tolerant`] could not parse.
#[derive(Debug, Clone)]
pub struct SkippedLine {
    /// 1-based line number of the unparseable record.
    pub line: usize,
    /// Parser detail for the failure.
    pub detail: String,
    /// The raw line content (truncated to 256 bytes so a report over a
    /// corrupt multi-megabyte line stays bounded).
    pub content: String,
}

/// The result of a tolerant journal read: everything parseable plus a
/// report of what was skipped.
#[derive(Debug, Clone)]
pub struct TolerantRead {
    /// Records recovered in journal order.
    pub records: Vec<RunRecord>,
    /// Lines that failed to parse, in order of appearance.
    pub skipped: Vec<SkippedLine>,
}

impl TolerantRead {
    /// True when every non-blank line parsed (the strict [`read`] would
    /// have succeeded).
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Reads the journal at `path`, recovering every parseable record and
/// reporting the rest instead of failing.
///
/// A run killed mid-`write_all` legitimately leaves a truncated trailing
/// record; strict [`read`] correctly refuses such a file, but replay
/// tooling usually wants the thousands of good records *and* a note about
/// the bad line. I/O errors (missing file, permissions) still fail: there
/// is nothing to recover from a file that cannot be opened.
pub fn read_tolerant(path: impl AsRef<Path>) -> Result<TolerantRead, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    let mut skipped = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(record) => records.push(record),
            Err(e) => {
                let mut content = line.to_string();
                if content.len() > 256 {
                    let mut cut = 256;
                    while !content.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    content.truncate(cut);
                }
                skipped.push(SkippedLine { line: i + 1, detail: e.to_string(), content });
            }
        }
    }
    Ok(TolerantRead { records, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgi_core::Measurement;
    use tgi_suite::{Benchmark, BenchmarkSuite, SuiteError, SuiteRunner};

    struct Fixed(&'static str);
    impl Benchmark for Fixed {
        fn id(&self) -> &str {
            self.0
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Ok(Measurement::new(
                self.0,
                tgi_core::Perf::gflops(1.0),
                tgi_core::Watts::new(100.0),
                tgi_core::Seconds::new(1.0),
            )?)
        }
    }

    struct Failing;
    impl Benchmark for Failing {
        fn id(&self) -> &str {
            "bad"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Err(SuiteError::Kernel("boom".into()))
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tgi-journal-{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp_path("roundtrip");
        let suite = BenchmarkSuite::new().with(Fixed("a")).with(Fixed("b"));
        let report = SuiteRunner::new().run(&suite);
        let written = append(&path, &report).unwrap();
        assert_eq!(written, 2);

        let records = read(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].benchmark, "a");
        assert_eq!(records[0].status, "success");
        assert_eq!(records[1].benchmark, "b");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn successive_runs_accumulate() {
        let path = tmp_path("accumulate");
        let suite = BenchmarkSuite::new().with(Fixed("a"));
        let report = SuiteRunner::new().run(&suite);
        append(&path, &report).unwrap();
        append(&path, &report).unwrap();
        assert_eq!(read(&path).unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failures_carry_error_text() {
        let path = tmp_path("failure");
        let suite = BenchmarkSuite::new().with(Failing);
        let report =
            SuiteRunner::new().failure_mode(tgi_suite::FailureMode::CollectErrors).run(&suite);
        append(&path, &report).unwrap();
        let records = read(&path).unwrap();
        assert_eq!(records[0].status, "failed");
        assert!(records[0].error.as_deref().unwrap().contains("boom"));
        assert!(records[0].perf.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_creates_missing_parent_directories() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("tgi-journal-fresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results").join("run.jsonl");

        let suite = BenchmarkSuite::new().with(Fixed("a"));
        let report = SuiteRunner::new().run(&suite);
        let written = append(&path, &report).expect("append must create parent dirs");
        assert_eq!(written, 1);
        assert_eq!(read(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_line_reports_line_number() {
        let path = tmp_path("badline");
        std::fs::write(&path, "{\"not\": \"a record\"}\n").unwrap();
        let err = read(&path).unwrap_err();
        assert!(matches!(err, JournalError::Json { line: 1, .. }), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    /// Writes a journal with two good records, then truncates the file
    /// mid-way through the second — the on-disk state a run killed during
    /// `write_all` leaves behind.
    fn truncated_journal(name: &str) -> std::path::PathBuf {
        let path = tmp_path(name);
        let suite = BenchmarkSuite::new().with(Fixed("a")).with(Fixed("b"));
        let report = SuiteRunner::new().run(&suite);
        append(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let second_start = text.find('\n').unwrap() + 1;
        let cut = second_start + (text.len() - second_start) / 2;
        std::fs::write(&path, &text[..cut]).unwrap();
        path
    }

    #[test]
    fn strict_read_still_rejects_truncated_file() {
        let path = truncated_journal("strict-truncated");
        let err = read(&path).unwrap_err();
        assert!(matches!(err, JournalError::Json { line: 2, .. }), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tolerant_read_recovers_good_records_and_reports_the_rest() {
        let path = truncated_journal("tolerant-truncated");
        let result = read_tolerant(&path).unwrap();
        assert!(!result.is_complete());
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].benchmark, "a");
        assert_eq!(result.skipped.len(), 1);
        assert_eq!(result.skipped[0].line, 2);
        assert!(!result.skipped[0].detail.is_empty());
        assert!(result.skipped[0].content.starts_with('{'), "raw line preserved");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tolerant_read_matches_strict_read_on_clean_journals() {
        let path = tmp_path("tolerant-clean");
        let suite = BenchmarkSuite::new().with(Fixed("a")).with(Fixed("b"));
        let report = SuiteRunner::new().run(&suite);
        append(&path, &report).unwrap();
        let strict = read(&path).unwrap();
        let tolerant = read_tolerant(&path).unwrap();
        assert!(tolerant.is_complete());
        assert_eq!(tolerant.records.len(), strict.len());
        for (a, b) in tolerant.records.iter().zip(&strict) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.status, b.status);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tolerant_read_still_fails_on_missing_file() {
        let err = read_tolerant("/nonexistent/tgi-journal-missing.jsonl").unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "got {err:?}");
    }

    #[test]
    fn tolerant_read_bounds_reported_content() {
        let path = tmp_path("tolerant-bigline");
        let big = format!("{{\"benchmark\": \"{}\"", "x".repeat(4096));
        std::fs::write(&path, format!("{big}\n")).unwrap();
        let result = read_tolerant(&path).unwrap();
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.skipped.len(), 1);
        assert!(result.skipped[0].content.len() <= 256);
        let _ = std::fs::remove_file(&path);
    }
}
