//! Synthetic Green500: fleet-scale (system × suite × weighting × mean)
//! TGI sweeps.
//!
//! [`crate::GridSweep`] studies one machine across core counts; a
//! [`FleetSweep`] studies *hundreds* of machines at full scale — the
//! ROADMAP's synthetic Green500. The hot-path guarantees mirror PR 4's
//! grid machinery, scaled up:
//!
//! * **Single-flight memoized simulation** — every system wraps its engine
//!   in [`cluster_sim::MemoizedEngine`], whose sharded cache guarantees a
//!   missed (suite, cores) key is simulated exactly once, no matter how
//!   many workers race on it ([`FleetSweep::duplicate_simulations`] stays
//!   0, hard-asserted by the fleet bench).
//! * **Zero per-point allocation once warm** — workers pull cached
//!   measurements via [`cluster_sim::MemoizedEngine::suite_measurements`]
//!   (an `Arc` clone) and score all weighting × mean cells with a reused
//!   `TgiEvaluator` + [`EvalScratch`] + cell buffer per worker chunk.
//! * **Bit-identical at any thread count** — each cell is a pure function
//!   of its point written at a fixed index, so
//!   [`FleetSweep::run`] equals [`FleetSweep::run_sequential`] bitwise
//!   (asserted in tests and the committed bench).
//!
//! The result is a structure-of-arrays [`FleetTable`]; its
//! [`FleetTable::green500_ranking`] view sorts one (suite, weighting,
//! mean) column into a [`tgi_core::Ranking`] — descending TGI, ties broken
//! on spec id.

use crate::report::csv_field;
use cluster_sim::{ClusterSpec, ExecutionEngine, MemoizedEngine, Workload};
use power_model::{AnomalyConfig, AnomalyCounts, AnomalyKind};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Ranking, ReferenceSystem, TgiError, Weighting};
use tgi_telemetry::{QuantileHistogram, QuantileSummary};

/// One fleet member: a memoizing engine plus the scale it runs at.
#[derive(Debug)]
struct FleetSystem {
    engine: MemoizedEngine,
    /// Process count for every suite: the full machine, as Green500 runs.
    cores: usize,
}

/// One workload-suite axis entry.
#[derive(Debug, Clone)]
struct FleetSuite {
    label: String,
    workloads: Vec<Workload>,
}

/// A configurable (system × suite × weighting × mean) fleet sweep.
///
/// ```no_run
/// use cluster_sim::{FleetConfig, Workload};
/// use tgi_harness::{system_g_reference, FleetSweep};
///
/// let sweep = FleetSweep::new()
///     .fleet(FleetConfig::new(42).systems(50).generate())
///     .suite("fire", Workload::fire_suite())
///     .paper_axes();
/// let table = sweep.run(&system_g_reference()).unwrap();
/// println!("{}", table.green500_ranking(0, 0, 0).unwrap());
/// ```
#[derive(Debug)]
pub struct FleetSweep {
    systems: Vec<FleetSystem>,
    names: Vec<String>,
    suites: Vec<FleetSuite>,
    weightings: Vec<Weighting>,
    means: Vec<MeanKind>,
    /// When set, every (system, suite) point's metered traces are scanned
    /// post-hoc and the per-point [`AnomalyCounts`] ride in the table.
    anomaly_scan: Option<AnomalyConfig>,
    /// Wall time of every point evaluation, across all runs of this sweep.
    /// Timing is wall-clock (nondeterministic), so it lives on the sweep —
    /// never in the bit-compared [`FleetTable`].
    cell_latency: QuantileHistogram,
}

/// Relative-error bound for the sweep's cell-latency sketch (1%).
const LATENCY_SKETCH_ALPHA: f64 = 0.01;

impl Default for FleetSweep {
    fn default() -> Self {
        FleetSweep {
            systems: Vec::new(),
            names: Vec::new(),
            suites: Vec::new(),
            weightings: Vec::new(),
            means: Vec::new(),
            anomaly_scan: None,
            cell_latency: QuantileHistogram::new(LATENCY_SKETCH_ALPHA),
        }
    }
}

impl FleetSweep {
    /// An empty sweep; add systems, at least one suite, and both score
    /// axes before running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one system, running at its full core count.
    pub fn system(mut self, spec: ClusterSpec) -> Self {
        let cores = spec.total_cores();
        self.names.push(spec.name.clone());
        self.systems
            .push(FleetSystem { engine: MemoizedEngine::new(ExecutionEngine::new(spec)), cores });
        self
    }

    /// Appends a whole fleet of systems (e.g. from
    /// [`cluster_sim::FleetConfig::generate`]).
    pub fn fleet(self, specs: impl IntoIterator<Item = ClusterSpec>) -> Self {
        specs.into_iter().fold(self, |sweep, spec| sweep.system(spec))
    }

    /// Appends one workload suite evaluated on every system.
    pub fn suite(mut self, label: impl Into<String>, workloads: Vec<Workload>) -> Self {
        self.suites.push(FleetSuite { label: label.into(), workloads });
        self
    }

    /// Sets the weighting axis.
    pub fn weightings(mut self, weightings: &[Weighting]) -> Self {
        self.weightings = weightings.to_vec();
        self
    }

    /// Sets the mean axis.
    pub fn means(mut self, means: &[MeanKind]) -> Self {
        self.means = means.to_vec();
        self
    }

    /// Scans every (system, suite) point's metered traces for power
    /// anomalies after scoring; the per-point tallies ride in the
    /// resulting [`FleetTable`] (see [`FleetTable::anomaly_counts`]).
    /// The simulated traces are deterministic, so the tallies are too —
    /// parallel and sequential runs still match bitwise.
    pub fn scan_anomalies(mut self, config: AnomalyConfig) -> Self {
        self.anomaly_scan = Some(config);
        self
    }

    /// The paper's §III axes: four weighting schemes × three mean kinds.
    pub fn paper_axes(self) -> Self {
        self.weightings(&[
            Weighting::Arithmetic,
            Weighting::Time,
            Weighting::Energy,
            Weighting::Power,
        ])
        .means(&[MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic])
    }

    /// Number of systems in the fleet.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Simulation cache statistics summed over the fleet, `(hits, misses)`.
    pub fn memo_stats(&self) -> (usize, usize) {
        self.systems.iter().fold((0, 0), |(h, m), s| (h + s.engine.hits(), m + s.engine.misses()))
    }

    /// Calls that blocked on an in-flight simulation instead of
    /// re-simulating, summed over the fleet.
    pub fn inflight_waits(&self) -> usize {
        self.systems.iter().map(|s| s.engine.inflight_waits()).sum()
    }

    /// Redundant simulations across the fleet — the single-flight memo
    /// keeps this at 0, which the fleet bench hard-asserts.
    pub fn duplicate_simulations(&self) -> usize {
        self.systems.iter().map(|s| s.engine.duplicate_simulations()).sum()
    }

    /// Wall-time quantiles of every point evaluation so far, in seconds —
    /// cumulative over all [`FleetSweep::run`] / [`FleetSweep::run_sequential`]
    /// calls on this sweep. A warm second run's p50 collapsing toward the
    /// cache-hit cost is the memoization showing up as an SLO-style number.
    /// Timing is nondeterministic, so it is exposed here and never stored
    /// in the bit-compared [`FleetTable`].
    pub fn cell_latency(&self) -> QuantileSummary {
        self.cell_latency.summary()
    }

    fn check_axes(&self) -> Result<(), TgiError> {
        if self.systems.is_empty()
            || self.suites.is_empty()
            || self.weightings.is_empty()
            || self.means.is_empty()
        {
            return Err(TgiError::DegenerateStatistic(
                "a fleet sweep needs systems, a suite, weightings, and means",
            ));
        }
        Ok(())
    }

    /// Scores every cell of one (system, suite) point into `out`
    /// (weighting-major). Warm points allocate nothing: cached
    /// measurements arrive as an `Arc` clone and the scratch buffers are
    /// caller-owned.
    fn eval_point(
        &self,
        evaluator: &TgiEvaluator<'_>,
        point: usize,
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), TgiError> {
        let started = Instant::now();
        let system = &self.systems[point / self.suites.len()];
        let suite = &self.suites[point % self.suites.len()];
        let measurements = system.engine.suite_measurements(&suite.workloads, system.cores);
        let result = evaluator.evaluate_cells_into(
            &measurements,
            &self.weightings,
            &self.means,
            scratch,
            out,
        );
        // The sketch is `&self` and lock-free, so workers share it directly.
        self.cell_latency.observe(started.elapsed().as_secs_f64());
        result
    }

    /// Evaluates the fleet in parallel over the rayon shim. Bit-identical
    /// to [`FleetSweep::run_sequential`] at any thread count.
    ///
    /// Errors if an axis is empty or any evaluation fails (missing
    /// reference entry, invalid weights, …).
    pub fn run(&self, reference: &ReferenceSystem) -> Result<FleetTable, TgiError> {
        self.check_axes()?;
        let cells_per_point = self.weightings.len() * self.means.len();
        let points = self.systems.len() * self.suites.len();
        let _span = tgi_telemetry::span_cat("fleet.run", "harness")
            .field("systems", self.systems.len())
            .field("suites", self.suites.len())
            .field("cells", points * cells_per_point);

        let mut values = vec![0.0f64; points * cells_per_point];
        // Chunk points so each worker task reuses one evaluator, scratch,
        // and cell buffer across its whole chunk — per-worker state without
        // thread-locals, and still enough chunks to load every thread.
        let points_per_chunk = points.div_ceil(rayon::current_num_threads() * 4).max(1);
        let first_error: Mutex<Option<TgiError>> = Mutex::new(None);
        values.par_chunks_mut(points_per_chunk * cells_per_point).enumerate().for_each(
            |(chunk_idx, chunk)| {
                let evaluator = TgiEvaluator::new(reference);
                let mut scratch = EvalScratch::with_capacity(
                    self.suites.iter().map(|s| s.workloads.len()).max().unwrap_or(0),
                );
                let mut cells = Vec::with_capacity(cells_per_point);
                let base = chunk_idx * points_per_chunk;
                for (i, slot) in chunk.chunks_mut(cells_per_point).enumerate() {
                    match self.eval_point(&evaluator, base + i, &mut scratch, &mut cells) {
                        Ok(()) => slot.copy_from_slice(&cells),
                        Err(e) => {
                            first_error.lock().expect("error slot").get_or_insert(e);
                            return;
                        }
                    }
                }
            },
        );
        if let Some(e) = first_error.into_inner().expect("error slot") {
            return Err(e);
        }
        Ok(self.table(reference, values))
    }

    /// The sequential reference sweep: same cells, same order, one thread,
    /// no chunking — the baseline [`FleetSweep::run`] must match bitwise.
    pub fn run_sequential(&self, reference: &ReferenceSystem) -> Result<FleetTable, TgiError> {
        self.check_axes()?;
        let cells_per_point = self.weightings.len() * self.means.len();
        let points = self.systems.len() * self.suites.len();
        let evaluator = TgiEvaluator::new(reference);
        let mut scratch = EvalScratch::with_capacity(
            self.suites.iter().map(|s| s.workloads.len()).max().unwrap_or(0),
        );
        let mut cells = Vec::with_capacity(cells_per_point);
        let mut values = Vec::with_capacity(points * cells_per_point);
        for point in 0..points {
            self.eval_point(&evaluator, point, &mut scratch, &mut cells)?;
            values.extend_from_slice(&cells);
        }
        Ok(self.table(reference, values))
    }

    /// Tallies anomaly events over every metered trace of one (system,
    /// suite) point. Runs against the warm memo cache (the sweep already
    /// simulated every point), and the simulated traces are deterministic,
    /// so the tallies are identical at any thread count.
    fn scan_point(&self, config: AnomalyConfig, point: usize) -> AnomalyCounts {
        let system = &self.systems[point / self.suites.len()];
        let suite = &self.suites[point % self.suites.len()];
        let runs = system.engine.run_suite(&suite.workloads, system.cores);
        let mut counts = AnomalyCounts::default();
        for run in runs.iter() {
            for event in power_model::anomaly::scan(&run.trace, config) {
                match event.kind {
                    AnomalyKind::Spike => counts.spikes += 1,
                    AnomalyKind::Drift => counts.drifts += 1,
                    AnomalyKind::Dropout => counts.dropouts += 1,
                }
            }
        }
        counts
    }

    fn table(&self, reference: &ReferenceSystem, values: Vec<f64>) -> FleetTable {
        let points = self.systems.len() * self.suites.len();
        let anomalies = self.anomaly_scan.map(|config| {
            let _span =
                tgi_telemetry::span_cat("fleet.scan_anomalies", "harness").field("points", points);
            (0..points).map(|p| self.scan_point(config, p)).collect()
        });
        FleetTable {
            reference_name: reference.name().to_string(),
            systems: self.names.clone(),
            nodes: self.systems.iter().map(|s| s.engine.engine().cluster().nodes).collect(),
            cores: self.systems.iter().map(|s| s.cores).collect(),
            pues: self.systems.iter().map(|s| s.engine.engine().cluster().pue).collect(),
            suites: self.suites.iter().map(|s| s.label.clone()).collect(),
            weightings: self.weightings.clone(),
            means: self.means.clone(),
            values,
            anomalies,
        }
    }
}

/// Structure-of-arrays result of a [`FleetSweep`]: per-system metadata
/// columns plus one flat row-major value block
/// (`[system][suite][weighting][mean]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTable {
    reference_name: String,
    systems: Vec<String>,
    nodes: Vec<usize>,
    cores: Vec<usize>,
    pues: Vec<f64>,
    suites: Vec<String>,
    weightings: Vec<Weighting>,
    means: Vec<MeanKind>,
    values: Vec<f64>,
    /// Per-(system, suite) anomaly tallies, point-major like `values` —
    /// present only when the sweep ran with [`FleetSweep::scan_anomalies`].
    /// Defaulted on deserialize so tables written before the observability
    /// plane still load.
    #[serde(default)]
    anomalies: Option<Vec<AnomalyCounts>>,
}

impl FleetTable {
    /// Name of the reference system the fleet was normalized against.
    pub fn reference_name(&self) -> &str {
        &self.reference_name
    }

    /// System ids, in fleet order.
    pub fn systems(&self) -> &[String] {
        &self.systems
    }

    /// Node counts, parallel to [`FleetTable::systems`].
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Core counts (the scale each system ran at), parallel to
    /// [`FleetTable::systems`].
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// Facility PUE factors, parallel to [`FleetTable::systems`].
    pub fn pues(&self) -> &[f64] {
        &self.pues
    }

    /// Suite labels, in sweep order.
    pub fn suites(&self) -> &[String] {
        &self.suites
    }

    /// The weighting axis.
    pub fn weightings(&self) -> &[Weighting] {
        &self.weightings
    }

    /// The mean axis.
    pub fn means(&self) -> &[MeanKind] {
        &self.means
    }

    /// The flat value block, row-major `[system][suite][weighting][mean]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The flat per-point anomaly block (`[system][suite]`), when the
    /// sweep scanned for anomalies.
    pub fn anomalies(&self) -> Option<&[AnomalyCounts]> {
        self.anomalies.as_deref()
    }

    /// Anomaly tallies for one (system, suite) point, `None` unless the
    /// sweep ran with [`FleetSweep::scan_anomalies`].
    ///
    /// # Panics
    /// Panics if an index is out of range on its axis.
    pub fn anomaly_counts(&self, system: usize, suite: usize) -> Option<AnomalyCounts> {
        assert!(system < self.systems.len(), "system index {system} out of range");
        assert!(suite < self.suites.len(), "suite index {suite} out of range");
        self.anomalies.as_ref().map(|a| a[system * self.suites.len() + suite])
    }

    /// Anomaly tallies summed over the whole fleet, `None` unless the
    /// sweep scanned for anomalies.
    pub fn total_anomalies(&self) -> Option<AnomalyCounts> {
        self.anomalies.as_ref().map(|a| {
            let mut total = AnomalyCounts::default();
            for counts in a {
                total.absorb(*counts);
            }
            total
        })
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table has no cells (cannot occur via [`FleetSweep::run`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The TGI value of one cell, by axis indices.
    ///
    /// # Panics
    /// Panics if an index is out of range on its axis.
    pub fn value(&self, system: usize, suite: usize, weighting: usize, mean: usize) -> f64 {
        assert!(system < self.systems.len(), "system index {system} out of range");
        assert!(suite < self.suites.len(), "suite index {suite} out of range");
        assert!(weighting < self.weightings.len(), "weighting index {weighting} out of range");
        assert!(mean < self.means.len(), "mean index {mean} out of range");
        let idx = ((system * self.suites.len() + suite) * self.weightings.len() + weighting)
            * self.means.len()
            + mean;
        self.values[idx]
    }

    /// The synthetic Green500 list for one (suite, weighting, mean)
    /// column: every system ranked by descending TGI via
    /// [`tgi_core::Ranking`], ties broken on spec id (stable across runs).
    ///
    /// Errors if a score is non-finite — impossible for tables built by
    /// [`FleetSweep::run`], which validates every cell, but tables can be
    /// deserialized from anywhere.
    pub fn green500_ranking(
        &self,
        suite: usize,
        weighting: usize,
        mean: usize,
    ) -> Result<Ranking, TgiError> {
        let mut ranking = Ranking::new();
        for (s, name) in self.systems.iter().enumerate() {
            ranking.try_add(name.clone(), self.value(s, suite, weighting, mean))?;
        }
        Ok(ranking)
    }

    /// Long-format CSV: one `system,nodes,cores,pue,suite,weighting,mean,tgi`
    /// row per cell, labels escaped per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("system,nodes,cores,pue,suite,weighting,mean,tgi\n");
        for (s, system) in self.systems.iter().enumerate() {
            let system = csv_field(system);
            for (su, suite) in self.suites.iter().enumerate() {
                let suite = csv_field(suite);
                for (w, weighting) in self.weightings.iter().enumerate() {
                    for (m, mean) in self.means.iter().enumerate() {
                        out.push_str(&format!(
                            "{system},{},{},{},{suite},{},{},{}\n",
                            self.nodes[s],
                            self.cores[s],
                            self.pues[s],
                            weighting.label().replace(' ', "_"),
                            mean.label(),
                            self.value(s, su, w, m)
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::system_g_reference;
    use cluster_sim::FleetConfig;
    use tgi_core::Tgi;

    fn small_sweep(systems: usize) -> FleetSweep {
        FleetSweep::new()
            .fleet(FleetConfig::new(42).systems(systems).generate())
            .suite("fire", Workload::fire_suite())
            .weightings(&[Weighting::Arithmetic, Weighting::Energy])
            .means(&[MeanKind::Arithmetic, MeanKind::Geometric])
    }

    #[test]
    fn parallel_matches_sequential_bitwise_at_several_thread_counts() {
        let sweep = small_sweep(6);
        let reference = system_g_reference();
        let sequential = sweep.run_sequential(&reference).unwrap();
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel = pool.install(|| sweep.run(&reference)).unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.values().iter().zip(sequential.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "thread count {threads} changed a cell");
            }
            assert_eq!(parallel, sequential);
        }
        assert_eq!(sweep.duplicate_simulations(), 0);
    }

    #[test]
    fn fleet_cells_match_the_builder_bitwise() {
        let fleet = FleetConfig::new(1).systems(3).generate();
        let reference = system_g_reference();
        let sweep = FleetSweep::new()
            .fleet(fleet.clone())
            .suite("fire", Workload::fire_suite())
            .weightings(&[Weighting::Time])
            .means(&[MeanKind::Harmonic]);
        let table = sweep.run(&reference).unwrap();
        for (s, spec) in fleet.into_iter().enumerate() {
            let cores = spec.total_cores();
            let measurements: Vec<_> = ExecutionEngine::new(spec)
                .run_suite(&Workload::fire_suite(), cores)
                .into_iter()
                .map(|r| r.measurement())
                .collect();
            let expected = Tgi::builder()
                .reference(reference.clone())
                .weighting(Weighting::Time)
                .mean(MeanKind::Harmonic)
                .measurements(measurements)
                .compute()
                .unwrap()
                .value();
            assert_eq!(table.value(s, 0, 0, 0).to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn repeated_runs_reuse_simulations() {
        let sweep = small_sweep(4);
        let reference = system_g_reference();
        sweep.run(&reference).unwrap();
        let (h1, m1) = sweep.memo_stats();
        assert_eq!(m1, 4, "one simulation per (system, suite) point");
        sweep.run(&reference).unwrap();
        let (h2, m2) = sweep.memo_stats();
        assert_eq!(m2, 4, "second run re-simulates nothing");
        assert_eq!(h2, h1 + 4);
        assert_eq!(sweep.duplicate_simulations(), 0);
    }

    #[test]
    fn green500_ranking_is_stable_and_complete() {
        let table = small_sweep(5).run(&system_g_reference()).unwrap();
        let ranking = table.green500_ranking(0, 0, 0).unwrap();
        assert_eq!(ranking.len(), 5);
        // Descending TGI.
        let tgis: Vec<f64> = ranking.entries().iter().map(|e| e.tgi).collect();
        assert!(tgis.windows(2).all(|w| w[0] >= w[1]), "not descending: {tgis:?}");
        // Every spec id appears exactly once.
        for name in table.systems() {
            assert!(ranking.rank_of(name).is_some(), "{name} missing from ranking");
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let reference = system_g_reference();
        let no_suite =
            FleetSweep::new().fleet(FleetConfig::new(2).systems(2).generate()).paper_axes();
        assert!(matches!(no_suite.run(&reference), Err(TgiError::DegenerateStatistic(_))));
        let no_systems = FleetSweep::new().suite("fire", Workload::fire_suite()).paper_axes();
        assert!(matches!(
            no_systems.run_sequential(&reference),
            Err(TgiError::DegenerateStatistic(_))
        ));
    }

    #[test]
    fn csv_has_one_row_per_cell_and_escapes_names() {
        let table = FleetSweep::new()
            .system(ClusterSpec { name: "g500, \"alpha\"".into(), ..ClusterSpec::fire() })
            .suite("fire", Workload::fire_suite())
            .weightings(&[Weighting::Arithmetic])
            .means(&[MeanKind::Arithmetic])
            .run(&system_g_reference())
            .unwrap();
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 1 + table.len());
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("\"g500, \"\"alpha\"\"\",8,128,1,fire,"), "row: {row}");
    }

    #[test]
    fn fleet_table_serde_round_trips() {
        let table = small_sweep(3).run(&system_g_reference()).unwrap();
        let json = serde_json::to_string(&table).unwrap();
        let back: FleetTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn anomaly_scan_is_deterministic_and_optional() {
        let reference = system_g_reference();
        // Without the builder call the table carries no anomaly block.
        let plain = small_sweep(3).run(&reference).unwrap();
        assert!(plain.anomalies().is_none());
        assert!(plain.anomaly_counts(0, 0).is_none());
        assert!(plain.total_anomalies().is_none());

        let sweep = small_sweep(3).scan_anomalies(power_model::AnomalyConfig::default());
        let sequential = sweep.run_sequential(&reference).unwrap();
        let scanned = sequential.anomalies().expect("scan requested");
        assert_eq!(scanned.len(), 3, "one tally per (system, suite) point");
        // Steady simulated runs with meter jitter are anomaly-free; the
        // scan must not hallucinate events on clean fleet traces.
        let total = sequential.total_anomalies().unwrap();
        assert_eq!(total, AnomalyCounts::default(), "clean fleet flagged: {total:?}");
        // Parallel runs produce the identical table, anomalies included.
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel = pool.install(|| sweep.run(&reference)).unwrap();
            assert_eq!(parallel, sequential, "thread count {threads} changed the table");
        }
    }

    #[test]
    fn anomaly_block_survives_serde_and_old_tables_default() {
        let table = small_sweep(2)
            .scan_anomalies(power_model::AnomalyConfig::default())
            .run(&system_g_reference())
            .unwrap();
        let json = serde_json::to_string(&table).unwrap();
        assert!(json.contains("\"anomalies\""), "{json}");
        let back: FleetTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
        // A pre-observability table (no `anomalies` key) still loads.
        let legacy = serde_json::to_string(&small_sweep(2).run(&system_g_reference()).unwrap())
            .unwrap()
            .replace(",\"anomalies\":null", "");
        assert!(!legacy.contains("anomalies"), "{legacy}");
        let old: FleetTable = serde_json::from_str(&legacy).unwrap();
        assert!(old.anomalies().is_none());
    }

    #[test]
    fn cell_latency_tracks_every_point_evaluation() {
        let sweep = small_sweep(4);
        let reference = system_g_reference();
        assert_eq!(sweep.cell_latency().count, 0);
        sweep.run_sequential(&reference).unwrap();
        let cold = sweep.cell_latency();
        assert_eq!(cold.count, 4, "one observation per (system, suite) point");
        assert!(cold.sum >= 0.0 && cold.p99 >= cold.p50);
        // A warm parallel run adds four more observations.
        sweep.run(&reference).unwrap();
        assert_eq!(sweep.cell_latency().count, 8);
    }

    #[test]
    fn multiple_suites_give_independent_columns() {
        let sweep = FleetSweep::new()
            .fleet(FleetConfig::new(3).systems(3).generate())
            .suite("fire", Workload::fire_suite())
            .suite(
                "half-fire",
                vec![
                    Workload::Hpl { n: 30_000 },
                    Workload::Stream { total_bytes: 5e13 },
                    Workload::Iozone { total_bytes: 2e10 },
                ],
            )
            .weightings(&[Weighting::Arithmetic])
            .means(&[MeanKind::Geometric]);
        let table = sweep.run(&system_g_reference()).unwrap();
        assert_eq!(table.suites().len(), 2);
        assert_eq!(table.len(), 3 * 2);
        let differs = (0..3).any(|s| table.value(s, 0, 0, 0) != table.value(s, 1, 0, 0));
        assert!(differs, "different suites should score differently");
    }
}
