//! One function per figure/table of the paper's evaluation (§IV).

use crate::report::{FigureData, Series, TableData};
use crate::sweep::FireSweep;
use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use tgi_core::{stats, MeanKind, Measurement, ReferenceSystem, Weighting};

/// Builds the SystemG reference system by running the full-scale reference
/// experiments (1024 cores): the reproduction of Table I's data collection.
pub fn system_g_reference() -> ReferenceSystem {
    let engine = ExecutionEngine::new(ClusterSpec::system_g());
    let mut builder = ReferenceSystem::builder("SystemG");
    for w in Workload::system_g_suite() {
        builder = builder.benchmark(engine.run(w, 1024).measurement());
    }
    builder.build().expect("SystemG suite is non-empty and unique")
}

/// Figure 2: energy efficiency of HPL (MFLOPS/W) vs number of MPI processes
/// on the Fire cluster.
pub fn fig2_hpl_efficiency(sweep: &FireSweep) -> FigureData {
    let pairs: Vec<(f64, f64)> = sweep
        .efficiency_series("hpl")
        .into_iter()
        .map(|(x, ee)| (x, ee / 1e6)) // FLOPS/W → MFLOPS/W
        .collect();
    FigureData {
        id: "fig2".into(),
        title: "Energy Efficiency of HPL".into(),
        x_label: "processes".into(),
        y_label: "MFLOPS/Watt".into(),
        series: vec![Series::from_pairs("MFLOPS/Watt", &pairs)],
    }
}

/// Figure 3: energy efficiency of STREAM (MB/s per watt) vs number of MPI
/// processes on the Fire cluster.
pub fn fig3_stream_efficiency(sweep: &FireSweep) -> FigureData {
    let pairs: Vec<(f64, f64)> = sweep
        .efficiency_series("stream")
        .into_iter()
        .map(|(x, ee)| (x, ee / 1e6)) // B/s per W → MB/s per W
        .collect();
    FigureData {
        id: "fig3".into(),
        title: "Energy Efficiency of Stream".into(),
        x_label: "processes".into(),
        y_label: "MBPS/Watt".into(),
        series: vec![Series::from_pairs("MBPS/Watt", &pairs)],
    }
}

/// Figure 4: energy efficiency of IOzone (MB/s per watt) vs number of nodes
/// on the Fire cluster.
pub fn fig4_iozone_efficiency(sweep: &FireSweep) -> FigureData {
    let cores_per_node = ClusterSpec::fire().node.cores() as f64;
    let pairs: Vec<(f64, f64)> = sweep
        .efficiency_series("iozone")
        .into_iter()
        .map(|(cores, ee)| ((cores / cores_per_node).ceil(), ee / 1e6))
        .collect();
    FigureData {
        id: "fig4".into(),
        title: "Energy Efficiency of IOzone".into(),
        x_label: "nodes".into(),
        y_label: "MBPS/Watt".into(),
        series: vec![Series::from_pairs("MBPS/Watt", &pairs)],
    }
}

/// Figure 5: TGI using the arithmetic mean vs number of cores on Fire.
pub fn fig5_tgi_arithmetic(sweep: &FireSweep, reference: &ReferenceSystem) -> FigureData {
    let values = sweep
        .tgi_values(reference, &Weighting::Arithmetic, MeanKind::Arithmetic)
        .expect("sweep measurements match the reference suite");
    let pairs: Vec<(f64, f64)> =
        sweep.points().iter().zip(&values).map(|(p, &v)| (p.cores as f64, v)).collect();
    FigureData {
        id: "fig5".into(),
        title: "TGI using Arithmetic Mean".into(),
        x_label: "cores".into(),
        y_label: "Green Index".into(),
        series: vec![Series::from_pairs("Green Index", &pairs)],
    }
}

/// Figure 6: TGI using the weighted arithmetic mean — time, power, and
/// energy weights — vs number of cores on Fire.
pub fn fig6_tgi_weighted(sweep: &FireSweep, reference: &ReferenceSystem) -> FigureData {
    let mut series = Vec::new();
    for (w, label) in [
        (Weighting::Time, "Weights Using Time"),
        (Weighting::Power, "Weights Using Power"),
        (Weighting::Energy, "Weights Using Energy"),
    ] {
        let values = sweep
            .tgi_values(reference, &w, MeanKind::Arithmetic)
            .expect("sweep measurements match the reference suite");
        let pairs: Vec<(f64, f64)> =
            sweep.points().iter().zip(&values).map(|(p, &v)| (p.cores as f64, v)).collect();
        series.push(Series::from_pairs(label, &pairs));
    }
    FigureData {
        id: "fig6".into(),
        title: "TGI using Weighted Arithmetic Mean".into(),
        x_label: "cores".into(),
        y_label: "Green Index".into(),
        series,
    }
}

fn fmt_power_kw(m: &Measurement) -> String {
    format!("{:.2} KW", m.power().kilowatts())
}

/// Table I: performance achieved and power consumed by the individual
/// benchmarks on SystemG.
pub fn table1_reference_performance(reference: &ReferenceSystem) -> TableData {
    // Paper order: HPL, STREAM, IOzone.
    let mut rows = Vec::new();
    for id in ["hpl", "stream", "iozone"] {
        if let Some(m) = reference.measurement(id) {
            rows.push(vec![
                display_name(id).to_string(),
                m.performance().to_string(),
                fmt_power_kw(m),
            ]);
        }
    }
    TableData {
        id: "table1".into(),
        title: "Performance on SystemG".into(),
        headers: vec!["Benchmark".into(), "Performance".into(), "Power".into()],
        rows,
    }
}

fn display_name(id: &str) -> &str {
    match id {
        "hpl" => "HPL",
        "stream" => "Stream",
        "iozone" => "IOzone",
        other => other,
    }
}

/// The Pearson correlations between each benchmark's EE series and the TGI
/// series under one weighting, keyed by benchmark id.
pub fn pcc_for_weighting(
    sweep: &FireSweep,
    reference: &ReferenceSystem,
    weighting: Weighting,
) -> Vec<(String, f64)> {
    let tgi: Vec<f64> = sweep
        .tgi_values(reference, &weighting, MeanKind::Arithmetic)
        .expect("sweep measurements match the reference suite");
    ["iozone", "stream", "hpl"]
        .iter()
        .map(|&b| {
            let ee: Vec<f64> = sweep.efficiency_series(b).iter().map(|&(_, y)| y).collect();
            let r = stats::pearson(&ee, &tgi).expect("non-degenerate sweep series");
            (b.to_string(), r)
        })
        .collect()
}

/// Table II: PCC between the energy efficiency of individual benchmarks and
/// the TGI metric using different weights. The paper's table has the
/// Time/Energy/Power columns; the arithmetic-mean column reproduces the
/// values quoted in §IV-B's text (.99/.96/.58).
pub fn table2_pcc(sweep: &FireSweep, reference: &ReferenceSystem) -> TableData {
    let am = pcc_for_weighting(sweep, reference, Weighting::Arithmetic);
    let time = pcc_for_weighting(sweep, reference, Weighting::Time);
    let energy = pcc_for_weighting(sweep, reference, Weighting::Energy);
    let power = pcc_for_weighting(sweep, reference, Weighting::Power);

    let rows = (0..3)
        .map(|i| {
            vec![
                display_name(&am[i].0).to_string(),
                format!("{:.2}", am[i].1),
                format!("{:.2}", time[i].1),
                format!("{:.2}", energy[i].1),
                format!("{:.2}", power[i].1),
            ]
        })
        .collect();

    TableData {
        id: "table2".into(),
        title: "PCC between energy efficiency of individual benchmarks and TGI metric using different weights".into(),
        headers: vec![
            "Benchmark".into(),
            "Arithmetic".into(),
            "Time".into(),
            "Energy".into(),
            "Power".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> (FireSweep, ReferenceSystem) {
        (FireSweep::run(), system_g_reference())
    }

    #[test]
    fn reference_anchors_table1() {
        let r = system_g_reference();
        let hpl = r.measurement("hpl").unwrap();
        // Table I anchor: 8.1 TFLOPS (±2% calibration band).
        let tflops = hpl.performance().value() / 1e12;
        assert!((tflops - 8.1).abs() < 0.17, "SystemG HPL {tflops} TFLOPS");
        // 128 dual-socket nodes under HPL draw tens of kW.
        let kw = hpl.power().kilowatts();
        assert!((20.0..45.0).contains(&kw), "SystemG HPL power {kw} kW");
        assert!(r.measurement("stream").is_some());
        assert!(r.measurement("iozone").is_some());
    }

    #[test]
    fn fig2_shape_rises_to_peak_with_mild_tail_dip() {
        let (sweep, _) = fixtures();
        let fig = fig2_hpl_efficiency(&sweep);
        let ys = fig.series[0].ys();
        assert_eq!(ys.len(), 8);
        assert!(ys[1] > ys[0] && ys[2] > ys[1] && ys[3] > ys[2], "rising: {ys:?}");
        let peak = ys.iter().cloned().fold(0.0, f64::max);
        let last = *ys.last().unwrap();
        assert!(last < peak && last > 0.7 * peak, "mild tail dip: {ys:?}");
        // Peak lands in the tens of MFLOPS/W (90 GFLOPS at ~2–3 kW).
        assert!((15.0..60.0).contains(&peak), "peak HPL EE {peak} MFLOPS/W");
    }

    #[test]
    fn fig3_shape_rising_saturating() {
        let (sweep, _) = fixtures();
        let fig = fig3_stream_efficiency(&sweep);
        let ys = fig.series[0].ys();
        assert!(ys.windows(2).all(|w| w[1] >= w[0] * 0.98), "no collapse: {ys:?}");
        // Diminishing returns: last doubling gains less than the first.
        let gain_early = ys[1] / ys[0];
        let gain_late = ys[7] / ys[3];
        assert!(gain_late < gain_early, "saturation expected: {ys:?}");
    }

    #[test]
    fn fig4_shape_peaks_then_declines() {
        let (sweep, _) = fixtures();
        let fig = fig4_iozone_efficiency(&sweep);
        let ys = fig.series[0].ys();
        let xs = fig.series[0].xs();
        assert_eq!(xs, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let peak = ys.iter().cloned().fold(0.0, f64::max);
        assert!(*ys.last().unwrap() < peak, "tail must decline from peak: {ys:?}");
    }

    #[test]
    fn fig5_and_fig6_produce_full_series() {
        let (sweep, reference) = fixtures();
        let f5 = fig5_tgi_arithmetic(&sweep, &reference);
        assert_eq!(f5.series.len(), 1);
        assert_eq!(f5.series[0].points.len(), 8);
        assert!(f5.series[0].ys().iter().all(|&v| v > 0.0));

        let f6 = fig6_tgi_weighted(&sweep, &reference);
        assert_eq!(f6.series.len(), 3);
        for s in &f6.series {
            assert_eq!(s.points.len(), 8);
        }
    }

    #[test]
    fn table1_lists_three_benchmarks() {
        let (_, reference) = fixtures();
        let t = table1_reference_performance(&reference);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "HPL");
        assert!(t.rows[0][1].contains("TFLOPS"));
        assert!(t.rows[0][2].contains("KW"));
    }

    #[test]
    fn table2_has_paper_layout() {
        let (sweep, reference) = fixtures();
        let t = table2_pcc(&sweep, &reference);
        assert_eq!(t.headers.len(), 5);
        assert_eq!(t.rows.len(), 3);
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names, vec!["IOzone", "Stream", "HPL"]);
        // All cells parse as correlations in [-1, 1].
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((-1.0..=1.0).contains(&v), "{cell}");
            }
        }
    }

    /// The paper's headline correlation result (§IV-B + Table II):
    /// under the arithmetic mean, TGI tracks IOzone most closely, then
    /// STREAM, with HPL clearly lowest; under energy and power weights the
    /// correlation with HPL becomes the highest (the undesired behaviour the
    /// paper flags); time weights behave like the arithmetic mean.
    #[test]
    fn table2_reproduces_paper_correlation_pattern() {
        let (sweep, reference) = fixtures();

        let am = pcc_for_weighting(&sweep, &reference, Weighting::Arithmetic);
        let (io, st, hpl) = (am[0].1, am[1].1, am[2].1);
        assert!(io > 0.9, "PCC(TGI_am, IOzone) = {io}, paper: .99");
        assert!(st > 0.8, "PCC(TGI_am, Stream) = {st}, paper: .96");
        assert!(hpl < st && hpl < io, "HPL must correlate least: {hpl}");

        let time = pcc_for_weighting(&sweep, &reference, Weighting::Time);
        // Time weights preserve the AM ordering (io & stream above hpl).
        assert!(time[0].1 > time[2].1, "time: io {:?} vs hpl {:?}", time[0], time[2]);

        for (w, name) in [(Weighting::Energy, "energy"), (Weighting::Power, "power")] {
            let pcc = pcc_for_weighting(&sweep, &reference, w);
            let hpl_r = pcc[2].1;
            assert!(
                hpl_r >= pcc[0].1 - 0.02 && hpl_r >= pcc[1].1 - 0.02,
                "{name} weights must favour HPL: io={:.3} st={:.3} hpl={:.3}",
                pcc[0].1,
                pcc[1].1,
                hpl_r
            );
        }
    }
}
