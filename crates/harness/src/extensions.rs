//! Experiments beyond the paper's evaluation — its §VI future-work agenda.
//!
//! * [`gpu_platform_comparison`] — "the suitability of TGI to various kind
//!   of platforms, such as GPU based system, is of particular interest":
//!   score a GPU-accelerated Fire against the CPU-only Fire under both
//!   FLOPS/W and TGI.
//! * [`center_wide_tgi`] — "extend TGI metric to give a center-wide view of
//!   the energy efficiency by including components such as cooling
//!   infrastructure": TGI at the PDU vs at the facility meter.
//! * [`more_systems_ranking`] — "establish the general applicability of TGI
//!   by benchmarking more systems": a ranked list across every built-in
//!   cluster variant.

use crate::report::TableData;
use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use power_model::cooling::CoolingModel;
use tgi_core::{Measurement, Ranking, ReferenceSystem, Tgi, TgiError, Weighting};

fn run_suite(cluster: &ClusterSpec) -> Vec<Measurement> {
    ExecutionEngine::new(cluster.clone())
        .run_suite(&Workload::fire_suite(), cluster.total_cores())
        .into_iter()
        .map(|r| r.measurement())
        .collect()
}

fn tgi_of(
    reference: &ReferenceSystem,
    measurements: &[Measurement],
    weighting: Weighting,
) -> Result<f64, TgiError> {
    Ok(Tgi::builder()
        .reference(reference.clone())
        .weighting(weighting)
        .measurements(measurements.iter().cloned())
        .compute()?
        .value())
}

/// GPU-platform extension: CPU-only Fire vs GPU-accelerated Fire under
/// FLOPS/W (HPL only) and TGI (system-wide). The GPU system's FLOPS/W gain
/// is dramatic; its TGI gain is muted because memory and I/O did not get
/// faster while the hosts idle hotter — exactly the blind spot TGI exists
/// to expose.
pub fn gpu_platform_comparison(reference: &ReferenceSystem) -> Result<TableData, TgiError> {
    let mut rows = Vec::new();
    for cluster in [ClusterSpec::fire(), ClusterSpec::fire_gpu()] {
        let measurements = run_suite(&cluster);
        let hpl = measurements.iter().find(|m| m.id() == "hpl").expect("suite contains hpl");
        let mflops_per_w = hpl.energy_efficiency() / 1e6;
        let tgi = tgi_of(reference, &measurements, Weighting::Arithmetic)?;
        rows.push(vec![
            cluster.name.clone(),
            format!("{:.1}", hpl.performance().as_gflops()),
            format!("{:.2}", mflops_per_w),
            format!("{:.4}", tgi),
        ]);
    }
    // Relative gains row.
    let gain = |col: usize| -> f64 {
        let a: f64 = rows[0][col].parse().expect("numeric cell");
        let b: f64 = rows[1][col].parse().expect("numeric cell");
        b / a
    };
    rows.push(vec![
        "GPU gain".to_string(),
        format!("{:.2}x", gain(1)),
        format!("{:.2}x", gain(2)),
        format!("{:.2}x", gain(3)),
    ]);
    Ok(TableData {
        id: "ext-gpu".into(),
        title: "GPU platform extension: FLOPS/W vs TGI".into(),
        headers: vec!["System".into(), "HPL GFLOPS".into(), "MFLOPS/W".into(), "TGI (AM)".into()],
        rows,
    })
}

/// Center-wide extension: TGI of Fire computed from IT power and from
/// facility power under two cooling models.
pub fn center_wide_tgi(reference: &ReferenceSystem) -> Result<TableData, TgiError> {
    let measurements = run_suite(&ClusterSpec::fire());
    let facility = |cooling: &CoolingModel| -> Result<f64, TgiError> {
        let adjusted: Result<Vec<Measurement>, TgiError> = measurements
            .iter()
            .map(|m| {
                Measurement::new(
                    m.id(),
                    m.performance().clone(),
                    cooling.facility_power(m.power()),
                    m.time(),
                )
            })
            .collect();
        tgi_of(reference, &adjusted?, Weighting::Arithmetic)
    };

    let it = tgi_of(reference, &measurements, Weighting::Arithmetic)?;
    let legacy = facility(&CoolingModel::typical_2012())?;
    let modern = facility(&CoolingModel::free_cooled())?;
    Ok(TableData {
        id: "ext-cooling".into(),
        title: "Center-wide TGI: IT power vs facility power".into(),
        headers: vec!["View".into(), "PUE".into(), "TGI (AM)".into()],
        rows: vec![
            vec!["PDU (IT only)".into(), "1.00".into(), format!("{it:.4}")],
            vec!["legacy machine room".into(), "1.80".into(), format!("{legacy:.4}")],
            vec!["free-cooled facility".into(), "1.10".into(), format!("{modern:.4}")],
        ],
    })
}

/// "Benchmarking more systems": every built-in cluster variant ranked by
/// TGI against the SystemG reference.
pub fn more_systems_ranking(reference: &ReferenceSystem) -> Result<Ranking, TgiError> {
    let mut gpu_low_io = ClusterSpec::fire_gpu();
    gpu_low_io.name = "Fire-GPU-SlowFS".to_string();
    gpu_low_io.shared_fs.server_cap_mbps /= 2.0;

    let mut ranking = Ranking::new();
    for cluster in [ClusterSpec::fire(), ClusterSpec::fire_gpu(), ClusterSpec::sandy(), gpu_low_io]
    {
        let measurements = run_suite(&cluster);
        let result =
            Tgi::builder().reference(reference.clone()).measurements(measurements).compute()?;
        ranking.add_result(cluster.name.clone(), result);
    }
    // The reference itself always ranks at TGI = 1 by construction.
    let self_suite: Vec<Measurement> = reference.iter().map(|(_, m)| m.clone()).collect();
    let self_result =
        Tgi::builder().reference(reference.clone()).measurements(self_suite).compute()?;
    ranking.add_result(reference.name().to_string(), self_result);
    Ok(ranking)
}

/// DVFS extension: sweep the CPU clock from 50% to 100% of nominal on Fire
/// at full scale and report HPL energy efficiency and TGI at each setting.
///
/// The classic result appears: with a fixed idle floor and cubic dynamic
/// power, HPL's energy efficiency peaks at an *interior* frequency (~0.7 of
/// nominal here) — running flat out is not the greenest operating point.
pub fn dvfs_sweep(reference: &ReferenceSystem) -> Result<crate::report::FigureData, TgiError> {
    use crate::report::{FigureData, Series};
    let cluster = ClusterSpec::fire();
    let mut ee_pairs = Vec::new();
    let mut tgi_pairs = Vec::new();
    for step in 0..=10 {
        let ratio = 0.5 + 0.05 * step as f64;
        let engine = ExecutionEngine::new(cluster.clone()).with_frequency_ratio(ratio);
        let measurements: Vec<Measurement> = engine
            .run_suite(&Workload::fire_suite(), cluster.total_cores())
            .into_iter()
            .map(|r| r.measurement())
            .collect();
        let hpl = measurements.iter().find(|m| m.id() == "hpl").expect("hpl in suite");
        ee_pairs.push((ratio, hpl.energy_efficiency() / 1e6));
        tgi_pairs.push((ratio, tgi_of(reference, &measurements, Weighting::Arithmetic)?));
    }
    Ok(FigureData {
        id: "ext-dvfs".into(),
        title: "DVFS sweep: HPL efficiency and TGI vs CPU clock".into(),
        x_label: "clock ratio".into(),
        y_label: "MFLOPS/W | TGI".into(),
        series: vec![
            Series::from_pairs("HPL MFLOPS/W", &ee_pairs),
            Series::from_pairs("TGI (AM)", &tgi_pairs),
        ],
    })
}

/// Native miniature of Figure 2: the *real* distributed HPL (mini-MPI,
/// block-cyclic) swept over rank counts on this machine, with modeled
/// power sampled in the background — the same MFLOPS/W-vs-processes series
/// the paper plots, produced by actual computation and message passing.
pub fn native_hpl_scaling(
    n: usize,
    rank_counts: &[usize],
) -> Result<crate::report::FigureData, tgi_suite::SuiteError> {
    use crate::report::{FigureData, Series};
    use tgi_suite::native::NativeDistributedHpl;
    use tgi_suite::Benchmark;
    let mut pairs = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let m = NativeDistributedHpl::new(n, ranks).run()?;
        pairs.push((ranks as f64, m.energy_efficiency() / 1e6));
    }
    Ok(FigureData {
        id: "ext-native-fig2".into(),
        title: "Native Figure 2: distributed HPL MFLOPS/W vs ranks".into(),
        x_label: "ranks".into(),
        y_label: "MFLOPS/Watt".into(),
        series: vec![Series::from_pairs("MFLOPS/Watt", &pairs)],
    })
}

/// Central-tendency ablation (§III / John, CAN 2004): TGI of Fire at full
/// scale under every mean × weighting combination. The AM ≥ GM ≥ HM
/// ordering holds column-wise, and the geometric mean is the only one whose
/// score inverts exactly under a reference swap.
pub fn mean_ablation(reference: &ReferenceSystem) -> Result<TableData, TgiError> {
    use tgi_core::MeanKind;
    let measurements = run_suite(&ClusterSpec::fire());
    let mut rows = Vec::new();
    for mean in [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic] {
        let mut row = vec![mean.label().to_string()];
        for weighting in
            [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power]
        {
            let v = Tgi::builder()
                .mean(mean)
                .reference(reference.clone())
                .weighting(weighting)
                .measurements(measurements.iter().cloned())
                .compute()?
                .value();
            row.push(format!("{v:.4}"));
        }
        rows.push(row);
    }
    Ok(TableData {
        id: "ext-means".into(),
        title: "Central-tendency ablation: TGI under AM/GM/HM × weightings".into(),
        headers: vec![
            "Mean".into(),
            "Equal".into(),
            "Time".into(),
            "Energy".into(),
            "Power".into(),
        ],
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::system_g_reference;

    #[test]
    fn gpu_comparison_shows_muted_tgi_gain() {
        let reference = system_g_reference();
        let t = gpu_platform_comparison(&reference).unwrap();
        assert_eq!(t.rows.len(), 3);
        let flops_gain: f64 = t.rows[2][2].trim_end_matches('x').parse().expect("numeric");
        let tgi_gain: f64 = t.rows[2][3].trim_end_matches('x').parse().expect("numeric");
        assert!(flops_gain > 2.0, "FLOPS/W gain {flops_gain}");
        // The headline finding: the same upgrade that multiplies FLOPS/W
        // *lowers* the system-wide index — the GPUs' idle floor taxes the
        // memory and I/O benchmarks, which gained nothing.
        assert!(
            tgi_gain < 1.0,
            "TGI gain ({tgi_gain}) should be below 1 while FLOPS/W gains {flops_gain}x"
        );
    }

    #[test]
    fn center_wide_tgi_orders_by_pue() {
        let reference = system_g_reference();
        let t = center_wide_tgi(&reference).unwrap();
        let parse = |i: usize| -> f64 { t.rows[i][2].parse().expect("numeric") };
        let (it, legacy, modern) = (parse(0), parse(1), parse(2));
        assert!(it > modern && modern > legacy, "it={it} modern={modern} legacy={legacy}");
        // Fixed PUE divides TGI exactly (within the table's 4-decimal rounding).
        assert!((legacy - it / 1.8).abs() < 1e-3 * it);
    }

    #[test]
    fn native_hpl_scaling_produces_valid_series() {
        let fig = native_hpl_scaling(96, &[1, 2]).unwrap();
        assert_eq!(fig.series[0].points.len(), 2);
        assert!(fig.series[0].ys().iter().all(|&v| v > 0.0 && v.is_finite()));
    }

    #[test]
    fn table2_pattern_survives_run_to_run_noise() {
        // The paper's correlation result must not hinge on perfectly smooth
        // curves: with 1% run-to-run performance noise, the qualitative
        // pattern holds across seeds.
        let reference = system_g_reference();
        for seed in [1u64, 2, 3] {
            let sweep = crate::sweep::FireSweep::run_noisy(0.01, seed);
            let am =
                crate::experiments::pcc_for_weighting(&sweep, &reference, Weighting::Arithmetic);
            let (io, st, hpl) = (am[0].1, am[1].1, am[2].1);
            assert!(io > 0.85 && st > 0.85, "seed {seed}: io {io}, stream {st}");
            assert!(hpl < io && hpl < st, "seed {seed}: hpl {hpl} must be lowest");
            for (weighting, name) in [(Weighting::Energy, "energy"), (Weighting::Power, "power")] {
                let pcc = crate::experiments::pcc_for_weighting(&sweep, &reference, weighting);
                assert!(
                    pcc[2].1 > pcc[0].1 && pcc[2].1 > pcc[1].1,
                    "seed {seed}, {name}: hpl must top the column: {pcc:?}"
                );
            }
        }
    }

    #[test]
    fn mean_ablation_preserves_am_gm_hm_ordering() {
        let reference = system_g_reference();
        let t = mean_ablation(&reference).unwrap();
        assert_eq!(t.rows.len(), 3);
        // Column-wise: AM ≥ GM ≥ HM for every weighting.
        for col in 1..=4 {
            let am: f64 = t.rows[0][col].parse().expect("numeric");
            let gm: f64 = t.rows[1][col].parse().expect("numeric");
            let hm: f64 = t.rows[2][col].parse().expect("numeric");
            assert!(am >= gm && gm >= hm, "col {col}: {am} {gm} {hm}");
        }
    }

    #[test]
    fn dvfs_sweep_finds_interior_hpl_optimum() {
        let reference = system_g_reference();
        let fig = dvfs_sweep(&reference).unwrap();
        assert_eq!(fig.series.len(), 2);
        let ee = fig.series[0].ys();
        assert_eq!(ee.len(), 11);
        // The peak is strictly inside (not at 0.5 and not at 1.0).
        let peak_idx = ee
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!(peak_idx > 0 && peak_idx < ee.len() - 1, "peak at index {peak_idx}: {ee:?}");
        // TGI series is finite and positive everywhere.
        assert!(fig.series[1].ys().iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn more_systems_ranking_contains_all_and_reference_scores_one() {
        let reference = system_g_reference();
        let ranking = more_systems_ranking(&reference).unwrap();
        assert_eq!(ranking.len(), 5);
        let sysg =
            ranking.entries().iter().find(|e| e.name == "SystemG").expect("reference ranked");
        assert!((sysg.tgi - 1.0).abs() < 1e-12);
        // A slower filesystem must not rank above the same machine with the
        // faster one.
        let fast = ranking.rank_of("Fire-GPU").expect("ranked");
        let slow = ranking.rank_of("Fire-GPU-SlowFS").expect("ranked");
        assert!(fast < slow);
        // The 2012-generation machine tops the list: better on every axis.
        assert_eq!(ranking.rank_of("Sandy"), Some(1));
    }
}
