//! Parallel (cluster × cores × weighting × mean) TGI grid sweeps.
//!
//! The paper's artifacts are one-dimensional slices of a larger question:
//! how does TGI move across *clusters*, *scales*, *weighting schemes*, and
//! *mean kinds* at once? [`GridSweep`] evaluates that full grid:
//!
//! * **Simulation is memoized** per (workload set, process count) through
//!   [`cluster_sim::MemoizedEngine`], so the weighting and mean axes reuse
//!   simulated measurements instead of re-running cluster-sim — and
//!   repeated [`GridSweep::run`] calls on the same sweep reuse them too.
//! * **(cluster, cores) points run in parallel** over the rayon shim; each
//!   point then scores all weighting × mean cells with one
//!   [`TgiEvaluator::evaluate_cells_into`] call, which resolves the
//!   reference and computes the REE vector once per point.
//! * The result is a structure-of-arrays [`GridTable`] — one flat `f64`
//!   row-major value block plus its axis labels — ready for
//!   [`crate::report`] rendering, CSV export, and serde.
//!
//! Every cell is bit-identical to the equivalent
//! `Tgi::builder().….compute()` call (see `tgi_core::evaluator`).

use crate::report::{FigureData, Series, TableData};
use cluster_sim::{ClusterSpec, ExecutionEngine, MemoizedEngine, Workload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, ReferenceSystem, TgiError, Weighting};

/// One cluster axis entry: a labeled, memoizing engine plus the workload
/// set it runs at every core count.
#[derive(Debug)]
struct GridCluster {
    label: String,
    engine: MemoizedEngine,
    workloads: Vec<Workload>,
}

/// A configurable (cluster × cores × weighting × mean) TGI sweep.
///
/// Build the axes with the chaining methods, then call [`GridSweep::run`]
/// — any number of times; simulations are cached across runs.
///
/// ```no_run
/// use cluster_sim::ClusterSpec;
/// use tgi_harness::{system_g_reference, GridSweep};
/// use tgi_core::{MeanKind, Weighting};
///
/// let sweep = GridSweep::new()
///     .cluster("Fire", ClusterSpec::fire())
///     .cluster("Fire-GPU", ClusterSpec::fire_gpu())
///     .cores(&[64, 128])
///     .weightings(&[Weighting::Arithmetic, Weighting::Time])
///     .means(&[MeanKind::Arithmetic, MeanKind::Geometric]);
/// let table = sweep.run(&system_g_reference()).unwrap();
/// println!("{}", table.table_at("Fire", 128).unwrap().to_text());
/// ```
#[derive(Debug, Default)]
pub struct GridSweep {
    clusters: Vec<GridCluster>,
    cores: Vec<usize>,
    weightings: Vec<Weighting>,
    means: Vec<MeanKind>,
}

impl GridSweep {
    /// An empty sweep; populate every axis before running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cluster running the paper's Fire workload set on a default
    /// engine. Use [`GridSweep::cluster_with`] for custom engines or
    /// workload sets.
    pub fn cluster(self, label: impl Into<String>, spec: ClusterSpec) -> Self {
        self.cluster_with(label, ExecutionEngine::new(spec), Workload::fire_suite())
    }

    /// Adds a cluster with a pre-configured engine (noise, DVFS, meter
    /// serial) and an explicit workload set. Workload benchmark ids must
    /// match the reference system handed to [`GridSweep::run`].
    pub fn cluster_with(
        mut self,
        label: impl Into<String>,
        engine: ExecutionEngine,
        workloads: Vec<Workload>,
    ) -> Self {
        self.clusters.push(GridCluster {
            label: label.into(),
            engine: MemoizedEngine::new(engine),
            workloads,
        });
        self
    }

    /// Sets the core-count axis.
    pub fn cores(mut self, cores: &[usize]) -> Self {
        self.cores = cores.to_vec();
        self
    }

    /// Sets the weighting axis.
    pub fn weightings(mut self, weightings: &[Weighting]) -> Self {
        self.weightings = weightings.to_vec();
        self
    }

    /// Sets the mean axis.
    pub fn means(mut self, means: &[MeanKind]) -> Self {
        self.means = means.to_vec();
        self
    }

    /// The paper's study axes: the four §III weighting schemes and all
    /// three mean kinds.
    pub fn paper_axes(self) -> Self {
        self.weightings(&[
            Weighting::Arithmetic,
            Weighting::Time,
            Weighting::Energy,
            Weighting::Power,
        ])
        .means(&[MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic])
    }

    /// Simulation cache statistics, summed over all clusters, as
    /// `(hits, misses)`. After the first [`GridSweep::run`], misses equals
    /// clusters × cores; every later run only adds hits.
    pub fn memo_stats(&self) -> (usize, usize) {
        self.clusters.iter().fold((0, 0), |(h, m), c| (h + c.engine.hits(), m + c.engine.misses()))
    }

    /// Evaluates the full grid against `reference`, in parallel over the
    /// (cluster, cores) points.
    ///
    /// Errors if any axis is empty, if a core count is invalid for one of
    /// the clusters, or if an evaluation fails (missing reference entry,
    /// unit mismatch, invalid custom weights, …).
    pub fn run(&self, reference: &ReferenceSystem) -> Result<GridTable, TgiError> {
        if self.clusters.is_empty()
            || self.cores.is_empty()
            || self.weightings.is_empty()
            || self.means.is_empty()
        {
            return Err(TgiError::DegenerateStatistic("every grid axis needs at least one entry"));
        }
        for c in &self.clusters {
            let total = c.engine.engine().cluster().total_cores();
            for &cores in &self.cores {
                if cores == 0 || cores > total {
                    return Err(TgiError::OutOfRange {
                        quantity: "grid core count",
                        value: cores as f64,
                        lo: 1.0,
                        hi: total as f64,
                    });
                }
            }
        }

        let evaluator = TgiEvaluator::new(reference);
        let n_cores = self.cores.len();
        let cells_per_point = self.weightings.len() * self.means.len();
        let _sweep_span = tgi_telemetry::span_cat("grid.run", "harness")
            .field("clusters", self.clusters.len())
            .field("cores", n_cores)
            .field("cells", self.clusters.len() * n_cores * cells_per_point);
        let points: Vec<Result<Vec<f64>, TgiError>> = (0..self.clusters.len() * n_cores)
            .into_par_iter()
            .map(|t| {
                let cluster = &self.clusters[t / n_cores];
                let cores = self.cores[t % n_cores];
                let _point_span = tgi_telemetry::span_cat("grid.point", "harness")
                    .field("cluster", cluster.label.as_str())
                    .field("cores", cores);
                let measurements = cluster.engine.suite_measurements(&cluster.workloads, cores);
                let mut scratch = EvalScratch::with_capacity(measurements.len());
                let mut cells = Vec::with_capacity(cells_per_point);
                evaluator.evaluate_cells_into(
                    &measurements,
                    &self.weightings,
                    &self.means,
                    &mut scratch,
                    &mut cells,
                )?;
                Ok(cells)
            })
            .collect();

        let mut values = Vec::with_capacity(points.len() * cells_per_point);
        for point in points {
            values.extend(point?);
        }
        Ok(GridTable {
            reference_name: reference.name().to_string(),
            clusters: self.clusters.iter().map(|c| c.label.clone()).collect(),
            cores: self.cores.clone(),
            weightings: self.weightings.clone(),
            means: self.means.clone(),
            values,
        })
    }
}

/// Structure-of-arrays result of a [`GridSweep`]: the axis labels plus one
/// flat row-major value block (`[cluster][cores][weighting][mean]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTable {
    reference_name: String,
    clusters: Vec<String>,
    cores: Vec<usize>,
    weightings: Vec<Weighting>,
    means: Vec<MeanKind>,
    values: Vec<f64>,
}

impl GridTable {
    /// Name of the reference system the grid was normalized against.
    pub fn reference_name(&self) -> &str {
        &self.reference_name
    }

    /// Cluster labels, in sweep order.
    pub fn clusters(&self) -> &[String] {
        &self.clusters
    }

    /// The core-count axis.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// The weighting axis.
    pub fn weightings(&self) -> &[Weighting] {
        &self.weightings
    }

    /// The mean axis.
    pub fn means(&self) -> &[MeanKind] {
        &self.means
    }

    /// The flat value block, row-major `[cluster][cores][weighting][mean]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid has no cells (cannot occur via [`GridSweep::run`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn index(&self, cluster: usize, cores: usize, weighting: usize, mean: usize) -> usize {
        ((cluster * self.cores.len() + cores) * self.weightings.len() + weighting)
            * self.means.len()
            + mean
    }

    /// The TGI value of one cell, by axis indices.
    ///
    /// # Panics
    /// Panics if an index is out of range on its axis.
    pub fn value(&self, cluster: usize, cores: usize, weighting: usize, mean: usize) -> f64 {
        assert!(cluster < self.clusters.len(), "cluster index {cluster} out of range");
        assert!(cores < self.cores.len(), "cores index {cores} out of range");
        assert!(weighting < self.weightings.len(), "weighting index {weighting} out of range");
        assert!(mean < self.means.len(), "mean index {mean} out of range");
        self.values[self.index(cluster, cores, weighting, mean)]
    }

    fn cluster_index(&self, label: &str) -> Option<usize> {
        self.clusters.iter().position(|c| c == label)
    }

    /// The TGI-vs-cores series for one (cluster, weighting, mean) — the
    /// Figure 5/6 shape.
    pub fn series(&self, cluster: &str, weighting: usize, mean: usize) -> Option<Series> {
        let c = self.cluster_index(cluster)?;
        let pairs: Vec<(f64, f64)> = self
            .cores
            .iter()
            .enumerate()
            .map(|(k, &cores)| (cores as f64, self.value(c, k, weighting, mean)))
            .collect();
        Some(Series::from_pairs(
            format!(
                "{cluster} ({}, {})",
                self.weightings[weighting].label(),
                self.means[mean].label()
            ),
            &pairs,
        ))
    }

    /// A figure with one TGI-vs-cores series per cluster, for a fixed
    /// (weighting, mean) cell.
    pub fn figure(&self, weighting: usize, mean: usize) -> FigureData {
        let series = self
            .clusters
            .iter()
            .map(|label| self.series(label, weighting, mean).expect("label from own axis"))
            .collect();
        FigureData {
            id: "grid".into(),
            title: format!(
                "TGI vs cores ({} weights, {} mean, vs {})",
                self.weightings[weighting].label(),
                self.means[mean].label(),
                self.reference_name
            ),
            x_label: "cores".into(),
            y_label: "Green Index".into(),
            series,
        }
    }

    /// The weighting × mean table for one cluster at one core count, ready
    /// for text/CSV/Markdown rendering.
    pub fn table_at(&self, cluster: &str, cores: usize) -> Option<TableData> {
        let c = self.cluster_index(cluster)?;
        let k = self.cores.iter().position(|&x| x == cores)?;
        let mut headers = vec!["weighting".to_string()];
        headers.extend(self.means.iter().map(|m| m.label().to_string()));
        let rows = self
            .weightings
            .iter()
            .enumerate()
            .map(|(w, weighting)| {
                let mut row = vec![weighting.label().to_string()];
                row.extend((0..self.means.len()).map(|m| format!("{:.4}", self.value(c, k, w, m))));
                row
            })
            .collect();
        Some(TableData {
            id: format!("grid-{cluster}-{cores}"),
            title: format!("TGI of {cluster} at {cores} cores (vs {})", self.reference_name),
            headers,
            rows,
        })
    }

    /// Long-format CSV: one `cluster,cores,weighting,mean,tgi` row per
    /// cell, with labels escaped per RFC 4180 ([`crate::report::csv_field`])
    /// so cluster names containing commas or quotes can't corrupt rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cluster,cores,weighting,mean,tgi\n");
        for (c, cluster) in self.clusters.iter().enumerate() {
            let cluster = crate::report::csv_field(cluster);
            for (k, &cores) in self.cores.iter().enumerate() {
                for (w, weighting) in self.weightings.iter().enumerate() {
                    for (m, mean) in self.means.iter().enumerate() {
                        out.push_str(&format!(
                            "{cluster},{cores},{},{},{}\n",
                            weighting.label().replace(' ', "_"),
                            mean.label(),
                            self.value(c, k, w, m)
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::system_g_reference;
    use tgi_core::Tgi;

    fn small_sweep() -> GridSweep {
        GridSweep::new()
            .cluster("Fire", ClusterSpec::fire())
            .cores(&[64, 128])
            .weightings(&[Weighting::Arithmetic, Weighting::Energy])
            .means(&[MeanKind::Arithmetic, MeanKind::Geometric])
    }

    #[test]
    fn grid_cells_match_the_builder_bitwise() {
        let sweep = small_sweep();
        let reference = system_g_reference();
        let table = sweep.run(&reference).unwrap();
        assert_eq!(table.len(), 2 * 2 * 2);

        let engine = ExecutionEngine::new(ClusterSpec::fire());
        for (k, &cores) in table.cores().iter().enumerate() {
            let measurements: Vec<_> = engine
                .run_suite(&Workload::fire_suite(), cores)
                .into_iter()
                .map(|r| r.measurement())
                .collect();
            for (w, weighting) in table.weightings().iter().enumerate() {
                for (m, &mean) in table.means().iter().enumerate() {
                    let expected = Tgi::builder()
                        .reference(reference.clone())
                        .weighting(weighting.clone())
                        .mean(mean)
                        .measurements(measurements.iter().cloned())
                        .compute()
                        .unwrap()
                        .value();
                    assert_eq!(
                        table.value(0, k, w, m).to_bits(),
                        expected.to_bits(),
                        "cores={cores} {weighting} {}",
                        mean.label()
                    );
                }
            }
        }
    }

    #[test]
    fn simulations_are_memoized_across_runs() {
        let sweep = small_sweep();
        let reference = system_g_reference();
        let first = sweep.run(&reference).unwrap();
        let (h1, m1) = sweep.memo_stats();
        assert_eq!(m1, 2, "one simulation per (cluster, cores) point");
        assert_eq!(h1, 0);
        let second = sweep.run(&reference).unwrap();
        let (h2, m2) = sweep.memo_stats();
        assert_eq!(m2, 2, "second run re-simulates nothing");
        assert_eq!(h2, 2);
        assert_eq!(first, second);
    }

    #[test]
    fn empty_axes_and_bad_cores_are_rejected() {
        let reference = system_g_reference();
        let no_axes = GridSweep::new().cluster("Fire", ClusterSpec::fire());
        assert!(matches!(no_axes.run(&reference), Err(TgiError::DegenerateStatistic(_))));

        let oversubscribed = GridSweep::new()
            .cluster("Fire", ClusterSpec::fire())
            .cores(&[256])
            .weightings(&[Weighting::Arithmetic])
            .means(&[MeanKind::Arithmetic]);
        assert!(matches!(
            oversubscribed.run(&reference),
            Err(TgiError::OutOfRange { quantity: "grid core count", .. })
        ));
    }

    #[test]
    fn renders_series_figure_table_and_csv() {
        let table = small_sweep().run(&system_g_reference()).unwrap();
        let s = table.series("Fire", 0, 0).unwrap();
        assert_eq!(s.xs(), vec![64.0, 128.0]);
        assert!(table.series("Nope", 0, 0).is_none());

        let fig = table.figure(1, 1);
        assert_eq!(fig.series.len(), 1);
        assert!(fig.title.contains("energy-weighted"));
        assert!(fig.title.contains("geometric"));

        let t = table.table_at("Fire", 128).unwrap();
        assert_eq!(t.headers, vec!["weighting", "arithmetic", "geometric"]);
        assert_eq!(t.rows.len(), 2);
        assert!(table.table_at("Fire", 7).is_none());

        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 1 + table.len());
        assert!(csv.lines().nth(1).unwrap().starts_with("Fire,64,arithmetic_mean,arithmetic,"));
    }

    #[test]
    fn csv_escapes_comma_bearing_cluster_names() {
        // Generated fleet names are user-controllable strings; a comma (or
        // quote) in a label must not add phantom CSV columns.
        let sweep = GridSweep::new()
            .cluster("Fire, Mk. \"II\"", ClusterSpec::fire())
            .cores(&[64])
            .weightings(&[Weighting::Arithmetic])
            .means(&[MeanKind::Arithmetic]);
        let csv = sweep.run(&system_g_reference()).unwrap().to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("\"Fire, Mk. \"\"II\"\"\",64,"), "row: {row}");
        // Unquoting yields exactly the five columns of the header.
        let after_label = row.rsplit("\",").next().unwrap();
        assert_eq!(after_label.split(',').count(), 4);
    }

    #[test]
    fn grid_table_serde_round_trips() {
        let table = small_sweep().run(&system_g_reference()).unwrap();
        let json = serde_json::to_string(&table).unwrap();
        let back: GridTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusters(), table.clusters());
        assert_eq!(back.cores(), table.cores());
        assert_eq!(back.len(), table.len());
        for (a, b) in back.values().iter().zip(table.values()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1.0));
        }
    }
}
