//! CLI contract tests for the `calibrate` and `tgi-experiments` binaries.
//!
//! Same convention as `simulate_cli.rs`: `--help` is an answer, not an
//! error — stdout, exit 0. Parse errors keep the traditional contract:
//! usage on stderr, exit 2. Runtime failures exit 1 without panicking.

use std::process::Command;

fn calibrate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_calibrate"))
}

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgi-experiments"))
}

#[test]
fn calibrate_help_prints_to_stdout_and_exits_zero() {
    let out = calibrate().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: calibrate"), "stdout was: {stdout}");
    assert!(out.stderr.is_empty(), "help must not write to stderr");
}

#[test]
fn calibrate_short_help_matches_long_form() {
    let long = calibrate().arg("--help").output().expect("binary runs");
    let short = calibrate().arg("-h").output().expect("binary runs");
    assert_eq!(short.status.code(), Some(0));
    assert_eq!(short.stdout, long.stdout);
}

#[test]
fn calibrate_unknown_argument_exits_2_with_usage_on_stderr() {
    let out = calibrate().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr was: {stderr}");
    assert!(stderr.contains("usage: calibrate"), "stderr must carry usage");
    assert!(out.stdout.is_empty(), "parse errors must not write to stdout");
}

#[test]
fn experiments_help_prints_to_stdout_and_exits_zero() {
    let out = experiments().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: tgi-experiments"), "stdout was: {stdout}");
    assert!(stdout.contains("--csv"), "usage must document --csv");
    assert!(out.stderr.is_empty(), "help must not write to stderr");
}

#[test]
fn experiments_unknown_flag_exits_2_with_usage() {
    let out = experiments().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr was: {stderr}");
    assert!(stderr.contains("usage: tgi-experiments"), "stderr must carry usage");
    assert!(out.stdout.is_empty());
}

#[test]
fn experiments_unknown_artifact_exits_2_before_running_sweeps() {
    let out = experiments().arg("fig99").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact"), "stderr was: {stderr}");
    // Artifact validation happens before the (slow) reference/sweep runs.
    assert!(!stderr.contains("running SystemG"), "must fail before running: {stderr}");
}

#[test]
fn experiments_missing_flag_value_exits_2_with_usage() {
    for flag in ["--csv", "--json", "--markdown"] {
        let out = experiments().arg(flag).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{flag}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: tgi-experiments"), "{flag}: {stderr}");
    }
}
