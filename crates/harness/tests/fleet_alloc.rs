//! Proof of the fleet sweep's zero-allocation contract: once the memo
//! cache is warm, scoring a (system, suite) point — cached-measurement
//! lookup plus all weighting × mean cells — performs **no heap allocation
//! at all**, measured by a counting global allocator.
//!
//! This is the per-point guarantee `FleetSweep::run` relies on: its
//! workers run exactly this loop (lookup → `evaluate_cells_into` → copy)
//! with per-chunk reused buffers, so a warm 500-system sweep's hot path is
//! allocation-free.
//!
//! Single `#[test]` on purpose — concurrent tests would bump the global
//! counter and produce false positives.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cluster_sim::{ExecutionEngine, FleetConfig, MemoizedEngine, Workload};
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Weighting};
use tgi_harness::experiments::system_g_reference;

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates directly to `System`, only adding a counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_fleet_point_does_not_allocate() {
    let fleet = FleetConfig::new(42).systems(4).generate();
    let systems: Vec<(MemoizedEngine, usize)> = fleet
        .into_iter()
        .map(|spec| {
            let cores = spec.total_cores();
            (MemoizedEngine::new(ExecutionEngine::new(spec)), cores)
        })
        .collect();
    let suite = Workload::fire_suite();
    let reference = system_g_reference();
    let evaluator = TgiEvaluator::new(&reference);
    let weightings = [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power];
    let means = [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic];
    let mut scratch = EvalScratch::with_capacity(suite.len());
    let mut cells = Vec::with_capacity(weightings.len() * means.len());

    // Warm-up: simulate every system once (this allocates — traces, runs,
    // cached measurements) and score it once so scratch reaches steady
    // state.
    for (engine, cores) in &systems {
        let measurements = engine.suite_measurements(&suite, *cores);
        evaluator
            .evaluate_cells_into(&measurements, &weightings, &means, &mut scratch, &mut cells)
            .expect("valid fleet point");
    }

    // Measured region: the exact warm per-point path of FleetSweep::run,
    // many rounds over the whole fleet. The counter must not move. The
    // counter is process-global, so a stray lazy allocation on the libtest
    // harness thread can land inside the window; retry a few times — an
    // allocation intrinsic to the path would repeat in every attempt
    // (200 points per attempt), while harness noise is once-per-process.
    let mut delta = usize::MAX;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::SeqCst);
        let mut checksum = 0.0;
        for _ in 0..50 {
            for (engine, cores) in &systems {
                let measurements = engine.suite_measurements(&suite, *cores);
                evaluator
                    .evaluate_cells_into(
                        &measurements,
                        &weightings,
                        &means,
                        &mut scratch,
                        &mut cells,
                    )
                    .expect("valid fleet point");
                checksum += cells.iter().sum::<f64>();
            }
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert!(checksum.is_finite());
        delta = after - before;
        if delta == 0 {
            break;
        }
    }
    assert_eq!(
        delta, 0,
        "warm fleet point (cached suite_measurements + evaluate_cells_into) must not allocate"
    );
}
