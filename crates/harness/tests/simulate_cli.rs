//! CLI contract tests for the `tgi-simulate` binary.
//!
//! `--help` is an answer, not an error: it goes to stdout with exit 0.
//! Parse errors keep the traditional contract: usage on stderr, exit 2.

use std::path::PathBuf;
use std::process::Command;

fn simulate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tgi-simulate"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tgi-simulate-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn help_prints_to_stdout_and_exits_zero() {
    let out = simulate().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: tgi-simulate"), "stdout was: {stdout}");
    assert!(stdout.contains("--telemetry"), "usage must document --telemetry");
    assert!(stdout.contains("--trace-out"), "usage must document --trace-out");
    assert!(out.stderr.is_empty(), "help must not write to stderr");
}

#[test]
fn short_help_flag_matches_long_form() {
    let long = simulate().arg("--help").output().expect("binary runs");
    let short = simulate().arg("-h").output().expect("binary runs");
    assert_eq!(short.status.code(), Some(0));
    assert_eq!(short.stdout, long.stdout);
}

#[test]
fn unknown_flag_is_a_parse_error_on_stderr_with_exit_2() {
    let out = simulate().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr was: {stderr}");
    assert!(stderr.contains("usage: tgi-simulate"), "stderr must carry usage");
    assert!(out.stdout.is_empty(), "parse errors must not write to stdout");
}

#[test]
fn missing_required_flags_exit_2() {
    let out = simulate().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: tgi-simulate"));
}

#[test]
fn telemetry_flags_produce_exports_in_fresh_directories() {
    let dir = tmp_dir("exports");
    let prom = dir.join("metrics").join("run.prom");
    let trace = dir.join("traces").join("run.json");

    let out = simulate()
        .args(["--cluster", "fire", "--workload", "hpl", "--procs", "8"])
        .arg("--telemetry")
        .arg(&prom)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let prom_text = std::fs::read_to_string(&prom).expect("prometheus snapshot written");
    assert!(prom_text.contains("# TYPE"), "snapshot was: {prom_text}");
    let trace_text = std::fs::read_to_string(&trace).expect("chrome trace written");
    assert!(trace_text.contains("\"traceEvents\""), "trace was: {trace_text}");
    assert!(trace_text.contains("sim.run"), "run span missing from trace: {trace_text}");

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("telemetry summary"), "summary missing: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
