//! The uniform benchmark interface.

use power_model::PowerTrace;
use tgi_core::Measurement;

/// Errors from running a suite benchmark.
#[derive(Debug)]
pub enum SuiteError {
    /// The benchmark's own validation failed (e.g. HPL residual too large).
    ValidationFailed {
        /// Benchmark id.
        benchmark: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The underlying kernel reported an error.
    Kernel(String),
    /// Converting the raw result into a measurement failed.
    Metric(tgi_core::TgiError),
    /// Filesystem error during an I/O benchmark.
    Io(std::io::Error),
    /// The benchmark exceeded its wall-clock budget and was abandoned.
    Timeout {
        /// Benchmark id.
        benchmark: String,
        /// The budget that was exceeded, in seconds.
        seconds: f64,
    },
    /// The benchmark panicked while running.
    Panicked {
        /// Benchmark id.
        benchmark: String,
        /// Panic payload, when it was a string.
        detail: String,
    },
}

impl SuiteError {
    /// Whether retrying the same benchmark could plausibly succeed.
    ///
    /// Only I/O errors are considered transient (a busy scratch disk, an
    /// interrupted filesystem call). Validation failures, kernel errors,
    /// metric errors, panics, and timeouts are deterministic for a given
    /// configuration, so retrying would only repeat the cost.
    pub fn is_transient(&self) -> bool {
        matches!(self, SuiteError::Io(_))
    }
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::ValidationFailed { benchmark, detail } => {
                write!(f, "benchmark `{benchmark}` failed validation: {detail}")
            }
            SuiteError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            SuiteError::Metric(e) => write!(f, "metric error: {e}"),
            SuiteError::Io(e) => write!(f, "I/O error: {e}"),
            SuiteError::Timeout { benchmark, seconds } => {
                write!(
                    f,
                    "benchmark `{benchmark}` exceeded its {seconds} s timeout and was abandoned"
                )
            }
            SuiteError::Panicked { benchmark, detail } => {
                write!(f, "benchmark `{benchmark}` panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<tgi_core::TgiError> for SuiteError {
    fn from(e: tgi_core::TgiError) -> Self {
        SuiteError::Metric(e)
    }
}

impl From<std::io::Error> for SuiteError {
    fn from(e: std::io::Error) -> Self {
        SuiteError::Io(e)
    }
}

/// A benchmark run's measurement plus meter metadata for run reports.
#[derive(Debug, Clone)]
pub struct BenchmarkOutput {
    /// The validated measurement.
    pub measurement: Measurement,
    /// Number of power-trace samples the meter collected (0 when the
    /// benchmark has no sampled meter, e.g. simulated runs).
    pub trace_samples: usize,
    /// The sampled power trace itself, when the benchmark was metered.
    /// Carried so run reports can answer window/percentile queries against
    /// the indexed trace instead of only the scalar measurement.
    pub trace: Option<PowerTrace>,
}

impl BenchmarkOutput {
    /// An output with no meter trace (simulated benchmarks).
    pub fn unmetered(measurement: Measurement) -> Self {
        BenchmarkOutput { measurement, trace_samples: 0, trace: None }
    }

    /// An output carrying the sampled meter trace.
    pub fn metered(measurement: Measurement, trace: PowerTrace) -> Self {
        BenchmarkOutput { measurement, trace_samples: trace.len(), trace: Some(trace) }
    }
}

/// A benchmark that yields one measurement per run.
///
/// `Send + Sync` is required so the suite runner can execute benchmarks on
/// worker threads and abandon hung attempts. Implementors must provide at
/// least one of [`Benchmark::run`] or [`Benchmark::run_detailed`] — each has
/// a default implementation in terms of the other.
pub trait Benchmark: Send + Sync {
    /// Stable identifier, matching reference-system keys (`"hpl"`, …).
    fn id(&self) -> &str;

    /// Which subsystem this benchmark stresses (for reports).
    fn subsystem(&self) -> &'static str;

    /// Executes the benchmark and returns its measurement.
    fn run(&self) -> Result<Measurement, SuiteError> {
        self.run_detailed().map(|o| o.measurement)
    }

    /// Executes the benchmark, additionally reporting meter metadata.
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        self.run().map(BenchmarkOutput::unmetered)
    }

    /// Whether this benchmark needs exclusive use of the power meter.
    ///
    /// Metered native benchmarks return `true`: concurrent native runs
    /// would perturb each other's sampled power (one wall meter per node,
    /// as in the paper's setup), so the runner serializes them. Simulated
    /// benchmarks are pure computation and may fan out freely.
    fn exclusive_meter(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgi_core::{Perf, Seconds, Watts};

    struct Dummy;
    impl Benchmark for Dummy {
        fn id(&self) -> &str {
            "dummy"
        }
        fn subsystem(&self) -> &'static str {
            "none"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Ok(Measurement::new("dummy", Perf::gflops(1.0), Watts::new(100.0), Seconds::new(1.0))?)
        }
    }

    #[test]
    fn trait_is_object_safe_and_runs() {
        let b: Box<dyn Benchmark> = Box::new(Dummy);
        assert_eq!(b.id(), "dummy");
        let m = b.run().unwrap();
        assert_eq!(m.id(), "dummy");
    }

    #[test]
    fn error_display() {
        let e = SuiteError::ValidationFailed {
            benchmark: "hpl".into(),
            detail: "residual 20 > 16".into(),
        };
        assert!(e.to_string().contains("hpl"));
        assert!(e.to_string().contains("residual"));
        let k = SuiteError::Kernel("singular".into());
        assert!(k.to_string().contains("singular"));
    }

    #[test]
    fn error_conversions() {
        let t: SuiteError = tgi_core::TgiError::EmptyBenchmarkSet.into();
        assert!(matches!(t, SuiteError::Metric(_)));
        let io: SuiteError = std::io::Error::other("x").into();
        assert!(matches!(io, SuiteError::Io(_)));
    }
}
