//! Declarative suite configuration.
//!
//! A [`SuiteSpec`] describes which benchmarks to run and at what sizes, in
//! a serde-friendly shape, so a suite can be defined in a JSON file and
//! executed by the `tgi-native` binary — the "agreed benchmark recipe" role
//! that HPL's `HPL.dat` and IOzone's flag conventions play for the paper's
//! methodology.

use crate::benchmark::Benchmark;
use crate::native::{
    NativeComm, NativeDgemm, NativeDistributedHpl, NativeFft, NativeGups, NativeHpl, NativeIozone,
    NativePtrans, NativeStream,
};
use crate::suite::BenchmarkSuite;
use serde::{Deserialize, Serialize};

/// One benchmark entry in a suite spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum BenchmarkSpec {
    /// Shared-memory HPL of order `n`.
    Hpl {
        /// Problem order.
        n: usize,
    },
    /// Distributed HPL over the mini-MPI runtime.
    DistributedHpl {
        /// Problem order.
        n: usize,
        /// MPI ranks (threads).
        ranks: usize,
    },
    /// STREAM with the given array size and repetitions.
    Stream {
        /// Elements per array.
        array_size: usize,
        /// Repetitions per kernel (best time wins).
        ntimes: usize,
    },
    /// IOzone-style write test.
    Iozone {
        /// File size in bytes.
        file_size: u64,
        /// Whether to fsync (include flush in the timing).
        fsync: bool,
    },
    /// DGEMM of order `n`.
    Dgemm {
        /// Matrix order.
        n: usize,
    },
    /// FFT of length `n` (power of two).
    Fft {
        /// Transform length.
        n: usize,
    },
    /// PTRANS of order `n`.
    Ptrans {
        /// Matrix order.
        n: usize,
    },
    /// RandomAccess with a `2^log2_size`-word table.
    Gups {
        /// log₂ of the table size.
        log2_size: u32,
    },
    /// b_eff-style communication test.
    Comm {
        /// Communicating ranks.
        ranks: usize,
    },
}

impl BenchmarkSpec {
    fn build(&self) -> Box<dyn Benchmark> {
        match *self {
            BenchmarkSpec::Hpl { n } => Box::new(NativeHpl::new(n)),
            BenchmarkSpec::DistributedHpl { n, ranks } => {
                Box::new(NativeDistributedHpl::new(n, ranks))
            }
            BenchmarkSpec::Stream { array_size, ntimes } => {
                let mut b = NativeStream::new(array_size);
                b.config.ntimes = ntimes;
                Box::new(b)
            }
            BenchmarkSpec::Iozone { file_size, fsync } => {
                let mut b = NativeIozone::new(file_size);
                b.config.fsync = fsync;
                Box::new(b)
            }
            BenchmarkSpec::Dgemm { n } => Box::new(NativeDgemm::new(n)),
            BenchmarkSpec::Fft { n } => Box::new(NativeFft::new(n)),
            BenchmarkSpec::Ptrans { n } => Box::new(NativePtrans::new(n)),
            BenchmarkSpec::Gups { log2_size } => Box::new(NativeGups::new(log2_size)),
            BenchmarkSpec::Comm { ranks } => Box::new(NativeComm::new(ranks)),
        }
    }
}

/// A full suite description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Benchmarks in execution order.
    pub benchmarks: Vec<BenchmarkSpec>,
}

impl SuiteSpec {
    /// The paper's three-benchmark suite at laptop-friendly sizes.
    pub fn standard() -> Self {
        SuiteSpec {
            benchmarks: vec![
                BenchmarkSpec::Hpl { n: 1024 },
                BenchmarkSpec::Stream { array_size: 1 << 22, ntimes: 10 },
                BenchmarkSpec::Iozone { file_size: 64 << 20, fsync: true },
            ],
        }
    }

    /// A seconds-scale variant for tests and smoke runs.
    pub fn quick() -> Self {
        SuiteSpec {
            benchmarks: vec![
                BenchmarkSpec::Hpl { n: 128 },
                BenchmarkSpec::Stream { array_size: 1 << 16, ntimes: 3 },
                BenchmarkSpec::Iozone { file_size: 1 << 20, fsync: false },
            ],
        }
    }

    /// The seven-test HPCC-style suite (§I's model for multi-component
    /// benchmarking), sized for quick runs.
    pub fn hpcc_style() -> Self {
        SuiteSpec {
            benchmarks: vec![
                BenchmarkSpec::Hpl { n: 256 },
                BenchmarkSpec::Dgemm { n: 256 },
                BenchmarkSpec::Stream { array_size: 1 << 18, ntimes: 5 },
                BenchmarkSpec::Ptrans { n: 256 },
                BenchmarkSpec::Gups { log2_size: 16 },
                BenchmarkSpec::Fft { n: 1 << 14 },
                BenchmarkSpec::Comm { ranks: 4 },
            ],
        }
    }

    /// Materializes the executable suite.
    pub fn build(&self) -> BenchmarkSuite {
        let mut suite = BenchmarkSuite::new();
        for spec in &self.benchmarks {
            suite.push(spec.build());
        }
        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        assert_eq!(SuiteSpec::standard().benchmarks.len(), 3);
        assert_eq!(SuiteSpec::quick().benchmarks.len(), 3);
        assert_eq!(SuiteSpec::hpcc_style().benchmarks.len(), 7);
    }

    #[test]
    fn quick_suite_builds_and_runs() {
        let suite = SuiteSpec::quick().build();
        assert_eq!(suite.ids(), vec!["hpl", "stream", "iozone"]);
        let ms = suite.run_all().expect("quick suite runs");
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn json_round_trip() {
        let spec = SuiteSpec::hpcc_style();
        let json = serde_json::to_string_pretty(&spec).expect("serializable");
        let back: SuiteSpec = serde_json::from_str(&json).expect("parseable");
        assert_eq!(spec, back);
        // The tagged format is the documented one.
        assert!(json.contains("\"kind\": \"hpl\""));
        assert!(json.contains("\"kind\": \"gups\""));
    }

    #[test]
    fn unknown_kind_rejected() {
        let json = r#"{"benchmarks": [{"kind": "quantum", "qubits": 3}]}"#;
        assert!(serde_json::from_str::<SuiteSpec>(json).is_err());
    }

    #[test]
    fn distributed_hpl_spec_builds() {
        let spec =
            SuiteSpec { benchmarks: vec![BenchmarkSpec::DistributedHpl { n: 64, ranks: 2 }] };
        let suite = spec.build();
        assert_eq!(suite.ids(), vec!["hpl"]);
        let ms = suite.run_all().expect("runs");
        assert!(ms[0].performance().as_gflops() > 0.0);
    }
}
