//! Resilient, parallel execution of a [`BenchmarkSuite`].
//!
//! [`SuiteRunner`] supersedes the sequential fail-fast loop that
//! [`BenchmarkSuite::run_all`] used to be: it schedules every
//! (benchmark × repeat) item over a bounded worker pool, serializes
//! benchmarks that need exclusive use of the power meter, retries
//! transient failures with exponential backoff, abandons attempts that
//! exceed a wall-clock timeout, and records everything it did in a
//! [`RunReport`] whose entries serialize into an append-only JSONL run
//! journal (written by the harness).
//!
//! ## Execution model
//!
//! * Work items are the flattened cross product of benchmarks and
//!   repeats, in suite order. `parallelism` worker threads pull items
//!   from a shared queue; results land in per-item slots, so report
//!   order is deterministic regardless of scheduling.
//! * A benchmark whose [`Benchmark::exclusive_meter`] returns `true`
//!   (all metered native benchmarks) runs **fully exclusively**: its
//!   worker takes the write side of the runner's meter lock while every
//!   other item holds the read side, so a metered run overlaps with
//!   nothing — not even non-metered items. Concurrent metered runs
//!   would perturb each other's power trace (the paper's setup has one
//!   wall meter per node), and the native kernels are genuinely
//!   multi-threaded through the `rayon` shim (`TGI_NUM_THREADS`), so a
//!   metered kernel uses the whole machine: any concurrent item would
//!   both distort its sampled draw and steal its cores. Simulated and
//!   cluster benchmarks fan out freely among themselves.
//! * Each attempt runs on its own thread. If it exceeds the configured
//!   timeout the attempt is *abandoned* (the thread is detached, not
//!   killed — Rust has no safe thread cancellation) and reported as
//!   [`SuiteError::Timeout`]. An abandoned metered attempt may keep
//!   sampling until its kernel finishes; the meter token is released
//!   when the timeout fires, so a long-hung metered benchmark can
//!   overlap its successor's trace. Timeouts are a last-resort
//!   containment, not a precision instrument.
//! * A failed attempt is retried up to `retries` times iff the error
//!   [`SuiteError::is_transient`], sleeping `backoff × 2^attempt`
//!   between attempts. Deterministic failures (validation, kernel,
//!   panic, timeout) are never retried.
//! * Under [`FailureMode::FailFast`] the first exhausted failure stops
//!   the queue: unstarted items are reported as [`RunOutcome::Skipped`]
//!   (in-flight items finish normally). Under
//!   [`FailureMode::CollectErrors`] every item runs and the report
//!   carries all failures.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tgi_core::Measurement;

use crate::benchmark::{Benchmark, BenchmarkOutput, SuiteError};
use crate::suite::BenchmarkSuite;

/// What the runner does after a benchmark exhausts its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Stop scheduling new items; unstarted items are reported as skipped.
    FailFast,
    /// Keep going; the report collects every failure alongside successes.
    CollectErrors,
}

/// Configurable executor for a [`BenchmarkSuite`]. Builder-style.
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    parallelism: usize,
    repeats: usize,
    retries: usize,
    backoff: Duration,
    timeout: Option<Duration>,
    failure_mode: FailureMode,
}

impl Default for SuiteRunner {
    fn default() -> Self {
        SuiteRunner {
            parallelism: 1,
            repeats: 1,
            retries: 0,
            backoff: Duration::from_millis(50),
            timeout: None,
            failure_mode: FailureMode::FailFast,
        }
    }
}

impl SuiteRunner {
    /// A sequential, single-shot, fail-fast runner — the exact semantics
    /// `BenchmarkSuite::run_all` always had.
    pub fn new() -> Self {
        SuiteRunner::default()
    }

    /// Number of worker threads (clamped to at least 1).
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// How many times each benchmark runs (clamped to at least 1). Every
    /// repeat is a separate report entry.
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Extra attempts allowed after a transient failure.
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// Initial sleep before the first retry; doubles on each subsequent one.
    pub fn backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    /// Wall-clock budget per attempt; `None` (the default) waits forever.
    pub fn timeout(mut self, d: Option<Duration>) -> Self {
        self.timeout = d;
        self
    }

    /// Whether the first failure stops the run or is merely collected.
    pub fn failure_mode(mut self, mode: FailureMode) -> Self {
        self.failure_mode = mode;
        self
    }

    /// Executes the suite and reports what happened, item by item.
    pub fn run(&self, suite: &BenchmarkSuite) -> RunReport {
        let started = Instant::now();
        let benchmarks = suite.benchmarks();
        let items: Vec<(usize, usize)> =
            (0..benchmarks.len()).flat_map(|b| (0..self.repeats).map(move |r| (b, r))).collect();
        let _run_span = tgi_telemetry::span_cat("suite.run", "suite")
            .field("benchmarks", benchmarks.len())
            .field("items", items.len())
            .field("parallelism", self.parallelism);
        let slots: Vec<Mutex<Option<BenchmarkReport>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // Write side = metered item (exclusive machine), read side = everyone else.
        let meter = RwLock::new(());

        let workers = self.parallelism.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&(bench_idx, repeat)) = items.get(i) else {
                        break;
                    };
                    let bench = &benchmarks[bench_idx];
                    let report = if abort.load(Ordering::SeqCst) {
                        if tgi_telemetry::enabled() {
                            tgi_telemetry::counter!("tgi_suite_skipped_total").inc();
                        }
                        BenchmarkReport::skipped(bench.as_ref(), repeat)
                    } else {
                        let report = self.run_item(bench, repeat, &meter);
                        if matches!(report.outcome, RunOutcome::Failed(_))
                            && self.failure_mode == FailureMode::FailFast
                        {
                            abort.store(true, Ordering::SeqCst);
                        }
                        report
                    };
                    *slots[i].lock().expect("report slot poisoned") = Some(report);
                });
            }
        });

        let entries = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("report slot poisoned")
                    .expect("worker pool exited with an unfilled slot")
            })
            .collect();
        RunReport { entries, wall_secs: started.elapsed().as_secs_f64() }
    }

    /// Runs one (benchmark, repeat) item: attempts + retries + timeout.
    fn run_item(
        &self,
        bench: &Arc<dyn Benchmark>,
        repeat: usize,
        meter: &RwLock<()>,
    ) -> BenchmarkReport {
        let started = Instant::now();
        let item_span = tgi_telemetry::span_cat("suite.item", "suite")
            .field("benchmark", bench.id())
            .field("repeat", repeat)
            .field("metered", bench.exclusive_meter());
        let mut attempts = 0;
        let outcome = loop {
            attempts += 1;
            // Metered items take the write lock (run alone on the whole
            // machine); everything else shares the read lock so it can
            // overlap with other non-metered items but never with a
            // metered one.
            let lock_started = Instant::now();
            let write_guard;
            let read_guard;
            if bench.exclusive_meter() {
                write_guard = Some(meter.write().expect("meter lock poisoned"));
                read_guard = None;
            } else {
                write_guard = None;
                read_guard = Some(meter.read().expect("meter lock poisoned"));
            }
            if tgi_telemetry::enabled() {
                // Cumulative seconds every item spent waiting for its meter
                // token (write side for metered items, read side otherwise).
                tgi_telemetry::gauge!("tgi_suite_meter_wait_seconds")
                    .add(lock_started.elapsed().as_secs_f64());
            }
            let attempt_started = Instant::now();
            let result = self.attempt(bench);
            drop(write_guard);
            drop(read_guard);
            if tgi_telemetry::enabled() {
                tgi_telemetry::histogram!(
                    "tgi_suite_attempt_seconds",
                    &[0.001, 0.01, 0.1, 1.0, 10.0, 100.0]
                )
                .observe(attempt_started.elapsed().as_secs_f64());
            }
            match result {
                Ok(output) => break RunOutcome::Success(output),
                Err(e) if e.is_transient() && attempts <= self.retries => {
                    if tgi_telemetry::enabled() {
                        tgi_telemetry::counter!("tgi_suite_retries_total").inc();
                        tgi_telemetry::instant("suite.retry")
                            .field("benchmark", bench.id())
                            .field("attempt", attempts)
                            .end();
                    }
                    std::thread::sleep(self.backoff * 2u32.pow(attempts as u32 - 1));
                }
                Err(e) => break RunOutcome::Failed(e),
            }
        };
        if tgi_telemetry::enabled() {
            match &outcome {
                RunOutcome::Success(_) => {
                    tgi_telemetry::counter!("tgi_suite_successes_total").inc()
                }
                RunOutcome::Failed(SuiteError::Timeout { .. }) => {
                    tgi_telemetry::counter!("tgi_suite_timeouts_total").inc();
                    tgi_telemetry::counter!("tgi_suite_failures_total").inc();
                }
                RunOutcome::Failed(_) => tgi_telemetry::counter!("tgi_suite_failures_total").inc(),
                RunOutcome::Skipped => {}
            }
        }
        item_span.field("attempts", attempts).end();
        BenchmarkReport {
            benchmark: bench.id().to_string(),
            subsystem: bench.subsystem(),
            repeat,
            attempts,
            wall_secs: started.elapsed().as_secs_f64(),
            outcome,
        }
    }

    /// One attempt on a dedicated thread, bounded by the timeout.
    fn attempt(&self, bench: &Arc<dyn Benchmark>) -> Result<BenchmarkOutput, SuiteError> {
        let (tx, rx) = mpsc::channel();
        let worker = Arc::clone(bench);
        let handle = std::thread::spawn(move || {
            let span =
                tgi_telemetry::span_cat("suite.attempt", "suite").field("benchmark", worker.id());
            let result = worker.run_detailed();
            span.field("ok", result.is_ok()).end();
            // A send error only means the runner timed out and dropped
            // the receiver; the result is discarded either way.
            let _ = tx.send(result);
        });
        let received = match self.timeout {
            Some(budget) => rx.recv_timeout(budget),
            None => rx.recv().map_err(mpsc::RecvTimeoutError::from),
        };
        match received {
            Ok(result) => {
                let _ = handle.join();
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon the hung attempt: the thread is detached and
                // its eventual result is dropped with the receiver.
                Err(SuiteError::Timeout {
                    benchmark: bench.id().to_string(),
                    seconds: self.timeout.expect("timeout fired without a budget").as_secs_f64(),
                })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let detail = match handle.join() {
                    Err(payload) => payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| String::from("<non-string panic payload>")),
                    Ok(()) => String::from("<attempt thread exited without reporting>"),
                };
                Err(SuiteError::Panicked { benchmark: bench.id().to_string(), detail })
            }
        }
    }
}

/// How one (benchmark, repeat) item ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The benchmark produced a measurement.
    Success(BenchmarkOutput),
    /// Every allowed attempt failed; this is the last error.
    Failed(SuiteError),
    /// Never started because an earlier failure aborted the run
    /// (fail-fast mode only).
    Skipped,
}

/// The runner's record of one (benchmark, repeat) item.
#[derive(Debug)]
pub struct BenchmarkReport {
    /// Benchmark id.
    pub benchmark: String,
    /// Subsystem the benchmark stresses.
    pub subsystem: &'static str,
    /// Which repeat this entry is (0-based).
    pub repeat: usize,
    /// Attempts actually made (1 + retries taken; 0 when skipped).
    pub attempts: usize,
    /// Wall-clock seconds spent on this item, including retries/backoff.
    pub wall_secs: f64,
    /// How the item ended.
    pub outcome: RunOutcome,
}

impl BenchmarkReport {
    fn skipped(bench: &dyn Benchmark, repeat: usize) -> Self {
        BenchmarkReport {
            benchmark: bench.id().to_string(),
            subsystem: bench.subsystem(),
            repeat,
            attempts: 0,
            wall_secs: 0.0,
            outcome: RunOutcome::Skipped,
        }
    }

    /// The measurement, when the item succeeded.
    pub fn measurement(&self) -> Option<&Measurement> {
        match &self.outcome {
            RunOutcome::Success(output) => Some(&output.measurement),
            _ => None,
        }
    }

    /// Flattens the report into the serializable journal-record form.
    pub fn record(&self) -> RunRecord {
        let (status, m, trace_samples, error) = match &self.outcome {
            RunOutcome::Success(o) => ("success", Some(&o.measurement), o.trace_samples, None),
            RunOutcome::Failed(e) => ("failed", None, 0, Some(e.to_string())),
            RunOutcome::Skipped => ("skipped", None, 0, None),
        };
        RunRecord {
            benchmark: self.benchmark.clone(),
            subsystem: self.subsystem.to_string(),
            repeat: self.repeat,
            attempts: self.attempts,
            wall_secs: self.wall_secs,
            trace_samples,
            status: status.to_string(),
            perf: m.map(|m| m.performance().value()),
            perf_unit: m.map(|m| m.performance().unit().to_string()),
            power_watts: m.map(|m| m.power().value()),
            time_secs: m.map(|m| m.time().value()),
            energy_joules: m.map(|m| m.energy().value()),
            error,
        }
    }
}

/// One JSONL journal line: a [`BenchmarkReport`] flattened to plain data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark id.
    pub benchmark: String,
    /// Subsystem the benchmark stresses.
    pub subsystem: String,
    /// Which repeat this entry is (0-based).
    pub repeat: usize,
    /// Attempts actually made.
    pub attempts: usize,
    /// Wall-clock seconds spent on the item.
    pub wall_secs: f64,
    /// Power-trace samples collected (0 unless metered and successful).
    pub trace_samples: usize,
    /// `"success"`, `"failed"`, or `"skipped"`.
    pub status: String,
    /// Measured performance in canonical units (successes only).
    pub perf: Option<f64>,
    /// Unit label for `perf` (successes only).
    pub perf_unit: Option<String>,
    /// Average power in watts (successes only).
    pub power_watts: Option<f64>,
    /// Measured wall time in seconds (successes only).
    pub time_secs: Option<f64>,
    /// Integrated energy in joules (successes only).
    pub energy_joules: Option<f64>,
    /// Display form of the final error (failures only).
    pub error: Option<String>,
}

/// Everything a [`SuiteRunner::run`] did, in suite order.
#[derive(Debug)]
pub struct RunReport {
    /// One entry per (benchmark × repeat) item, in suite order.
    pub entries: Vec<BenchmarkReport>,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
}

impl RunReport {
    /// Successful measurements, in suite order.
    pub fn measurements(&self) -> Vec<&Measurement> {
        self.entries.iter().filter_map(|e| e.measurement()).collect()
    }

    /// Entries that ended in failure.
    pub fn failures(&self) -> Vec<&BenchmarkReport> {
        self.entries.iter().filter(|e| matches!(e.outcome, RunOutcome::Failed(_))).collect()
    }

    /// Whether every item produced a measurement.
    pub fn all_succeeded(&self) -> bool {
        self.entries.iter().all(|e| matches!(e.outcome, RunOutcome::Success(_)))
    }

    /// Journal-record form of every entry, in suite order.
    pub fn records(&self) -> Vec<RunRecord> {
        self.entries.iter().map(|e| e.record()).collect()
    }

    /// Collects the meter traces of every successful metered item into a
    /// [`power_model::TraceSet`] labeled `benchmark#repeat`, ready for
    /// parallel fleet analysis (aggregate energy, idle floor, window
    /// queries). Unmetered and failed items contribute nothing.
    pub fn trace_set(&self) -> power_model::TraceSet {
        let mut set = power_model::TraceSet::new();
        for entry in &self.entries {
            if let RunOutcome::Success(output) = &entry.outcome {
                if let Some(trace) = &output.trace {
                    set.push(format!("{}#{}", entry.benchmark, entry.repeat), trace.clone());
                }
            }
        }
        set
    }

    /// Summarizes per-item wall time through a log-linear quantile sketch
    /// (1% relative error): p50/p99/p999 over every *attempted* item —
    /// skipped items spent no wall time and are excluded.
    pub fn latency_quantiles(&self) -> tgi_telemetry::QuantileSummary {
        let hist = tgi_telemetry::QuantileHistogram::new(0.01);
        for entry in &self.entries {
            if !matches!(entry.outcome, RunOutcome::Skipped) {
                hist.observe(entry.wall_secs);
            }
        }
        hist.summary()
    }

    /// Scans the power trace of every successful metered item with the
    /// anomaly detector and totals the events per kind. Deterministic
    /// given the traces: the scan replays a fresh detector per trace in
    /// sample order regardless of how the run was scheduled.
    pub fn anomaly_counts(&self, config: power_model::AnomalyConfig) -> power_model::AnomalyCounts {
        let mut counts = power_model::AnomalyCounts::default();
        for entry in &self.entries {
            if let RunOutcome::Success(output) = &entry.outcome {
                if let Some(trace) = &output.trace {
                    for event in power_model::anomaly::scan(trace, config) {
                        match event.kind {
                            power_model::AnomalyKind::Spike => counts.spikes += 1,
                            power_model::AnomalyKind::Drift => counts.drifts += 1,
                            power_model::AnomalyKind::Dropout => counts.dropouts += 1,
                        }
                    }
                }
            }
        }
        counts
    }

    /// Collapses the report into `run_all`-style results: every
    /// measurement in order, or the first failure.
    pub fn into_result(self) -> Result<Vec<Measurement>, SuiteError> {
        let mut out = Vec::with_capacity(self.entries.len());
        for entry in self.entries {
            match entry.outcome {
                RunOutcome::Success(o) => out.push(o.measurement),
                RunOutcome::Failed(e) => return Err(e),
                RunOutcome::Skipped => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use tgi_core::{Perf, Seconds, Watts};

    fn meas(id: &str, gflops: f64) -> Measurement {
        Measurement::new(id, Perf::gflops(gflops), Watts::new(100.0), Seconds::new(1.0)).unwrap()
    }

    struct Fixed {
        id: &'static str,
        gflops: f64,
    }
    impl Benchmark for Fixed {
        fn id(&self) -> &str {
            self.id
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Ok(meas(self.id, self.gflops))
        }
    }

    /// Fails with a transient I/O error `failures` times, then succeeds.
    struct FlakyThenOk {
        failures: u32,
        calls: AtomicU32,
    }
    impl FlakyThenOk {
        fn new(failures: u32) -> Self {
            FlakyThenOk { failures, calls: AtomicU32::new(0) }
        }
    }
    impl Benchmark for FlakyThenOk {
        fn id(&self) -> &str {
            "flaky"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.failures {
                Err(SuiteError::Io(std::io::Error::other("scratch disk busy")))
            } else {
                Ok(meas("flaky", 2.0))
            }
        }
    }

    struct Hang {
        secs: f64,
    }
    impl Benchmark for Hang {
        fn id(&self) -> &str {
            "hang"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            std::thread::sleep(Duration::from_secs_f64(self.secs));
            Ok(meas("hang", 1.0))
        }
    }

    struct Panicking;
    impl Benchmark for Panicking {
        fn id(&self) -> &str {
            "panicking"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            panic!("kernel blew up");
        }
    }

    struct AlwaysFails;
    impl Benchmark for AlwaysFails {
        fn id(&self) -> &str {
            "fails"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Err(SuiteError::Kernel("deterministic".into()))
        }
    }

    fn fixed_suite() -> BenchmarkSuite {
        BenchmarkSuite::new()
            .with(Fixed { id: "a", gflops: 1.0 })
            .with(Fixed { id: "b", gflops: 2.0 })
            .with(Fixed { id: "c", gflops: 3.0 })
            .with(Fixed { id: "d", gflops: 4.0 })
    }

    #[test]
    fn parallel_matches_sequential() {
        let sequential = SuiteRunner::new().run(&fixed_suite()).into_result().unwrap();
        let parallel = SuiteRunner::new().parallelism(4).run(&fixed_suite()).into_result().unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.iter().map(|m| m.id()).collect::<Vec<_>>(), ["a", "b", "c", "d"]);
    }

    #[test]
    fn retries_transient_failures_and_counts_attempts() {
        let suite = BenchmarkSuite::new().with(FlakyThenOk::new(2));
        let report = SuiteRunner::new().retries(3).backoff(Duration::from_millis(1)).run(&suite);
        let entry = &report.entries[0];
        assert_eq!(entry.attempts, 3, "two transient failures then success");
        assert!(entry.measurement().is_some());
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let suite = BenchmarkSuite::new().with(FlakyThenOk::new(10));
        let report = SuiteRunner::new().retries(2).backoff(Duration::from_millis(1)).run(&suite);
        let entry = &report.entries[0];
        assert_eq!(entry.attempts, 3);
        assert!(matches!(entry.outcome, RunOutcome::Failed(SuiteError::Io(_))));
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let suite = BenchmarkSuite::new().with(AlwaysFails);
        let report = SuiteRunner::new().retries(5).run(&suite);
        assert_eq!(report.entries[0].attempts, 1);
    }

    #[test]
    fn timeout_abandons_hung_benchmark() {
        let suite = BenchmarkSuite::new().with(Hang { secs: 2.0 });
        let started = Instant::now();
        let report = SuiteRunner::new().timeout(Some(Duration::from_millis(50))).run(&suite);
        assert!(started.elapsed() < Duration::from_secs(1), "did not wait for the hang");
        assert!(matches!(
            report.entries[0].outcome,
            RunOutcome::Failed(SuiteError::Timeout { .. })
        ));
    }

    #[test]
    fn panic_is_contained_and_reported() {
        let suite = BenchmarkSuite::new().with(Panicking).with(Fixed { id: "ok", gflops: 1.0 });
        let report = SuiteRunner::new().failure_mode(FailureMode::CollectErrors).run(&suite);
        match &report.entries[0].outcome {
            RunOutcome::Failed(SuiteError::Panicked { detail, .. }) => {
                assert!(detail.contains("kernel blew up"), "got {detail}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(report.entries[1].measurement().is_some());
    }

    #[test]
    fn fail_fast_skips_unstarted_items() {
        let suite = BenchmarkSuite::new().with(AlwaysFails).with(Fixed { id: "late", gflops: 1.0 });
        let report = SuiteRunner::new().run(&suite);
        assert!(matches!(report.entries[0].outcome, RunOutcome::Failed(_)));
        assert!(matches!(report.entries[1].outcome, RunOutcome::Skipped));
        assert_eq!(report.entries[1].attempts, 0);
        assert!(report.into_result().is_err());
    }

    #[test]
    fn collect_errors_runs_everything() {
        let suite = BenchmarkSuite::new().with(AlwaysFails).with(Fixed { id: "late", gflops: 1.0 });
        let report = SuiteRunner::new().failure_mode(FailureMode::CollectErrors).run(&suite);
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.measurements().len(), 1);
        assert!(!report.all_succeeded());
    }

    #[test]
    fn repeats_produce_one_entry_each() {
        let suite = BenchmarkSuite::new().with(Fixed { id: "a", gflops: 1.0 });
        let report = SuiteRunner::new().repeats(3).run(&suite);
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.entries.iter().map(|e| e.repeat).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(report.all_succeeded());
    }

    /// The ISSUE acceptance scenario: ≥4 benchmarks, one injected
    /// transient failure, one injected hang, CollectErrors — completes
    /// with retries and the timeout recorded, and the journal records
    /// round-trip through JSON.
    #[test]
    fn acceptance_flaky_and_hung_suite_collects_errors() {
        let suite = BenchmarkSuite::new()
            .with(Fixed { id: "hpl", gflops: 90.0 })
            .with(FlakyThenOk::new(1))
            .with(Hang { secs: 5.0 })
            .with(Fixed { id: "stream", gflops: 2.0 })
            .with(Fixed { id: "iozone", gflops: 1.0 });
        let report = SuiteRunner::new()
            .parallelism(3)
            .retries(2)
            .backoff(Duration::from_millis(1))
            .timeout(Some(Duration::from_millis(100)))
            .failure_mode(FailureMode::CollectErrors)
            .run(&suite);

        assert_eq!(report.entries.len(), 5);
        assert_eq!(report.measurements().len(), 4, "all but the hang succeed");
        let flaky = &report.entries[1];
        assert_eq!(flaky.attempts, 2, "one transient failure, one retry");
        let hung = &report.entries[2];
        assert!(matches!(
            hung.outcome,
            RunOutcome::Failed(SuiteError::Timeout { seconds, .. }) if seconds > 0.0
        ));

        for record in report.records() {
            let line = serde_json::to_string(&record).unwrap();
            let parsed: RunRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(parsed.benchmark, record.benchmark);
            assert_eq!(parsed.status, record.status);
        }
    }

    #[test]
    fn exclusive_meter_serializes_metered_benchmarks() {
        /// Asserts no two metered runs overlap via a shared "in meter" flag.
        struct Metered {
            id: &'static str,
            active: Arc<AtomicUsize>,
            overlap: Arc<AtomicBool>,
        }
        impl Benchmark for Metered {
            fn id(&self) -> &str {
                self.id
            }
            fn subsystem(&self) -> &'static str {
                "test"
            }
            fn exclusive_meter(&self) -> bool {
                true
            }
            fn run(&self) -> Result<Measurement, SuiteError> {
                if self.active.fetch_add(1, Ordering::SeqCst) > 0 {
                    self.overlap.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(10));
                self.active.fetch_sub(1, Ordering::SeqCst);
                Ok(meas(self.id, 1.0))
            }
        }

        let active = Arc::new(AtomicUsize::new(0));
        let overlap = Arc::new(AtomicBool::new(false));
        let mut suite = BenchmarkSuite::new();
        for id in ["m1", "m2", "m3", "m4"] {
            suite.push(Box::new(Metered {
                id,
                active: Arc::clone(&active),
                overlap: Arc::clone(&overlap),
            }));
        }
        let report = SuiteRunner::new().parallelism(4).run(&suite);
        assert!(report.all_succeeded());
        assert!(!overlap.load(Ordering::SeqCst), "metered runs overlapped");
    }

    #[test]
    fn metered_benchmarks_overlap_with_nothing() {
        /// Tracks concurrent runners; a metered run must see zero others
        /// in flight (metered *or* not) for its whole duration.
        struct Tracked {
            id: &'static str,
            metered: bool,
            active: Arc<AtomicUsize>,
            violated: Arc<AtomicBool>,
        }
        impl Benchmark for Tracked {
            fn id(&self) -> &str {
                self.id
            }
            fn subsystem(&self) -> &'static str {
                "test"
            }
            fn exclusive_meter(&self) -> bool {
                self.metered
            }
            fn run(&self) -> Result<Measurement, SuiteError> {
                let others = self.active.fetch_add(1, Ordering::SeqCst);
                if self.metered && others > 0 {
                    self.violated.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(10));
                if self.metered && self.active.load(Ordering::SeqCst) > 1 {
                    self.violated.store(true, Ordering::SeqCst);
                }
                self.active.fetch_sub(1, Ordering::SeqCst);
                Ok(meas(self.id, 1.0))
            }
        }

        let active = Arc::new(AtomicUsize::new(0));
        let violated = Arc::new(AtomicBool::new(false));
        let mut suite = BenchmarkSuite::new();
        for (id, metered) in
            [("sim1", false), ("hpl", true), ("sim2", false), ("stream", true), ("sim3", false)]
        {
            suite.push(Box::new(Tracked {
                id,
                metered,
                active: Arc::clone(&active),
                violated: Arc::clone(&violated),
            }));
        }
        let report = SuiteRunner::new().parallelism(5).run(&suite);
        assert!(report.all_succeeded());
        assert!(!violated.load(Ordering::SeqCst), "a metered run overlapped with another item");
    }

    #[test]
    fn trace_set_collects_metered_traces() {
        struct WithTrace;
        impl Benchmark for WithTrace {
            fn id(&self) -> &str {
                "metered"
            }
            fn subsystem(&self) -> &'static str {
                "test"
            }
            fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
                let mut t = power_model::PowerTrace::new();
                t.push(0.0, Watts::new(100.0));
                t.push(1.0, Watts::new(100.0));
                Ok(BenchmarkOutput::metered(meas("metered", 1.0), t))
            }
        }
        let suite = BenchmarkSuite::new().with(WithTrace).with(Fixed { id: "plain", gflops: 1.0 });
        let report = SuiteRunner::new().repeats(2).run(&suite);
        assert_eq!(report.entries.len(), 4);
        let set = report.trace_set();
        assert_eq!(set.len(), 2, "only metered successes carry traces");
        assert!(set.get("metered#0").is_some());
        assert!(set.get("metered#1").is_some());
        assert!((set.total_energy().value() - 200.0).abs() < 1e-9);
        let summary = set.summarize();
        assert_eq!(summary.nodes.len(), 2);
        assert_eq!(summary.total_samples, 4);
    }

    #[test]
    fn observability_summaries_over_the_report() {
        /// Metered benchmark whose trace carries an injected 3-sample
        /// spike over a noisy-but-quiet baseline.
        struct Spiky;
        impl Benchmark for Spiky {
            fn id(&self) -> &str {
                "spiky"
            }
            fn subsystem(&self) -> &'static str {
                "test"
            }
            fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
                let mut t = power_model::PowerTrace::new();
                for i in 0..300usize {
                    let w =
                        if (200..203).contains(&i) { 900.0 } else { 100.0 + (i % 7) as f64 * 0.1 };
                    t.push(i as f64, Watts::new(w));
                }
                Ok(BenchmarkOutput::metered(meas("spiky", 1.0), t))
            }
        }

        let suite = BenchmarkSuite::new().with(Spiky).with(Fixed { id: "plain", gflops: 1.0 });
        let report = SuiteRunner::new().parallelism(2).run(&suite);

        let q = report.latency_quantiles();
        assert_eq!(q.count, 2, "both attempted items are summarized");
        assert!(q.p50 > 0.0 && q.p99 >= q.p50 && q.p999 >= q.p99, "{q:?}");

        let counts = report.anomaly_counts(power_model::AnomalyConfig::default());
        assert_eq!(counts.spikes, 1, "the injected spike is the only event: {counts:?}");
        assert_eq!(counts.drifts, 0, "{counts:?}");

        // Skipped items contribute no latency sample.
        let failing = BenchmarkSuite::new().with(AlwaysFails).with(Fixed { id: "z", gflops: 1.0 });
        let report = SuiteRunner::new().run(&failing);
        assert_eq!(report.latency_quantiles().count, 1, "skipped item excluded");
    }

    #[test]
    fn journal_record_shape() {
        let suite = BenchmarkSuite::new().with(Fixed { id: "a", gflops: 1.0 });
        let report = SuiteRunner::new().run(&suite);
        let records = report.records();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.status, "success");
        assert_eq!(r.perf, Some(1e9));
        assert_eq!(r.power_watts, Some(100.0));
        assert!(r.error.is_none());
        let line = serde_json::to_string(r).unwrap();
        assert!(line.contains("\"benchmark\""));
        assert!(!line.contains('\n'), "one journal record must be one line");
    }
}
