//! Sequencing a set of benchmarks into a suite run.
//!
//! [`BenchmarkSuite`] runs its benchmarks in order (as the paper's
//! methodology does: each benchmark measured separately with the meter
//! attached) and can promote a run into a [`ReferenceSystem`] — which is how
//! the SystemG reference numbers of Table I are produced in this
//! reproduction.

use crate::benchmark::{Benchmark, SuiteError};
use crate::runner::SuiteRunner;
use std::sync::Arc;
use tgi_core::{Measurement, ReferenceSystem};

/// An ordered collection of benchmarks.
///
/// Benchmarks are stored as `Arc<dyn Benchmark>` so the [`SuiteRunner`]
/// can hand them to worker and attempt threads; the `with`/`push`
/// construction API is unchanged.
#[derive(Default)]
pub struct BenchmarkSuite {
    benchmarks: Vec<Arc<dyn Benchmark>>,
}

impl BenchmarkSuite {
    /// An empty suite.
    pub fn new() -> Self {
        BenchmarkSuite::default()
    }

    /// Adds a benchmark (builder style).
    pub fn with(mut self, b: impl Benchmark + 'static) -> Self {
        self.benchmarks.push(Arc::new(b));
        self
    }

    /// Adds a boxed benchmark.
    pub fn push(&mut self, b: Box<dyn Benchmark>) {
        self.benchmarks.push(Arc::from(b));
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// The benchmark ids, in order.
    pub fn ids(&self) -> Vec<&str> {
        self.benchmarks.iter().map(|b| b.id()).collect()
    }

    /// The benchmarks themselves, in order (used by the runner).
    pub fn benchmarks(&self) -> &[Arc<dyn Benchmark>] {
        &self.benchmarks
    }

    /// Runs every benchmark in order, failing fast on the first error.
    ///
    /// Compatibility wrapper over a sequential, single-shot
    /// [`SuiteRunner`]; use the runner directly for parallelism,
    /// retries, timeouts, or a full [`RunReport`](crate::runner::RunReport).
    pub fn run_all(&self) -> Result<Vec<Measurement>, SuiteError> {
        SuiteRunner::new().run(self).into_result()
    }

    /// Runs the suite and builds a reference system from the results.
    pub fn run_as_reference(&self, name: impl Into<String>) -> Result<ReferenceSystem, SuiteError> {
        let mut builder = ReferenceSystem::builder(name);
        for m in self.run_all()? {
            builder = builder.benchmark(m);
        }
        Ok(builder.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgi_core::{Perf, Seconds, Watts};

    struct Fixed {
        id: &'static str,
        gflops: f64,
    }

    impl Benchmark for Fixed {
        fn id(&self) -> &str {
            self.id
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Ok(Measurement::new(
                self.id,
                Perf::gflops(self.gflops),
                Watts::new(100.0),
                Seconds::new(10.0),
            )?)
        }
    }

    struct Failing;
    impl Benchmark for Failing {
        fn id(&self) -> &str {
            "bad"
        }
        fn subsystem(&self) -> &'static str {
            "test"
        }
        fn run(&self) -> Result<Measurement, SuiteError> {
            Err(SuiteError::Kernel("boom".into()))
        }
    }

    #[test]
    fn runs_in_order() {
        let suite = BenchmarkSuite::new()
            .with(Fixed { id: "a", gflops: 1.0 })
            .with(Fixed { id: "b", gflops: 2.0 });
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.ids(), vec!["a", "b"]);
        let ms = suite.run_all().unwrap();
        assert_eq!(ms[0].id(), "a");
        assert_eq!(ms[1].id(), "b");
    }

    #[test]
    fn fails_fast_on_error() {
        let suite = BenchmarkSuite::new().with(Fixed { id: "a", gflops: 1.0 }).with(Failing);
        assert!(suite.run_all().is_err());
    }

    #[test]
    fn builds_reference_system() {
        let suite = BenchmarkSuite::new()
            .with(Fixed { id: "a", gflops: 1.0 })
            .with(Fixed { id: "b", gflops: 2.0 });
        let r = suite.run_as_reference("TestRef").unwrap();
        assert_eq!(r.name(), "TestRef");
        assert_eq!(r.len(), 2);
        assert!(r.measurement("a").is_some());
    }

    #[test]
    fn duplicate_ids_rejected_at_reference_build() {
        let suite = BenchmarkSuite::new()
            .with(Fixed { id: "a", gflops: 1.0 })
            .with(Fixed { id: "a", gflops: 2.0 });
        assert!(suite.run_as_reference("dup").is_err());
    }

    #[test]
    fn empty_suite() {
        let suite = BenchmarkSuite::new();
        assert!(suite.is_empty());
        assert!(suite.run_all().unwrap().is_empty());
        assert!(suite.run_as_reference("empty").is_err());
    }

    #[test]
    fn push_boxed() {
        let mut suite = BenchmarkSuite::new();
        suite.push(Box::new(Fixed { id: "x", gflops: 1.0 }));
        assert_eq!(suite.len(), 1);
    }
}
