//! Native benchmarks: real kernels on this machine, modeled power.
//!
//! Each native benchmark runs its `hpc-kernels` workload for real while a
//! [`power_model::BackgroundSampler`] polls a [`power_model::sampler::ModeledSource`]
//! (actual process CPU utilization → node power model → wall watts), exactly
//! the role the paper's wall meter plays. The measurement combines the real
//! performance with the sampled power trace.
//!
//! Besides the paper's three benchmarks, the HPCC-style extensions (DGEMM,
//! FFT, PTRANS, RandomAccess) are provided — §II: TGI is "neither limited by
//! the metrics used in each benchmark nor by the number of benchmarks".

use crate::benchmark::{Benchmark, BenchmarkOutput, SuiteError};
use hpc_kernels::{comm, fft, gemm, hpl, iobench, ptrans, random_access, stream};
use power_model::sampler::{BackgroundSampler, ModeledSource};
use power_model::utilization::UtilizationSample;
use power_model::{NodePowerModel, PowerSource};
use std::sync::Arc;
use std::time::Duration;
use tgi_core::{Joules, Measurement, Perf, Seconds, Watts};

/// Sampling cadence for native runs (finer than the 1 Hz wall meter so that
/// second-scale kernels still collect several samples).
const SAMPLE_INTERVAL: Duration = Duration::from_millis(50);

/// Aggregates one metered run: reported power/time/energy plus the sampled
/// power trace the background sampler collected.
struct Metered {
    power: Watts,
    time: Seconds,
    energy: Joules,
    trace: power_model::PowerTrace,
}

fn metered<T>(
    model: &NodePowerModel,
    assumed: UtilizationSample,
    work: impl FnOnce() -> T,
) -> (T, Metered) {
    let source = Arc::new(ModeledSource::new(model.clone()).with_assumed(assumed));
    let sampler = BackgroundSampler::start(Arc::clone(&source) as _, SAMPLE_INTERVAL);
    let start = std::time::Instant::now();
    let out = work();
    let elapsed = start.elapsed().as_secs_f64().max(1e-6);
    let trace = sampler.stop();
    let (power, energy) = derive_power_energy(&trace, source.as_ref(), elapsed);
    (out, Metered { power, time: Seconds::new(elapsed), energy, trace })
}

/// Derives reported power and energy from a sampled trace.
///
/// Energy is the trapezoidal integral of the trace, matching how the paper
/// integrates wall-meter logs. A kernel finishing inside one sampling
/// interval can leave a trace spanning zero time; in that case fall back to
/// an immediate source sample over the wall-clock window so power and energy
/// stay non-degenerate.
fn derive_power_energy(
    trace: &power_model::PowerTrace,
    source: &dyn PowerSource,
    elapsed: f64,
) -> (Watts, Joules) {
    if trace.duration().value() > 0.0 {
        (trace.average_power(), trace.energy())
    } else {
        let now = source.power_now();
        (now, Joules::new(now.value() * elapsed))
    }
}

fn to_output(id: &str, perf: Perf, m: &Metered) -> Result<BenchmarkOutput, SuiteError> {
    let measurement = Measurement::new(id, perf, m.power, m.time)?.with_energy(m.energy)?;
    Ok(BenchmarkOutput::metered(measurement, m.trace.clone()))
}

/// HPL on this machine: blocked LU solve with residual validation.
#[derive(Debug, Clone)]
pub struct NativeHpl {
    /// Kernel configuration.
    pub config: hpl::HplConfig,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeHpl {
    /// An HPL benchmark of order `n` with the Fire node model.
    pub fn new(n: usize) -> Self {
        NativeHpl { config: hpl::HplConfig::new(n), model: NodePowerModel::fire_node() }
    }
}

impl Benchmark for NativeHpl {
    fn id(&self) -> &str {
        "hpl"
    }
    fn subsystem(&self) -> &'static str {
        "cpu"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let (result, meter) =
            metered(&self.model, UtilizationSample::cpu_bound(1.0), || hpl::run(self.config));
        let result = result.map_err(|e| SuiteError::Kernel(e.to_string()))?;
        if !result.passed {
            return Err(SuiteError::ValidationFailed {
                benchmark: "hpl".into(),
                detail: format!("scaled residual {} > 16", result.scaled_residual),
            });
        }
        to_output("hpl", Perf::gflops(result.gflops), &meter)
    }
}

/// STREAM on this machine.
#[derive(Debug, Clone)]
pub struct NativeStream {
    /// Kernel configuration.
    pub config: stream::StreamConfig,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeStream {
    /// A STREAM benchmark with the given array size.
    pub fn new(array_size: usize) -> Self {
        NativeStream {
            config: stream::StreamConfig { array_size, ntimes: 10 },
            model: NodePowerModel::fire_node(),
        }
    }
}

impl Benchmark for NativeStream {
    fn id(&self) -> &str {
        "stream"
    }
    fn subsystem(&self) -> &'static str {
        "memory"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let (result, meter) =
            metered(&self.model, UtilizationSample::memory_bound(1.0), || stream::run(self.config));
        if !result.validated {
            return Err(SuiteError::ValidationFailed {
                benchmark: "stream".into(),
                detail: format!("results check error {}", result.max_relative_error),
            });
        }
        to_output("stream", Perf::mbps(result.triad_mbps()), &meter)
    }
}

/// IOzone-style write test on this machine.
#[derive(Debug, Clone)]
pub struct NativeIozone {
    /// Kernel configuration.
    pub config: iobench::IoBenchConfig,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeIozone {
    /// A write benchmark of `file_size` bytes.
    pub fn new(file_size: u64) -> Self {
        NativeIozone {
            config: iobench::IoBenchConfig { file_size, ..Default::default() },
            model: NodePowerModel::fire_node(),
        }
    }
}

impl Benchmark for NativeIozone {
    fn id(&self) -> &str {
        "iozone"
    }
    fn subsystem(&self) -> &'static str {
        "io"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let (result, meter) =
            metered(&self.model, UtilizationSample::io_bound(1.0), || iobench::run(&self.config));
        let result = result.map_err(|e| SuiteError::Kernel(e.to_string()))?;
        to_output("iozone", Perf::mbps(result.write_mbps()), &meter)
    }
}

/// DGEMM extension benchmark.
#[derive(Debug, Clone)]
pub struct NativeDgemm {
    /// Square matrix order.
    pub n: usize,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeDgemm {
    /// A DGEMM benchmark of order `n`.
    pub fn new(n: usize) -> Self {
        NativeDgemm { n, model: NodePowerModel::fire_node() }
    }
}

impl Benchmark for NativeDgemm {
    fn id(&self) -> &str {
        "dgemm"
    }
    fn subsystem(&self) -> &'static str {
        "cpu"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let n = self.n;
        let (result, meter) =
            metered(&self.model, UtilizationSample::cpu_bound(1.0), || gemm::benchmark(n, 0xD6E3));
        to_output("dgemm", Perf::gflops(result.gflops), &meter)
    }
}

/// FFT extension benchmark.
#[derive(Debug, Clone)]
pub struct NativeFft {
    /// Transform length (power of two).
    pub n: usize,
    /// Timed forward+inverse repetitions.
    pub repetitions: usize,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeFft {
    /// An FFT benchmark of length `n`.
    pub fn new(n: usize) -> Self {
        NativeFft { n, repetitions: 4, model: NodePowerModel::fire_node() }
    }
}

impl Benchmark for NativeFft {
    fn id(&self) -> &str {
        "fft"
    }
    fn subsystem(&self) -> &'static str {
        "cpu+memory"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let (n, reps) = (self.n, self.repetitions);
        let (result, meter) = metered(&self.model, UtilizationSample::cpu_bound(0.9), || {
            fft::benchmark(n, reps, 0xFF7)
        });
        if result.max_roundtrip_error > 1e-6 {
            return Err(SuiteError::ValidationFailed {
                benchmark: "fft".into(),
                detail: format!("round-trip error {}", result.max_roundtrip_error),
            });
        }
        to_output("fft", Perf::gflops(result.gflops), &meter)
    }
}

/// PTRANS extension benchmark.
#[derive(Debug, Clone)]
pub struct NativePtrans {
    /// Matrix order.
    pub n: usize,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativePtrans {
    /// A PTRANS benchmark of order `n`.
    pub fn new(n: usize) -> Self {
        NativePtrans { n, model: NodePowerModel::fire_node() }
    }
}

impl Benchmark for NativePtrans {
    fn id(&self) -> &str {
        "ptrans"
    }
    fn subsystem(&self) -> &'static str {
        "memory"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let n = self.n;
        let (result, meter) = metered(&self.model, UtilizationSample::memory_bound(0.9), || {
            ptrans::benchmark(n, 0x974A)
        });
        to_output("ptrans", Perf::mbps(result.bytes_per_sec / 1e6), &meter)
    }
}

/// RandomAccess (GUPS) extension benchmark.
#[derive(Debug, Clone)]
pub struct NativeGups {
    /// Kernel configuration.
    pub config: random_access::GupsConfig,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeGups {
    /// A GUPS benchmark with a `2^log2_size`-word table.
    pub fn new(log2_size: u32) -> Self {
        NativeGups {
            config: random_access::GupsConfig::new(log2_size),
            model: NodePowerModel::fire_node(),
        }
    }
}

impl Benchmark for NativeGups {
    fn id(&self) -> &str {
        "gups"
    }
    fn subsystem(&self) -> &'static str {
        "memory"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let config = self.config;
        let (result, meter) = metered(&self.model, UtilizationSample::memory_bound(0.8), || {
            random_access::run(config)
        });
        if !result.passed {
            return Err(SuiteError::ValidationFailed {
                benchmark: "gups".into(),
                detail: format!("error fraction {}", result.error_fraction),
            });
        }
        to_output("gups", Perf::new(result.gups, tgi_core::PerfUnit::Gups)?, &meter)
    }
}

/// HPL run as a *distributed* program over the mini-MPI runtime — the form
/// the paper's benchmarks actually take ("Number of MPI Processes").
#[derive(Debug, Clone)]
pub struct NativeDistributedHpl {
    /// Distributed-solver configuration.
    pub config: mini_mpi::hpl::DistributedHplConfig,
    /// MPI ranks (threads).
    pub ranks: usize,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeDistributedHpl {
    /// A distributed HPL of order `n` on `ranks` ranks.
    pub fn new(n: usize, ranks: usize) -> Self {
        NativeDistributedHpl {
            config: mini_mpi::hpl::DistributedHplConfig::new(n),
            ranks,
            model: NodePowerModel::fire_node(),
        }
    }
}

impl Benchmark for NativeDistributedHpl {
    fn id(&self) -> &str {
        "hpl"
    }
    fn subsystem(&self) -> &'static str {
        "cpu"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let (config, ranks) = (self.config, self.ranks);
        let (results, meter) = metered(&self.model, UtilizationSample::cpu_bound(1.0), || {
            mini_mpi::World::run(ranks, move |comm| mini_mpi::hpl::run(comm, config))
        });
        let rank0 = &results[0];
        if !rank0.passed {
            return Err(SuiteError::ValidationFailed {
                benchmark: "hpl".into(),
                detail: format!("scaled residual {} > 16", rank0.scaled_residual),
            });
        }
        to_output("hpl", Perf::gflops(rank0.gflops), &meter)
    }
}

/// Communication (b_eff-style) extension benchmark.
#[derive(Debug, Clone)]
pub struct NativeComm {
    /// Kernel configuration.
    pub config: comm::CommConfig,
    /// Node power model used by the sampler.
    pub model: NodePowerModel,
}

impl NativeComm {
    /// A communication benchmark with `ranks` communicating threads.
    pub fn new(ranks: usize) -> Self {
        NativeComm {
            config: comm::CommConfig { ranks, ..Default::default() },
            model: NodePowerModel::fire_node(),
        }
    }
}

impl Benchmark for NativeComm {
    fn id(&self) -> &str {
        "comm"
    }
    fn subsystem(&self) -> &'static str {
        "network"
    }
    fn exclusive_meter(&self) -> bool {
        true
    }
    fn run_detailed(&self) -> Result<BenchmarkOutput, SuiteError> {
        let config = self.config;
        let (result, meter) =
            metered(&self.model, UtilizationSample::new(0.3, 0.2, 0.0, 0.9), || comm::run(config));
        to_output("comm", Perf::mbps(result.ring_mbps()), &meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_hpl_runs_and_validates() {
        let m = NativeHpl::new(192).run().unwrap();
        assert_eq!(m.id(), "hpl");
        assert!(m.performance().as_gflops() > 0.0);
        assert!(m.power().value() > 0.0);
        assert!(m.energy().value() > 0.0);
    }

    #[test]
    fn native_stream_runs() {
        let mut b = NativeStream::new(1 << 16);
        b.config.ntimes = 3;
        let m = b.run().unwrap();
        assert_eq!(m.id(), "stream");
        assert!(m.performance().as_mbps() > 0.0);
    }

    #[test]
    fn native_iozone_runs() {
        let mut b = NativeIozone::new(512 << 10);
        b.config.fsync = false;
        let m = b.run().unwrap();
        assert_eq!(m.id(), "iozone");
        assert!(m.performance().as_mbps() > 0.0);
    }

    #[test]
    fn native_dgemm_runs() {
        let m = NativeDgemm::new(128).run().unwrap();
        assert_eq!(m.id(), "dgemm");
        assert!(m.performance().as_gflops() > 0.0);
    }

    #[test]
    fn native_fft_runs_and_validates() {
        let m = NativeFft::new(1 << 12).run().unwrap();
        assert_eq!(m.id(), "fft");
        assert!(m.performance().as_gflops() > 0.0);
    }

    #[test]
    fn native_ptrans_runs() {
        let m = NativePtrans::new(256).run().unwrap();
        assert_eq!(m.id(), "ptrans");
        assert!(m.performance().as_mbps() > 0.0);
    }

    #[test]
    fn native_gups_runs_and_validates() {
        let m = NativeGups::new(12).run().unwrap();
        assert_eq!(m.id(), "gups");
        assert_eq!(*m.performance().unit(), tgi_core::PerfUnit::Gups);
    }

    #[test]
    fn native_distributed_hpl_runs_and_validates() {
        let b = NativeDistributedHpl::new(96, 3);
        let m = b.run().unwrap();
        assert_eq!(m.id(), "hpl");
        assert!(m.performance().as_gflops() > 0.0);
        assert!(m.power().value() > 0.0);
    }

    #[test]
    fn native_comm_runs() {
        let mut b = NativeComm::new(2);
        b.config = hpc_kernels::comm::CommConfig::small();
        let m = b.run().unwrap();
        assert_eq!(m.id(), "comm");
        assert_eq!(b.subsystem(), "network");
        assert!(m.performance().as_mbps() > 0.0);
    }

    #[test]
    fn zero_span_trace_falls_back_to_immediate_sample() {
        // Regression: a kernel finishing inside one sampling interval can
        // leave a trace spanning zero time. Energy used to be derived from
        // that trace's zero average power, so fast kernels reported zero
        // power and failed measurement validation.
        let model = NodePowerModel::fire_node();
        let source = ModeledSource::new(model).with_assumed(UtilizationSample::cpu_bound(1.0));
        let empty = power_model::PowerTrace::new();
        let (power, energy) = derive_power_energy(&empty, &source, 0.02);
        assert!(power.value() > 0.0, "fallback sample must be positive");
        assert!((energy.value() - power.value() * 0.02).abs() < 1e-9);
    }

    #[test]
    fn energy_is_trace_integral_not_avg_times_wall() {
        // Regression: the seed derived energy as average_power × wall
        // elapsed. For this ramp trace the trapezoid gives 1500 J; the old
        // formula with a 20 s wall window would report 3000 J.
        let model = NodePowerModel::fire_node();
        let source = ModeledSource::new(model).with_assumed(UtilizationSample::cpu_bound(1.0));
        let mut trace = power_model::PowerTrace::new();
        trace.push(0.0, Watts::new(100.0));
        trace.push(10.0, Watts::new(200.0));
        let (power, energy) = derive_power_energy(&trace, &source, 20.0);
        assert!((power.value() - 150.0).abs() < 1e-9);
        assert!((energy.value() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn power_within_model_envelope() {
        let model = NodePowerModel::fire_node();
        let m = NativeDgemm::new(160).run().unwrap();
        assert!(m.power().value() >= model.idle_wall_power().value() - 1e-9);
        assert!(m.power().value() <= model.peak_wall_power().value() + 1e-9);
    }

    #[test]
    fn subsystem_labels() {
        assert_eq!(NativeHpl::new(32).subsystem(), "cpu");
        assert_eq!(NativeStream::new(64).subsystem(), "memory");
        assert_eq!(NativeIozone::new(1 << 16).subsystem(), "io");
    }
}
