//! Simulated benchmarks: workloads on a `cluster-sim` cluster.
//!
//! This is the path that reproduces the paper's experiments: the same
//! [`Benchmark`] interface as the native runners, but performance and power
//! come from the analytic cluster models and the simulated PDU meter.

use crate::benchmark::{Benchmark, SuiteError};
use cluster_sim::{ClusterSpec, ExecutionEngine, Workload};
use tgi_core::Measurement;

/// One benchmark workload bound to a cluster and process count.
#[derive(Debug, Clone)]
pub struct SimulatedBenchmark {
    engine: ExecutionEngine,
    workload: Workload,
    processes: usize,
}

impl SimulatedBenchmark {
    /// Creates a simulated benchmark.
    pub fn new(cluster: ClusterSpec, workload: Workload, processes: usize) -> Self {
        SimulatedBenchmark { engine: ExecutionEngine::new(cluster), workload, processes }
    }

    /// Uses an existing engine (shared meter device across benchmarks).
    pub fn with_engine(engine: ExecutionEngine, workload: Workload, processes: usize) -> Self {
        SimulatedBenchmark { engine, workload, processes }
    }

    /// The process count this benchmark runs with.
    pub fn processes(&self) -> usize {
        self.processes
    }
}

impl Benchmark for SimulatedBenchmark {
    fn id(&self) -> &str {
        self.workload.benchmark_id()
    }

    fn subsystem(&self) -> &'static str {
        match self.workload {
            Workload::Hpl { .. } => "cpu",
            Workload::Stream { .. } => "memory",
            Workload::Iozone { .. } => "io",
        }
    }

    fn run(&self) -> Result<Measurement, SuiteError> {
        Ok(self.engine.run(self.workload, self.processes).measurement())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_hpl_runs() {
        let b = SimulatedBenchmark::new(ClusterSpec::fire(), Workload::Hpl { n: 20_000 }, 64);
        assert_eq!(b.id(), "hpl");
        assert_eq!(b.subsystem(), "cpu");
        assert_eq!(b.processes(), 64);
        let m = b.run().unwrap();
        assert!(m.performance().as_gflops() > 0.0);
        assert!(m.power().value() > 1000.0, "an 8-node cluster draws kilowatts");
    }

    #[test]
    fn simulated_suite_ids() {
        for (w, id, sub) in [
            (Workload::Hpl { n: 1000 }, "hpl", "cpu"),
            (Workload::Stream { total_bytes: 1e9 }, "stream", "memory"),
            (Workload::Iozone { total_bytes: 1e9 }, "iozone", "io"),
        ] {
            let b = SimulatedBenchmark::new(ClusterSpec::fire(), w, 16);
            assert_eq!(b.id(), id);
            assert_eq!(b.subsystem(), sub);
        }
    }

    #[test]
    fn shared_engine_keeps_meter_device() {
        let engine = ExecutionEngine::new(ClusterSpec::fire()).with_meter_serial(99);
        let a = SimulatedBenchmark::with_engine(engine.clone(), Workload::Hpl { n: 10_000 }, 32)
            .run()
            .unwrap();
        let b =
            SimulatedBenchmark::with_engine(engine, Workload::Hpl { n: 10_000 }, 32).run().unwrap();
        assert_eq!(a.power().value(), b.power().value());
    }
}
