//! # tgi-suite — the benchmark-suite layer
//!
//! §II of the paper frames TGI as a metric over a *benchmark suite*: "the
//! chosen benchmarks currently include HPL for computation, STREAM for
//! memory, and IOzone for I/O", and "TGI is neither limited by the metrics
//! used in each benchmark nor by the number of benchmarks".
//!
//! [`benchmark::Benchmark`] is the uniform interface: anything that can
//! produce a [`tgi_core::Measurement`] (performance + power + time). Two
//! families implement it:
//!
//! * [`native`] — run the real kernels from `hpc-kernels` on this machine
//!   while a background sampler records modeled node power (the laptop-scale
//!   path; includes the HPCC-style extensions DGEMM/FFT/PTRANS/GUPS).
//! * [`simulated`] — run workloads on a `cluster-sim` cluster (the path that
//!   reproduces the paper's Fire/SystemG experiments).
//!
//! [`suite::BenchmarkSuite`] sequences a set of benchmarks and can promote a
//! full run into a [`tgi_core::ReferenceSystem`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod config;
pub mod native;
pub mod runner;
pub mod simulated;
pub mod suite;

pub use benchmark::{Benchmark, BenchmarkOutput, SuiteError};
pub use config::{BenchmarkSpec, SuiteSpec};
pub use runner::{BenchmarkReport, FailureMode, RunOutcome, RunRecord, RunReport, SuiteRunner};
pub use simulated::SimulatedBenchmark;
pub use suite::BenchmarkSuite;
