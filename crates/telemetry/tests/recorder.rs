//! Flight-recorder behavior over real spans: bounded retention per
//! thread, newest-events-win semantics, Chrome-trace dumps, and the
//! panic hook — all without a collector installed.

use tgi_telemetry::{recorder, FieldValue};

fn field_u64(event: &tgi_telemetry::Event, key: &str) -> Option<u64> {
    event.fields.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        FieldValue::U64(n) => Some(*n),
        _ => None,
    })
}

#[test]
fn recorder_lifecycle_retention_and_dumps() {
    // Spans emitted while nothing records vanish entirely.
    tgi_telemetry::span("recorder.cold").end();
    assert!(!recorder::active());

    assert!(recorder::enable(4), "first enable succeeds");
    assert!(!recorder::enable(8), "second enable is refused while active");
    assert!(recorder::active());

    // Ten spans through a 4-slot ring: exactly the last four survive.
    for i in 0..10u64 {
        tgi_telemetry::span("recorder.main").field("i", i).end();
    }
    let mine: Vec<_> =
        recorder::snapshot().into_iter().filter(|e| e.name == "recorder.main").collect();
    assert_eq!(mine.len(), 4, "ring retains exactly its capacity");
    let indices: Vec<u64> = mine.iter().map(|e| field_u64(e, "i").unwrap()).collect();
    assert_eq!(indices, vec![6, 7, 8, 9], "oldest events were overwritten, order preserved");
    assert!(
        recorder::snapshot().iter().all(|e| e.name != "recorder.cold"),
        "pre-enable spans are not retained"
    );

    // A second thread gets its own ring; both show up in one snapshot.
    std::thread::spawn(|| {
        for i in 0..3u64 {
            tgi_telemetry::span("recorder.worker").field("i", i).end();
        }
    })
    .join()
    .unwrap();
    let all = recorder::snapshot();
    assert_eq!(all.iter().filter(|e| e.name == "recorder.worker").count(), 3);
    assert_eq!(all.iter().filter(|e| e.name == "recorder.main").count(), 4);

    let stats = recorder::stats();
    assert!(stats.active);
    assert_eq!(stats.capacity_per_thread, 4);
    assert!(stats.threads >= 2, "both rings registered: {stats:?}");
    assert!(stats.buffered >= 7, "{stats:?}");

    // The dump is Chrome trace JSON carrying the retained spans.
    let dump = recorder::dump_chrome();
    assert!(dump.contains("\"traceEvents\""));
    assert!(dump.contains("recorder.worker"));

    let path = std::env::temp_dir()
        .join(format!("tgi_recorder_test_{}", std::process::id()))
        .join("flight.json");
    recorder::write_dump(&path).expect("dump writes");
    let written = std::fs::read_to_string(&path).expect("dump readable");
    assert!(written.contains("recorder.main"));
    // ≥, not ==: the panic-hook test in this binary may also have dumped.
    assert!(recorder::stats().dumps >= 1);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());

    // Disabling stops retention but keeps contents for a final dump.
    recorder::disable();
    assert!(!recorder::active());
    tgi_telemetry::span("recorder.after").end();
    let after = recorder::snapshot();
    assert!(after.iter().all(|e| e.name != "recorder.after"));
    assert_eq!(after.iter().filter(|e| e.name == "recorder.main").count(), 4);
}

#[test]
fn panic_hook_dumps_before_unwinding() {
    let path = std::env::temp_dir()
        .join(format!("tgi_recorder_hook_{}", std::process::id()))
        .join("panic_flight.json");
    recorder::install_panic_hook(&path);
    let _ = std::panic::catch_unwind(|| panic!("recorder hook test"));
    let written = std::fs::read_to_string(&path);
    #[cfg(feature = "enabled")]
    assert!(written.is_ok(), "panic hook wrote the dump");
    #[cfg(not(feature = "enabled"))]
    assert!(written.is_err(), "compiled-out recorder installs no hook");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
