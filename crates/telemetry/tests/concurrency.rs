//! Concurrency stress: spans and counters recorded from many threads must
//! be collected exactly once, across repeated install/uninstall cycles.
//!
//! Telemetry state is process-global, so every test in this binary
//! serializes on [`lock`].

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread count honours the CI matrix (`TGI_NUM_THREADS={1,4}`).
fn num_threads() -> usize {
    std::env::var("TGI_NUM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

#[test]
fn spans_from_many_threads_collected_exactly_once() {
    let _gate = lock();
    let threads = num_threads();
    const SPANS_PER_THREAD: usize = 500;

    assert!(tgi_telemetry::install(), "no collector should be installed yet");
    thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let _span = tgi_telemetry::span("stress.work")
                        .field("thread", t as u64)
                        .field("iter", i as u64);
                    tgi_telemetry::counter!("stress_iterations_total").inc();
                }
            });
        }
    });
    let snapshot = tgi_telemetry::metrics::snapshot();
    let events = tgi_telemetry::uninstall();

    let spans: Vec<_> = events.iter().filter(|e| e.name == "stress.work").collect();
    assert_eq!(spans.len(), threads * SPANS_PER_THREAD, "every span exactly once");
    assert_eq!(
        snapshot.counter("stress_iterations_total"),
        Some((threads * SPANS_PER_THREAD) as u64)
    );

    // Per (thread-field, iter-field) pair seen exactly once.
    let mut seen = std::collections::BTreeSet::new();
    for span in &spans {
        let t = span.fields.iter().find(|(k, _)| *k == "thread").unwrap();
        let i = span.fields.iter().find(|(k, _)| *k == "iter").unwrap();
        assert!(seen.insert((format!("{}", t.1), format!("{}", i.1))), "duplicate span");
    }

    // After uninstall the buffers are empty: a second drain yields nothing.
    assert!(tgi_telemetry::drain().is_empty(), "drain hands events out exactly once");
}

#[test]
fn counters_are_atomic_under_contention() {
    let _gate = lock();
    let threads = num_threads().max(2);
    const INCS_PER_THREAD: u64 = 10_000;

    assert!(tgi_telemetry::install());
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let counter = tgi_telemetry::metrics::counter("contention_total");
                for _ in 0..INCS_PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    let total = tgi_telemetry::metrics::counter("contention_total").get();
    tgi_telemetry::uninstall();
    assert_eq!(total, threads as u64 * INCS_PER_THREAD);
}

#[test]
fn repeated_install_uninstall_cycles_stay_clean() {
    let _gate = lock();
    for cycle in 0..20 {
        assert!(tgi_telemetry::install(), "cycle {cycle}: install should succeed");
        assert!(!tgi_telemetry::install(), "cycle {cycle}: double install must fail");
        thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _span = tgi_telemetry::span("cycle.work");
                });
            }
        });
        let events = tgi_telemetry::uninstall();
        let count = events.iter().filter(|e| e.name == "cycle.work").count();
        assert_eq!(count, 2, "cycle {cycle}: no leakage between sessions");
    }
}

#[test]
fn nothing_recorded_while_uninstalled() {
    let _gate = lock();
    assert!(!tgi_telemetry::installed());
    {
        let _span = tgi_telemetry::span("ghost").field("x", 1u64);
        tgi_telemetry::counter!("ghost_total").add(5);
        tgi_telemetry::gauge!("ghost_gauge").set(1.0);
        tgi_telemetry::histogram!("ghost_hist", &[1.0]).observe(0.5);
    }
    assert!(tgi_telemetry::install());
    let events = tgi_telemetry::uninstall();
    assert!(events.iter().all(|e| e.name != "ghost"));
    let snap = tgi_telemetry::metrics::snapshot();
    assert_eq!(snap.counter("ghost_total"), Some(0));
}

#[test]
fn gauge_add_is_lock_free_and_consistent() {
    let _gate = lock();
    let threads = num_threads().max(2);
    const ADDS_PER_THREAD: usize = 1_000;

    assert!(tgi_telemetry::install());
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let gauge = tgi_telemetry::metrics::gauge("contended_gauge");
                for _ in 0..ADDS_PER_THREAD {
                    gauge.add(0.5);
                }
            });
        }
    });
    let value = tgi_telemetry::metrics::gauge("contended_gauge").get();
    tgi_telemetry::uninstall();
    assert!((value - threads as f64 * ADDS_PER_THREAD as f64 * 0.5).abs() < 1e-9);
}
