//! Property tests: `QuantileHistogram` estimates stay within the
//! advertised relative-error bound against an exact sort, for arbitrary
//! value distributions, quantiles, sharding, and merge order.

use proptest::prelude::*;
use tgi_telemetry::QuantileHistogram;

/// The exact oracle the estimator targets: `sorted[ceil(q · (n−1))]`.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Turns raw generator material into positive in-range values spanning
/// several regimes: near-constant, uniform decades, and heavy tails.
fn materialize(raw: &[(f64, u8)]) -> Vec<f64> {
    raw.iter()
        .map(|&(u, mode)| match mode % 3 {
            // Near-constant cluster around 0.2 s.
            0 => 0.2 * (1.0 + 0.001 * (u - 0.5)),
            // Uniform across six decades (1 µs … 1 s).
            1 => 1e-6 * (10f64).powf(6.0 * u),
            // Heavy tail: mostly fast, occasionally 1000× slower.
            _ => {
                if u > 0.95 {
                    1.0 + 50.0 * u
                } else {
                    1e-3 + 1e-3 * u
                }
            }
        })
        .collect()
}

fn check_bound(hist: &QuantileHistogram, sorted: &[f64], q: f64) {
    let exact = exact_quantile(sorted, q);
    let est = hist.quantile(q).expect("non-empty histogram");
    // Tiny slack absorbs the FP rounding of bucket boundaries (ln/exp):
    // the mathematical bound is exactly α at the open bucket edge.
    let bound = hist.alpha() * exact * (1.0 + 1e-9) + 1e-12;
    assert!(
        (est - exact).abs() <= bound,
        "q={} estimate {} vs exact {} (α={})",
        q,
        est,
        exact,
        hist.alpha()
    );
}

proptest! {
    /// A single histogram honors its bound at arbitrary quantiles for
    /// arbitrary mixed-regime distributions and α values.
    #[test]
    fn quantiles_within_bound(
        raw in proptest::collection::vec((0.0..1.0f64, 0u8..255), 1..2000),
        alpha in 0.002..0.05f64,
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let values = materialize(&raw);
        let hist = QuantileHistogram::new(alpha);
        for &v in &values {
            hist.observe(v);
        }
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, q1, q2, 0.5, 0.99, 0.999, 1.0] {
            check_bound(&hist, &sorted, q);
        }
        prop_assert_eq!(hist.count(), sorted.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharding the stream across up to 8 histograms and merging them in
    /// a generator-chosen order changes nothing: the merged histogram is
    /// bucket-identical to one fed sequentially, so the bound survives
    /// any merge topology.
    #[test]
    fn merge_order_is_irrelevant_and_bound_survives(
        raw in proptest::collection::vec((0.0..1.0f64, 0u8..255), 8..1500),
        shards in 2usize..8,
        rotate in 0usize..8,
        q in 0.0..1.0f64,
    ) {
        let values = materialize(&raw);
        let whole = QuantileHistogram::new(0.01);
        let parts: Vec<QuantileHistogram> =
            (0..shards).map(|_| QuantileHistogram::new(0.01)).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            parts[i % shards].observe(v);
        }
        // Merge in a rotated order so every prefix pattern gets exercised.
        let merged = QuantileHistogram::new(0.01);
        for i in 0..shards {
            merged.merge(&parts[(i + rotate) % shards]);
        }
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for probe in [q, 0.5, 0.99, 0.999] {
            check_bound(&merged, &sorted, probe);
            // Merged and sequential agree exactly, not just within bound.
            prop_assert_eq!(merged.quantile(probe), whole.quantile(probe));
        }
        prop_assert_eq!(merged.count(), whole.count());
        // Sums differ only by FP association order across shards.
        let (a, b) = (merged.sum(), whole.sum());
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "sums {} vs {}", a, b);
    }
}
