//! Oracle test: the Chrome `trace_event` export round-trips span
//! begin/end pairing — every `ph:"X"` complete event carries a `ts`/`dur`
//! pair, and within each thread lane spans either nest fully or are
//! disjoint (never partially overlapping), which is exactly what
//! `chrome://tracing`/Perfetto require to render a well-formed timeline.

use serde::Value;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn record_nested_workload() -> Vec<tgi_telemetry::Event> {
    assert!(tgi_telemetry::install());
    thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let _outer = tgi_telemetry::span_cat("outer", "test").field("depth", 0u64);
                for i in 0..3 {
                    let _mid = tgi_telemetry::span_cat("mid", "test").field("i", i as u64);
                    let _inner = tgi_telemetry::span_cat("inner", "test");
                    tgi_telemetry::instant("tick").field("i", i as u64).end();
                }
            });
        }
    });
    tgi_telemetry::uninstall()
}

#[test]
fn chrome_trace_is_valid_json_with_paired_spans() {
    let _gate = lock();
    let events = record_nested_workload();
    assert_eq!(events.iter().filter(|e| e.name == "outer").count(), 2);

    let trace = tgi_telemetry::export::chrome_trace(&events);
    let root: Value = serde_json::from_str(&trace).expect("export must be valid JSON");

    let trace_events = root.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
    assert_eq!(trace_events.len(), events.len());

    let mut complete = 0usize;
    let mut instants = 0usize;
    for ev in trace_events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        assert!(ts >= 0.0);
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        assert!(ev.get("tid").and_then(Value::as_f64).is_some());
        assert_eq!(ev.get("pid").and_then(Value::as_f64), Some(1.0));
        match ph {
            "X" => {
                // A complete event is a begin/end pair in one record: its
                // end is ts + dur, and dur must be present and non-negative.
                let dur = ev.get("dur").and_then(Value::as_f64).expect("X events carry dur");
                assert!(dur >= 0.0);
                complete += 1;
            }
            "i" => {
                assert!(ev.get("dur").is_none(), "instants have no duration");
                instants += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(complete, 2 * (1 + 3 + 3), "outer + 3 mid + 3 inner per thread");
    assert_eq!(instants, 2 * 3);
}

#[test]
fn spans_nest_correctly_within_each_thread() {
    let _gate = lock();
    let events = record_nested_workload();
    let trace = tgi_telemetry::export::chrome_trace(&events);
    let root: Value = serde_json::from_str(&trace).unwrap();
    let trace_events = root.get("traceEvents").and_then(Value::as_array).unwrap();

    // Group complete events per tid as (start, end, name) intervals.
    type Lane = Vec<(f64, f64, String)>;
    let mut lanes: Vec<(u64, Lane)> = Vec::new();
    for ev in trace_events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap() as u64;
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap();
        let dur = ev.get("dur").and_then(Value::as_f64).unwrap();
        let name = ev.get("name").and_then(Value::as_str).unwrap().to_string();
        match lanes.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, spans)) => spans.push((ts, ts + dur, name)),
            None => lanes.push((tid, vec![(ts, ts + dur, name)])),
        }
    }
    assert_eq!(lanes.len(), 2, "one lane per worker thread");

    for (tid, spans) in &lanes {
        // Every pair within a lane must nest or be disjoint — partial
        // overlap would make the timeline unrenderable.
        for (i, a) in spans.iter().enumerate() {
            for b in spans.iter().skip(i + 1) {
                let nested = (a.0 <= b.0 && b.1 <= a.1) || (b.0 <= a.0 && a.1 <= b.1);
                let disjoint = a.1 <= b.0 || b.1 <= a.0;
                assert!(nested || disjoint, "tid {tid}: spans {a:?} and {b:?} partially overlap");
            }
        }
        // The structural oracle: each lane's "outer" span contains every
        // other span recorded on that lane.
        let outer = spans.iter().find(|(_, _, n)| n == "outer").expect("outer span present");
        for span in spans {
            assert!(
                outer.0 <= span.0 && span.1 <= outer.1,
                "tid {tid}: {span:?} escapes its outer span {outer:?}"
            );
        }
    }
}

#[test]
fn jsonl_and_prometheus_exports_parse() {
    let _gate = lock();
    assert!(tgi_telemetry::install());
    {
        let _span = tgi_telemetry::span("fmt.work").field("label", "a\"b\\c\nd");
        tgi_telemetry::counter!("fmt_ops_total").add(3);
        tgi_telemetry::gauge!("fmt_ratio").set(0.25);
        tgi_telemetry::histogram!("fmt_seconds", &[0.1, 1.0, 10.0]).observe(0.5);
    }
    let snapshot = tgi_telemetry::metrics::snapshot();
    let events = tgi_telemetry::uninstall();

    // Every JSONL line is standalone valid JSON, escaping included.
    let jsonl = tgi_telemetry::export::jsonl(&events);
    for line in jsonl.lines() {
        let v: Value = serde_json::from_str(line).expect("JSONL line parses");
        assert!(v.get("name").and_then(Value::as_str).is_some());
    }
    let span_line = jsonl
        .lines()
        .map(|l| serde_json::from_str::<Value>(l).unwrap())
        .find(|v| v.get("name").and_then(Value::as_str) == Some("fmt.work"))
        .expect("span exported");
    assert_eq!(
        span_line.get("fields").and_then(|f| f.get("label")).and_then(Value::as_str),
        Some("a\"b\\c\nd")
    );

    // Prometheus exposition: TYPE lines, counter value, histogram shape.
    let prom = tgi_telemetry::export::prometheus(&snapshot);
    assert!(prom.contains("# TYPE fmt_ops_total counter"));
    assert!(prom.contains("fmt_ops_total 3"));
    assert!(prom.contains("# TYPE fmt_ratio gauge"));
    assert!(prom.contains("fmt_ratio 0.25"));
    assert!(prom.contains("# TYPE fmt_seconds histogram"));
    assert!(prom.contains("fmt_seconds_bucket{le=\"1\"} 1"));
    assert!(prom.contains("fmt_seconds_bucket{le=\"+Inf\"} 1"));
    assert!(prom.contains("fmt_seconds_count 1"));
}
