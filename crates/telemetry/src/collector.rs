//! The global collector: per-thread event buffers, a registry that can
//! drain them all, and the install/uninstall lifecycle.
//!
//! ## Drain protocol
//!
//! Every thread that records an event lazily registers one
//! `ThreadBuffer` (an `Arc` shared with the global registry) and pushes
//! finished events under that buffer's own mutex — uncontended in steady
//! state, since only drains ever take it from another thread. [`drain`]
//! walks the registry and `mem::take`s each buffer's events, so each event
//! is collected **exactly once** no matter how many threads produced it,
//! and buffers of threads that have since exited are still reachable
//! (the registry's `Arc` keeps them alive).
//!
//! [`install`] clears all buffers and flips the global enabled flag;
//! recording while disabled is a no-op, so events can never leak from one
//! collection session into the next. Per-thread buffers are bounded
//! ([`MAX_EVENTS_PER_THREAD`]); overflowing events are counted in the
//! `tgi_telemetry_dropped_events_total` counter instead of growing without
//! bound.

use crate::span::FieldValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Hard cap on buffered events per thread between drains.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

/// What kind of occurrence an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: a [`crate::span()`] guard's lifetime.
    Span,
    /// A point in time: an [`crate::instant`] marker (warnings, milestones).
    Instant,
}

impl EventKind {
    /// Lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        }
    }
}

/// One finished telemetry event, as drained from a thread buffer.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span or instant.
    pub kind: EventKind,
    /// Static event name (e.g. `"suite.attempt"`).
    pub name: &'static str,
    /// Static category, grouping related names (e.g. `"suite"`).
    pub cat: &'static str,
    /// Small stable id of the recording thread (1-based).
    pub tid: u64,
    /// Start time in nanoseconds since the process-wide telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// `key=value` fields attached at the recording site.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// End time in nanoseconds since the telemetry epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Per-thread buffer of finished events, shared with the global registry.
struct ThreadBuffer {
    events: Mutex<Vec<Event>>,
}

/// Registry of every thread buffer ever created, plus the enabled flag's
/// bookkeeping. The `Mutex` is only taken on first-record-per-thread and
/// on drains — never on the per-event hot path.
static BUFFERS: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: OnceLock<(u64, Arc<ThreadBuffer>)> = const { OnceLock::new() };
}

/// The process-wide monotonic epoch all timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the telemetry epoch.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The small stable id of the current thread (assigned on first use).
pub(crate) fn thread_id() -> u64 {
    LOCAL.with(|cell| cell.get_or_init(new_thread_buffer).0)
}

fn new_thread_buffer() -> (u64, Arc<ThreadBuffer>) {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let buf = Arc::new(ThreadBuffer { events: Mutex::new(Vec::new()) });
    BUFFERS.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&buf));
    (tid, buf)
}

/// Queues one finished event into the current thread's buffer and, when
/// the flight recorder is active, into its ring.
///
/// No-op while nothing records; bounded by [`MAX_EVENTS_PER_THREAD`]
/// (overflow is counted, not stored).
pub(crate) fn record(event: Event) {
    #[cfg(feature = "enabled")]
    if crate::recorder::active() {
        crate::recorder::record(&event);
    }
    if !crate::enabled() {
        return;
    }
    LOCAL.with(|cell| {
        let (_, buf) = cell.get_or_init(new_thread_buffer);
        let mut events = buf.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() < MAX_EVENTS_PER_THREAD {
            events.push(event);
        } else {
            drop(events);
            dropped_counter().add_unconditional(1);
        }
    });
}

/// The overflow counter, registered lazily so the disabled path never
/// touches the metrics registry.
fn dropped_counter() -> &'static Arc<crate::Counter> {
    static DROPPED: OnceLock<Arc<crate::Counter>> = OnceLock::new();
    DROPPED.get_or_init(|| crate::metrics::counter("tgi_telemetry_dropped_events_total"))
}

/// Installs the global collector: clears any stale thread buffers and
/// starts recording. Returns `false` (and changes nothing) if a collector
/// is already installed, or when telemetry is compiled out.
pub fn install() -> bool {
    #[cfg(feature = "enabled")]
    {
        let buffers = BUFFERS.lock().unwrap_or_else(PoisonError::into_inner);
        if crate::ENABLED.load(Ordering::SeqCst) {
            return false;
        }
        epoch(); // pin the epoch before the first event
        for buf in buffers.iter() {
            buf.events.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
        crate::metrics::reset();
        crate::ENABLED.store(true, Ordering::SeqCst);
        true
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Whether a collector is currently installed.
pub fn installed() -> bool {
    crate::enabled()
}

/// Collects every buffered event from every thread, in `(start, -dur)`
/// order (parents sort before the children they contain). Recording stays
/// enabled; events are handed out exactly once.
pub fn drain() -> Vec<Event> {
    let buffers = BUFFERS.lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = Vec::new();
    for buf in buffers.iter() {
        out.append(&mut buf.events.lock().unwrap_or_else(PoisonError::into_inner));
    }
    drop(buffers);
    out.sort_by(|a, b| {
        (a.start_ns, std::cmp::Reverse(a.dur_ns), a.tid).cmp(&(
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            b.tid,
        ))
    });
    out
}

/// Stops recording and returns the final drain. Safe to call when no
/// collector is installed (returns whatever is still buffered).
pub fn uninstall() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    crate::ENABLED.store(false, Ordering::SeqCst);
    drain()
}
