//! Exporters: JSONL event stream, Chrome `trace_event` JSON, and
//! Prometheus text exposition.
//!
//! All three are hand-rolled (the crate stays dependency-free); the Chrome
//! output loads directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev), and the Prometheus text parses with
//! any standard scraper.

use crate::collector::{Event, EventKind};
use crate::metrics::MetricsSnapshot;
use crate::span::FieldValue;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as JSON (non-finite values become `0`, which
/// JSON cannot represent natively).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_field(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::I64(v) => format!("{v}"),
        FieldValue::F64(v) => json_f64(*v),
        FieldValue::Bool(v) => format!("{v}"),
        FieldValue::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

fn json_args(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(key), json_field(value));
    }
    out.push('}');
    out
}

/// Renders events as one JSON object per line (stable machine-readable log).
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"fields\":{}}}",
            ev.kind.label(),
            json_escape(ev.name),
            json_escape(ev.cat),
            ev.tid,
            ev.start_ns,
            ev.dur_ns,
            json_args(&ev.fields),
        );
    }
    out
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Object Format":
/// a top-level `traceEvents` array of `ph:"X"` complete events and
/// `ph:"i"` instants, timestamps in microseconds).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = ev.start_ns as f64 / 1000.0;
        match ev.kind {
            EventKind::Span => {
                let dur = ev.dur_ns as f64 / 1000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_escape(ev.name),
                    json_escape(ev.cat),
                    json_f64(ts),
                    json_f64(dur),
                    ev.tid,
                    json_args(&ev.fields),
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_escape(ev.name),
                    json_escape(ev.cat),
                    json_f64(ts),
                    ev.tid,
                    json_args(&ev.fields),
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Keeps `[a-zA-Z0-9_:]`, mapping anything else to `_` (Prometheus metric
/// name charset).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot as Prometheus text exposition (format 0.0.4).
pub fn prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_f64(*value));
    }
    for hist in &snapshot.histograms {
        let name = prom_name(&hist.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, bucket) in hist.bounds.iter().zip(hist.buckets.iter()) {
            cumulative += bucket;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", prom_f64(*bound));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", prom_f64(hist.sum));
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Writes [`chrome_trace`] output to `path`, creating parent directories.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    write_with_parents(path.as_ref(), &chrome_trace(events))
}

/// Writes [`jsonl`] output to `path`, creating parent directories.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    write_with_parents(path.as_ref(), &jsonl(events))
}

/// Writes [`prometheus`] output to `path`, creating parent directories.
pub fn write_prometheus(path: impl AsRef<Path>, snapshot: &MetricsSnapshot) -> io::Result<()> {
    write_with_parents(path.as_ref(), &prometheus(snapshot))
}

fn write_with_parents(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}
