//! Exporters: JSONL event stream, Chrome `trace_event` JSON, and
//! Prometheus text exposition.
//!
//! All three are hand-rolled (the crate stays dependency-free); the Chrome
//! output loads directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev), and the Prometheus text parses with
//! any standard scraper.

use crate::collector::{Event, EventKind};
use crate::metrics::MetricsSnapshot;
use crate::span::FieldValue;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as JSON (non-finite values become `0`, which
/// JSON cannot represent natively).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_field(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::I64(v) => format!("{v}"),
        FieldValue::F64(v) => json_f64(*v),
        FieldValue::Bool(v) => format!("{v}"),
        FieldValue::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

fn json_args(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(key), json_field(value));
    }
    out.push('}');
    out
}

/// Renders events as one JSON object per line (stable machine-readable log).
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"fields\":{}}}",
            ev.kind.label(),
            json_escape(ev.name),
            json_escape(ev.cat),
            ev.tid,
            ev.start_ns,
            ev.dur_ns,
            json_args(&ev.fields),
        );
    }
    out
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Object Format":
/// a top-level `traceEvents` array of `ph:"X"` complete events and
/// `ph:"i"` instants, timestamps in microseconds).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = ev.start_ns as f64 / 1000.0;
        match ev.kind {
            EventKind::Span => {
                let dur = ev.dur_ns as f64 / 1000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_escape(ev.name),
                    json_escape(ev.cat),
                    json_f64(ts),
                    json_f64(dur),
                    ev.tid,
                    json_args(&ev.fields),
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_escape(ev.name),
                    json_escape(ev.cat),
                    json_f64(ts),
                    ev.tid,
                    json_args(&ev.fields),
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Sanitizes a metric name to the Prometheus charset: keeps
/// `[a-zA-Z0-9_:]`, maps anything else to `_`, and prefixes `_` when the
/// name would start with a digit. Callers rendering hand-built series
/// (the server's SLO blocks) use this so arbitrary identifiers stay
/// scrapeable.
pub fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the text exposition format: backslash,
/// double-quote, and newline get backslash escapes; everything else
/// passes through.
pub fn prom_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the exposition format: backslash and
/// newline only (quotes are legal in help text).
fn prom_help_text(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The `# HELP` line for a metric: registered text
/// ([`crate::metrics::describe`]) or a generated fallback.
fn prom_help_line(out: &mut String, sanitized: &str, raw: &str) {
    let help =
        crate::metrics::help_for(raw).unwrap_or_else(|| "No description registered.".to_string());
    let _ = writeln!(out, "# HELP {sanitized} {}", prom_help_text(&help));
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot as Prometheus text exposition (format
/// 0.0.4): a `# HELP` line (registered via [`crate::metrics::describe`]
/// or a fallback), a `# TYPE` line, then the samples, with names and
/// label values sanitized per the format.
pub fn prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (raw, value) in &snapshot.counters {
        let name = prom_name(raw);
        prom_help_line(&mut out, &name, raw);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (raw, value) in &snapshot.gauges {
        let name = prom_name(raw);
        prom_help_line(&mut out, &name, raw);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_f64(*value));
    }
    for hist in &snapshot.histograms {
        let name = prom_name(&hist.name);
        prom_help_line(&mut out, &name, &hist.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, bucket) in hist.bounds.iter().zip(hist.buckets.iter()) {
            cumulative += bucket;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", prom_f64(*bound));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", prom_f64(hist.sum));
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Writes [`chrome_trace`] output to `path`, creating parent directories.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    write_with_parents(path.as_ref(), &chrome_trace(events))
}

/// Writes [`jsonl`] output to `path`, creating parent directories.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    write_with_parents(path.as_ref(), &jsonl(events))
}

/// Writes [`prometheus`] output to `path`, creating parent directories.
pub fn write_prometheus(path: impl AsRef<Path>, snapshot: &MetricsSnapshot) -> io::Result<()> {
    write_with_parents(path.as_ref(), &prometheus(snapshot))
}

fn write_with_parents(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    /// Minimal exposition-format parser: returns `(helps, types, samples)`
    /// keyed by metric name, enforcing the line grammar as it goes.
    #[allow(clippy::type_complexity)]
    fn parse_exposition(
        text: &str,
    ) -> (Vec<(String, String)>, Vec<(String, String)>, Vec<(String, f64)>) {
        let mut helps = Vec::new();
        let mut types = Vec::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has name and text");
                helps.push((name.to_string(), help.to_string()));
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown TYPE {kind}");
                types.push((name.to_string(), kind.to_string()));
            } else if !line.is_empty() {
                let (series, value) = line.rsplit_once(' ').expect("sample has value");
                let name = series.split('{').next().unwrap().to_string();
                assert!(
                    name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "unsanitized name {name:?}"
                );
                assert!(
                    !name.chars().next().unwrap().is_ascii_digit(),
                    "name {name:?} starts with a digit"
                );
                let value: f64 = match value {
                    "+Inf" => f64::INFINITY,
                    "-Inf" => f64::NEG_INFINITY,
                    v => v.parse().unwrap_or_else(|_| panic!("bad value {v:?}")),
                };
                samples.push((name, value));
            }
        }
        (helps, types, samples)
    }

    #[test]
    fn prometheus_round_trips_with_help_and_sanitized_names() {
        crate::metrics::describe(
            "export.test/requests-per-sec",
            "Requests per second, with a back\\slash and\nnewline.",
        );
        let snapshot = MetricsSnapshot {
            counters: vec![("export.test/requests-per-sec".to_string(), 42)],
            gauges: vec![("9starts_with_digit".to_string(), 1.5)],
            histograms: vec![HistogramSnapshot {
                name: "export.test.latency".to_string(),
                bounds: vec![0.1, 1.0],
                buckets: vec![3, 2, 1],
                sum: 2.25,
                count: 6,
            }],
        };
        let text = prometheus(&snapshot);
        let (helps, types, samples) = parse_exposition(&text);

        // Every family has exactly one HELP and one TYPE, in the
        // sanitized namespace.
        let names = ["export_test_requests_per_sec", "_9starts_with_digit", "export_test_latency"];
        for name in names {
            assert_eq!(helps.iter().filter(|(n, _)| n == name).count(), 1, "HELP for {name}");
            assert_eq!(types.iter().filter(|(n, _)| n == name).count(), 1, "TYPE for {name}");
        }

        // Registered help survives with escapes intact (single line).
        let help = &helps.iter().find(|(n, _)| n == names[0]).unwrap().1;
        assert_eq!(help, "Requests per second, with a back\\\\slash and\\nnewline.");

        // Values round-trip.
        assert!(samples.contains(&("export_test_requests_per_sec".to_string(), 42.0)));
        assert!(samples.contains(&("_9starts_with_digit".to_string(), 1.5)));
        assert!(samples.contains(&("export_test_latency_sum".to_string(), 2.25)));
        assert!(samples.contains(&("export_test_latency_count".to_string(), 6.0)));

        // Histogram buckets are cumulative and end at count.
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(n, _)| n == "export_test_latency_bucket")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(buckets, vec![3.0, 5.0, 6.0]);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let raw = "node \"a\"\\b\nline";
        let escaped = prom_label_value(raw);
        assert_eq!(escaped, "node \\\"a\\\"\\\\b\\nline");
        // Unescape (the scraper's job) recovers the original.
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => panic!("bad escape \\{other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, raw);
    }
}
