//! # tgi-telemetry — offline instrumentation for the TGI pipeline
//!
//! A lightweight, dependency-free (std-only, compat-shim style) telemetry
//! layer giving the whole workspace **spans**, **metrics**, and **exportable
//! run timelines**:
//!
//! * **Spans** ([`span()`], [`instant`]) are RAII guards carrying a static
//!   name, a category, monotonic nanosecond timestamps, a small stable
//!   thread id, and optional `key=value` fields. Finished spans land in
//!   per-thread buffers that the global collector drains — the hot path
//!   never touches a shared lock beyond the thread's own (uncontended)
//!   buffer mutex.
//! * **Metrics** ([`metrics::counter`], [`metrics::gauge`],
//!   [`metrics::histogram`], or the caching [`counter!`]/[`gauge!`]/
//!   [`histogram!`] macros) are registered once in a global registry and
//!   recorded with single atomic operations — no locks on the hot path.
//! * **Exporters** ([`export`]) render a drained event stream as JSONL, the
//!   metrics registry as Prometheus text exposition, and a whole run as
//!   Chrome `trace_event` JSON that opens directly in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! ## Enabling
//!
//! Nothing is recorded until [`install`] is called (the CLIs do this behind
//! `--telemetry`/`--trace-out`). While no collector is installed every
//! recording entry point early-returns after one relaxed atomic load — a
//! few nanoseconds, proven by the `telemetry_overhead` bench in `tgi-bench`.
//! Compiling with `--no-default-features` removes even that load: the
//! `enabled` cargo feature gates all recording, so telemetry compiles out
//! of the workspace entirely while the API surface stays intact.
//!
//! ```
//! tgi_telemetry::install();
//! {
//!     let _span = tgi_telemetry::span("work").field("items", 3u64);
//!     tgi_telemetry::counter!("items_total").add(3);
//! }
//! let events = tgi_telemetry::uninstall();
//! assert_eq!(events.len(), 1);
//! let trace = tgi_telemetry::export::chrome_trace(&events);
//! assert!(trace.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod metrics;
pub mod quantile;
pub mod recorder;
pub mod span;
pub mod summary;

pub use collector::{drain, install, installed, uninstall, Event, EventKind};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use quantile::{QuantileHistogram, QuantileSummary};
pub use recorder::RecorderStats;
pub use span::{instant, span, span_cat, FieldValue, Span};
pub use summary::summary;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "enabled")]
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a collector is installed and recording.
///
/// Instrumentation sites that would allocate (field formatting, metric
/// registration) should gate on this so the disabled path stays free of
/// heap traffic. With the `enabled` cargo feature off this is a constant
/// `false` and gated code compiles out.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Whether any recording sink wants events: the collector
/// ([`enabled`]) or the flight recorder ([`recorder::active`]). Span
/// creation gates on this so rings fill even while no collector is
/// installed.
#[inline(always)]
pub fn recording() -> bool {
    enabled() || recorder::active()
}
