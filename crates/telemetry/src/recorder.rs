//! The flight recorder: an always-on, bounded ring of the most recent
//! spans and instants, dumpable as Chrome trace JSON after the fact.
//!
//! The collector ([`crate::install`]) is a *session* tool — it buffers
//! everything until a drain, which is wrong for a long-lived server. The
//! recorder inverts that: each thread keeps a fixed-capacity ring of its
//! most recent events, so memory is bounded at
//! `threads × capacity × sizeof(Event)` forever, and the last moments
//! before an incident are always available. Dumps are triggered on
//! demand ([`snapshot`]/[`write_dump`]), from a chained `std::panic` hook
//! ([`install_panic_hook`]), or by the server's 429-storm trigger.
//!
//! Writers never wait: the per-thread ring is guarded by a mutex that the
//! recording thread only ever `try_lock`s — if a concurrent dump holds
//! it, the write is dropped and counted ([`RecorderStats::skipped_writes`])
//! rather than stalling the hot path. Only dumps take the lock
//! unconditionally.
//!
//! With the `enabled` cargo feature off the whole recorder compiles to
//! no-ops, like the rest of the crate.

use crate::collector::Event;
use std::io;
use std::path::Path;

#[cfg(feature = "enabled")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};

    pub(super) static ACTIVE: AtomicBool = AtomicBool::new(false);
    pub(super) static CAPACITY: AtomicUsize = AtomicUsize::new(0);
    pub(super) static SKIPPED: AtomicU64 = AtomicU64::new(0);
    pub(super) static DUMPS: AtomicU64 = AtomicU64::new(0);

    /// One thread's ring: a fixed-capacity vector written circularly.
    pub(super) struct Ring {
        pub(super) slots: Mutex<RingSlots>,
    }

    pub(super) struct RingSlots {
        pub(super) events: Vec<Event>,
        /// Next overwrite position once `events` has filled to capacity.
        pub(super) head: usize,
        pub(super) capacity: usize,
    }

    pub(super) fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        pub(super) static LOCAL_RING: OnceLock<Arc<Ring>> = const { OnceLock::new() };
    }

    pub(super) fn local_ring() -> Arc<Ring> {
        LOCAL_RING.with(|cell| {
            Arc::clone(cell.get_or_init(|| {
                let capacity = CAPACITY.load(Ordering::Relaxed).max(1);
                let ring = Arc::new(Ring {
                    slots: Mutex::new(RingSlots {
                        events: Vec::with_capacity(capacity.min(1024)),
                        head: 0,
                        capacity,
                    }),
                });
                registry().lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&ring));
                ring
            }))
        })
    }
}

/// Point-in-time recorder bookkeeping, exposed on `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Whether the recorder is currently retaining events.
    pub active: bool,
    /// Ring capacity per thread (0 while inactive).
    pub capacity_per_thread: usize,
    /// Threads that have registered a ring.
    pub threads: usize,
    /// Events currently retained across all rings.
    pub buffered: usize,
    /// Writes dropped because a dump held the ring lock.
    pub skipped_writes: u64,
    /// Dumps written ([`write_dump`] and the panic hook).
    pub dumps: u64,
}

/// Starts retaining events, `capacity` per thread. Returns `false` (and
/// changes nothing) if already active or compiled out. Existing rings
/// are cleared so a new recording session starts empty.
pub fn enable(capacity: usize) -> bool {
    #[cfg(feature = "enabled")]
    {
        use std::sync::atomic::Ordering;
        use std::sync::PoisonError;
        let registry = imp::registry().lock().unwrap_or_else(PoisonError::into_inner);
        if imp::ACTIVE.load(Ordering::SeqCst) {
            return false;
        }
        imp::CAPACITY.store(capacity.max(1), Ordering::SeqCst);
        for ring in registry.iter() {
            let mut slots = ring.slots.lock().unwrap_or_else(PoisonError::into_inner);
            slots.events.clear();
            slots.head = 0;
            slots.capacity = capacity.max(1);
        }
        imp::ACTIVE.store(true, Ordering::SeqCst);
        true
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = capacity;
        false
    }
}

/// Stops retaining events (rings keep their contents for a final dump).
pub fn disable() {
    #[cfg(feature = "enabled")]
    imp::ACTIVE.store(false, std::sync::atomic::Ordering::SeqCst);
}

/// Whether the recorder is retaining events. One relaxed load; constant
/// `false` when compiled out.
#[inline(always)]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::ACTIVE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Appends one event to the current thread's ring, overwriting the
/// oldest entry at capacity. Never blocks: if a dump holds the ring
/// lock the write is counted as skipped instead.
#[cfg(feature = "enabled")]
pub(crate) fn record(event: &Event) {
    use std::sync::atomic::Ordering;
    let ring = imp::local_ring();
    match ring.slots.try_lock() {
        Ok(mut slots) => {
            if slots.events.len() < slots.capacity {
                slots.events.push(event.clone());
            } else {
                let head = slots.head;
                slots.events[head] = event.clone();
                slots.head = (head + 1) % slots.capacity;
            }
        }
        Err(_) => {
            imp::SKIPPED.fetch_add(1, Ordering::Relaxed);
        }
    };
}

/// Copies out every retained event, oldest first (by start time). The
/// rings are locked one at a time; recording threads skip (and count)
/// writes instead of waiting.
pub fn snapshot() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    {
        use std::sync::PoisonError;
        let rings: Vec<_> = {
            let registry = imp::registry().lock().unwrap_or_else(PoisonError::into_inner);
            registry.iter().cloned().collect()
        };
        let mut out = Vec::new();
        for ring in rings {
            let slots = ring.slots.lock().unwrap_or_else(PoisonError::into_inner);
            // Ring order: head..end is the oldest run, 0..head the newest.
            out.extend_from_slice(&slots.events[slots.head..]);
            out.extend_from_slice(&slots.events[..slots.head]);
        }
        out.sort_by(|a, b| {
            (a.start_ns, std::cmp::Reverse(a.dur_ns), a.tid).cmp(&(
                b.start_ns,
                std::cmp::Reverse(b.dur_ns),
                b.tid,
            ))
        });
        out
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Renders the current rings as Chrome `trace_event` JSON.
pub fn dump_chrome() -> String {
    crate::export::chrome_trace(&snapshot())
}

/// Writes [`dump_chrome`] to `path` (parent directories created) and
/// counts the dump in [`RecorderStats::dumps`].
pub fn write_dump(path: impl AsRef<Path>) -> io::Result<()> {
    let result = write_dump_inner(path.as_ref());
    #[cfg(feature = "enabled")]
    if result.is_ok() {
        imp::DUMPS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    result
}

fn write_dump_inner(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, dump_chrome())
}

/// Installs a `std::panic` hook (chained in front of the existing one)
/// that dumps the recorder to `path` before the process unwinds — the
/// black-box half of the flight recorder. Only the first call installs;
/// later calls are no-ops. No-op when compiled out.
pub fn install_panic_hook(path: impl Into<std::path::PathBuf>) {
    #[cfg(feature = "enabled")]
    {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        let path = path.into();
        HOOK.call_once(move || {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let _ = write_dump(&path);
                previous(info);
            }));
        });
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = path.into();
    }
}

/// Current recorder bookkeeping.
pub fn stats() -> RecorderStats {
    #[cfg(feature = "enabled")]
    {
        use std::sync::atomic::Ordering;
        use std::sync::PoisonError;
        let registry = imp::registry().lock().unwrap_or_else(PoisonError::into_inner);
        let mut buffered = 0usize;
        for ring in registry.iter() {
            buffered += ring.slots.lock().unwrap_or_else(PoisonError::into_inner).events.len();
        }
        RecorderStats {
            active: imp::ACTIVE.load(Ordering::Relaxed),
            capacity_per_thread: imp::CAPACITY.load(Ordering::Relaxed),
            threads: registry.len(),
            buffered,
            skipped_writes: imp::SKIPPED.load(Ordering::Relaxed),
            dumps: imp::DUMPS.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        RecorderStats::default()
    }
}
