//! End-of-run summary: a plain-text table aggregating spans by name plus
//! the current metric values, suitable for printing to stderr.

use crate::collector::{Event, EventKind};
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

struct SpanAgg {
    name: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

fn fmt_dur(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Renders a human-readable summary of a drained event stream and a metrics
/// snapshot: span aggregates (count / total / mean / max per name, sorted by
/// total time descending), then counters, gauges, and histograms.
pub fn summary(events: &[Event], snapshot: &MetricsSnapshot) -> String {
    let mut aggs: Vec<SpanAgg> = Vec::new();
    let mut instants = 0u64;
    for ev in events {
        match ev.kind {
            EventKind::Instant => instants += 1,
            EventKind::Span => match aggs.iter_mut().find(|a| a.name == ev.name) {
                Some(agg) => {
                    agg.count += 1;
                    agg.total_ns += ev.dur_ns;
                    agg.max_ns = agg.max_ns.max(ev.dur_ns);
                }
                None => aggs.push(SpanAgg {
                    name: ev.name,
                    count: 1,
                    total_ns: ev.dur_ns,
                    max_ns: ev.dur_ns,
                }),
            },
        }
    }
    aggs.sort_by_key(|a| std::cmp::Reverse(a.total_ns));

    let mut out = String::new();
    let _ = writeln!(out, "== telemetry summary ==");
    let _ = writeln!(
        out,
        "{} span(s) across {} name(s), {} instant marker(s)",
        aggs.iter().map(|a| a.count).sum::<u64>(),
        aggs.len(),
        instants
    );
    if !aggs.is_empty() {
        let name_w = aggs.iter().map(|a| a.name.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            out,
            "  {:<name_w$} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total", "mean", "max"
        );
        for agg in &aggs {
            let mean = agg.total_ns / agg.count.max(1);
            let _ = writeln!(
                out,
                "  {:<name_w$} {:>8} {:>12} {:>12} {:>12}",
                agg.name,
                agg.count,
                fmt_dur(agg.total_ns),
                fmt_dur(mean),
                fmt_dur(agg.max_ns)
            );
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name} = {value:.6}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for hist in &snapshot.histograms {
            let mean = if hist.count > 0 { hist.sum / hist.count as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {}: count={} sum={:.6} mean={:.6}",
                hist.name, hist.count, hist.sum, mean
            );
        }
    }
    out
}
