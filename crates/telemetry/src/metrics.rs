//! Named counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are registered once (by name) in a global registry and handed
//! out as `Arc`s; recording is a single atomic RMW with no locks. The
//! [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros cache the `Arc` in a
//! per-callsite `OnceLock` so steady-state recording never touches the
//! registry mutex either. While no collector is installed ([`crate::enabled`]
//! is `false`) all recording methods early-return, so disabled cost is one
//! relaxed atomic load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while no collector is installed).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.add_unconditional(n);
        }
    }

    /// Adds 1 (no-op while no collector is installed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` even while disabled — for internal bookkeeping (the
    /// collector's own dropped-events counter) that must never be lost.
    #[inline]
    pub(crate) fn add_unconditional(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` sample (bit-cast into an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while no collector is installed).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` with a CAS loop (no-op while no collector is installed).
    #[inline]
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, caller-supplied bucket upper bounds.
///
/// Observations use one atomic add on the matching bucket plus two for the
/// running sum/count — lock-free, like the other metric kinds.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of observed values, accumulated in nanos-style fixed point
    /// (micro-units) so it fits an atomic integer.
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, sum_micros: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Records one observation (no-op while no collector is installed).
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add((v.max(0.0) * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket upper bounds (the final `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Self::bounds`] (the `+Inf` bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// One registered metric, by kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: Mutex<Vec<(String, Metric)>> = Mutex::new(Vec::new());

/// `name → help` text registered via [`describe`], rendered as `# HELP`
/// lines by the Prometheus exporter.
static HELP: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Registers help text for the metric named `name` (first call wins).
/// Metrics without a description get a generated fallback in the
/// exposition output.
pub fn describe(name: &str, help: &str) {
    let mut registry = HELP.lock().unwrap_or_else(PoisonError::into_inner);
    if registry.iter().any(|(n, _)| n == name) {
        return;
    }
    registry.push((name.to_string(), help.to_string()));
}

/// The registered help text for `name`, if any.
pub fn help_for(name: &str) -> Option<String> {
    let registry = HELP.lock().unwrap_or_else(PoisonError::into_inner);
    registry.iter().find(|(n, _)| n == name).map(|(_, h)| h.clone())
}

fn lookup_or_insert(name: &str, make: impl FnOnce() -> Metric) -> Metric {
    let mut registry = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((_, metric)) = registry.iter().find(|(n, _)| n == name) {
        return metric.clone();
    }
    let metric = make();
    registry.push((name.to_string(), metric.clone()));
    metric
}

/// Returns the counter named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    match lookup_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns the gauge named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    match lookup_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns the histogram named `name`, registering it (with `bounds` as the
/// bucket upper bounds) on first use. Later calls ignore `bounds`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    match lookup_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new(bounds.to_vec())))) {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Bucket upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one longer than `bounds`.
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A point-in-time copy of every registered metric's state.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, in registration order.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram's state, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let registry = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in registry.iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
            Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
            Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                sum: h.sum(),
                count: h.count(),
            }),
        }
    }
    snap
}

/// Resets every registered metric to zero (used by [`crate::install`] so a
/// fresh collection session starts from a clean slate).
pub fn reset() {
    let registry = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    for (_, metric) in registry.iter() {
        match metric {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.bits.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                for bucket in &h.buckets {
                    bucket.store(0, Ordering::Relaxed);
                }
                h.sum_micros.store(0, Ordering::Relaxed);
                h.count.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Returns a per-callsite cached [`Counter`]; `counter!("name").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Returns a per-callsite cached [`Gauge`]; `gauge!("name").set(1.5)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Returns a per-callsite cached [`Histogram`];
/// `histogram!("name", &[0.1, 1.0]).observe(0.3)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static CELL: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::metrics::histogram($name, $bounds))
    }};
}
