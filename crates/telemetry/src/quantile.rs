//! Log-linear quantile histogram with a provable relative-error bound.
//!
//! [`QuantileHistogram`] replaces fixed-bucket latency histograms for
//! quantile queries: buckets are spaced geometrically with ratio
//! `γ = (1+α)/(1−α)`, so the bucket holding a value `v` spans
//! `(γ^(k-1), γ^k]` and the mid-bucket estimate `2γ^k/(γ+1)` is off by at
//! most `α·v` — the classic DDSketch guarantee. Observations are one
//! `ln`, one atomic increment, and two atomic folds (sum, extrema): the
//! structure is shared by `&self` across threads with no locks, and two
//! histograms with the same configuration [`merge`](QuantileHistogram::merge)
//! by adding buckets, preserving the bound regardless of merge order.
//!
//! Memory is fixed at construction: `O(log(max/min)/α)` buckets
//! (~2.8 k buckets ≈ 22 KiB at the defaults). Values outside the
//! configured `[min_value, max_value]` range are clamped into the edge
//! buckets — the error bound is advertised for in-range values only.
//!
//! Unlike spans and metrics, this type is a plain data structure: it does
//! **not** gate on [`crate::enabled`], so latency tracking (load
//! generators, server SLOs) works even when the collector is compiled out.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default relative-error bound.
pub const DEFAULT_ALPHA: f64 = 0.01;
/// Default smallest resolvable value (1 ns when observing seconds).
pub const DEFAULT_MIN_VALUE: f64 = 1e-9;
/// Default largest resolvable value.
pub const DEFAULT_MAX_VALUE: f64 = 1e15;

/// A mergeable, thread-safe log-linear histogram answering quantile
/// queries within a configured relative-error bound. See the module docs
/// for the guarantee.
#[derive(Debug)]
pub struct QuantileHistogram {
    alpha: f64,
    min_value: f64,
    max_value: f64,
    /// `ln γ` where `γ = (1+α)/(1−α)`.
    ln_gamma: f64,
    /// Log-domain key of `min_value`: `ceil(ln(min_value)/ln γ)`.
    key_min: i64,
    /// `buckets[0]` holds values ≤ `min_value` (and invalid inputs);
    /// `buckets[i]` (i ≥ 1) holds key `key_min + i`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, CAS-folded as `f64` bits.
    sum_bits: AtomicU64,
    /// Extrema of (clamped) observations. Non-negative IEEE-754 doubles
    /// order the same as their bit patterns, so `fetch_min`/`fetch_max`
    /// on the bits are exact.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl QuantileHistogram {
    /// A histogram with relative-error bound `alpha` over the default
    /// value range.
    ///
    /// # Panics
    /// If `alpha` is outside `(0.0001, 0.5)`.
    pub fn new(alpha: f64) -> Self {
        Self::with_range(alpha, DEFAULT_MIN_VALUE, DEFAULT_MAX_VALUE)
    }

    /// A histogram with bound `alpha` resolving values in
    /// `[min_value, max_value]` (values outside clamp to the edges).
    ///
    /// # Panics
    /// If `alpha` is outside `(0.0001, 0.5)` or the range is not
    /// `0 < min_value < max_value` and finite.
    pub fn with_range(alpha: f64, min_value: f64, max_value: f64) -> Self {
        assert!(
            alpha > 0.0001 && alpha < 0.5,
            "alpha {alpha} outside the supported (0.0001, 0.5) band"
        );
        assert!(
            min_value > 0.0 && max_value > min_value && max_value.is_finite(),
            "invalid value range [{min_value}, {max_value}]"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let key_min = (min_value.ln() / ln_gamma).ceil() as i64;
        let key_max = (max_value.ln() / ln_gamma).ceil() as i64;
        let spread = usize::try_from(key_max - key_min).expect("range keys are ordered");
        let buckets = (0..=spread + 1).map(|_| AtomicU64::new(0)).collect();
        QuantileHistogram {
            alpha,
            min_value,
            max_value,
            ln_gamma,
            key_min,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
        }
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of buckets (fixed at construction; memory is
    /// `buckets() * 8` bytes plus the struct header).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Records one observation. Invalid inputs (NaN, negatives) count
    /// into the underflow bucket as `min_value`.
    #[inline]
    pub fn observe(&self, v: f64) {
        let clamped = if v.is_finite() && v > 0.0 {
            v.clamp(self.min_value, self.max_value)
        } else {
            self.min_value
        };
        let idx = self.bucket_index(clamped);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_bits.fetch_min(clamped.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(clamped.to_bits(), Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + clamped).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    fn bucket_index(&self, clamped: f64) -> usize {
        let key = (clamped.ln() / self.ln_gamma).ceil() as i64;
        let idx = key - self.key_min;
        if idx <= 0 {
            0
        } else {
            (idx as usize).min(self.buckets.len() - 1)
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of (clamped) observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest (clamped) observation, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        let bits = self.min_bits.load(Ordering::Relaxed);
        (bits != f64::INFINITY.to_bits()).then(|| f64::from_bits(bits))
    }

    /// Largest (clamped) observation, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed)))
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`), `None` while empty.
    ///
    /// Rank semantics match a sorted array: the estimate targets
    /// `sorted[ceil(q · (n−1))]`, and for in-range values is within
    /// `alpha` relative error of it.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (n - 1) as f64).ceil() as u64; // target sorted[rank]
        let mut cumulative = 0u64;
        let mut idx = counts.len() - 1;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                idx = i;
                break;
            }
        }
        let estimate = if idx == 0 {
            self.min_value
        } else {
            let key = self.key_min + idx as i64;
            let gamma_k = (key as f64 * self.ln_gamma).exp();
            gamma_k * 2.0 / ((self.ln_gamma.exp()) + 1.0)
        };
        // Clamping into the observed extrema never widens the error: the
        // true quantile lies inside [min, max].
        let lo = self.min().unwrap_or(self.min_value);
        let hi = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        Some(estimate.clamp(lo, hi))
    }

    /// Folds another histogram's observations into this one.
    ///
    /// # Panics
    /// If the two histograms were built with different configurations.
    pub fn merge(&self, other: &QuantileHistogram) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits()
                && self.min_value.to_bits() == other.min_value.to_bits()
                && self.max_value.to_bits() == other.max_value.to_bits(),
            "merging histograms with different configurations"
        );
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.min_bits.fetch_min(other.min_bits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_bits.fetch_max(other.max_bits.load(Ordering::Relaxed), Ordering::Relaxed);
        let delta = other.sum();
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// A plain-data summary: count, sum, extrema, and the standard
    /// latency quantiles (p50/p99/p999).
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            p999: self.quantile(0.999).unwrap_or(0.0),
        }
    }
}

/// Point-in-time summary of a [`QuantileHistogram`] (plain data — callers
/// that serialize it define their own wire shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 while empty).
    pub min: f64,
    /// Largest observation (0 while empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// 99.9th percentile estimate.
    pub p999: f64,
}

impl QuantileSummary {
    /// Mean of observations (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle rank the estimator targets.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn assert_within_bound(hist: &QuantileHistogram, sorted: &[f64], q: f64) {
        let exact = exact_quantile(sorted, q);
        let est = hist.quantile(q).expect("non-empty");
        let bound = hist.alpha() * exact * (1.0 + 1e-9) + 1e-12;
        assert!(
            (est - exact).abs() <= bound,
            "q={q}: estimate {est} vs exact {exact} exceeds α={}",
            hist.alpha()
        );
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let hist = QuantileHistogram::new(0.01);
        assert_eq!(hist.quantile(0.5), None);
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min(), None);
        assert_eq!(hist.max(), None);
        assert_eq!(hist.summary().p99, 0.0);
    }

    #[test]
    fn single_value_is_recovered_within_bound() {
        let hist = QuantileHistogram::new(0.01);
        hist.observe(0.125);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = hist.quantile(q).unwrap();
            assert!((est - 0.125).abs() <= 0.01 * 0.125 + 1e-12, "q={q}: {est}");
        }
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.min(), Some(0.125));
        assert_eq!(hist.max(), Some(0.125));
    }

    #[test]
    fn uniform_values_within_bound_at_all_standard_quantiles() {
        let hist = QuantileHistogram::new(0.01);
        let mut values: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect();
        for &v in &values {
            hist.observe(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_within_bound(&hist, &values, q);
        }
    }

    #[test]
    fn heavy_tail_within_bound() {
        // Five decades of magnitude: microseconds to tens of seconds.
        let hist = QuantileHistogram::new(0.02);
        let mut values = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            values.push(1e-6 * (10f64).powf(5.0 * u));
        }
        for &v in &values {
            hist.observe(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.99, 0.999] {
            assert_within_bound(&hist, &values, q);
        }
    }

    #[test]
    fn merge_matches_single_histogram() {
        let whole = QuantileHistogram::new(0.01);
        let parts: Vec<QuantileHistogram> = (0..4).map(|_| QuantileHistogram::new(0.01)).collect();
        for i in 0..1_000 {
            let v = (i + 1) as f64 * 0.003;
            whole.observe(v);
            parts[i % 4].observe(v);
        }
        let merged = QuantileHistogram::new(0.01);
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn invalid_and_out_of_range_values_clamp() {
        let hist = QuantileHistogram::with_range(0.01, 1e-3, 1e3);
        hist.observe(f64::NAN);
        hist.observe(-5.0);
        hist.observe(0.0);
        hist.observe(1e9); // clamps to max_value
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.min(), Some(1e-3));
        assert_eq!(hist.max(), Some(1e3));
        let p_hi = hist.quantile(1.0).unwrap();
        assert!((p_hi - 1e3).abs() <= 0.01 * 1e3 + 1e-12, "{p_hi}");
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let hist = std::sync::Arc::new(QuantileHistogram::new(0.01));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.observe((t * 10_000 + i + 1) as f64 * 1e-5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.count(), 40_000);
        let sum = hist.sum();
        let exact: f64 = (1..=40_000u64).map(|i| i as f64 * 1e-5).sum();
        assert!((sum - exact).abs() / exact < 1e-9, "sum {sum} vs {exact}");
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merging_mismatched_configs_panics() {
        let a = QuantileHistogram::new(0.01);
        let b = QuantileHistogram::new(0.02);
        a.merge(&b);
    }
}
