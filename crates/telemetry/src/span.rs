//! RAII span guards and instant markers.
//!
//! A [`Span`] measures the wall-clock lifetime of its guard: it captures a
//! monotonic start timestamp at creation and records a finished
//! [`crate::Event`] into the current thread's buffer when dropped. While no
//! collector is installed the guard holds nothing and both creation and
//! drop cost a single relaxed atomic load.

use crate::collector::{now_ns, record, thread_id, Event, EventKind};

/// A typed `key=value` field attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text (owned; prefer the scalar variants on hot paths).
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}
impl_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
           i64 => I64 as i64, i32 => I64 as i64,
           f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// The live half of a [`Span`], present only while a collector records.
#[derive(Debug)]
struct ActiveSpan {
    kind: EventKind,
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An RAII guard measuring a region of time; see [`span`].
#[derive(Debug)]
#[must_use = "a span measures its guard's lifetime; binding it to `_` drops it immediately"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Attaches a `key=value` field (no-op while disabled).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(active) = &mut self.0 {
            active.fields.push((key, value.into()));
        }
        self
    }

    /// Ends the span now (sugar for dropping the guard explicitly).
    pub fn end(self) {}
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            finish(active);
        }
    }
}

/// Out-of-line slow half of [`Span::drop`]: only reached while recording,
/// keeping the disabled drop path to a discriminant check.
#[cold]
fn finish(active: ActiveSpan) {
    let dur_ns = match active.kind {
        EventKind::Span => now_ns().saturating_sub(active.start_ns),
        EventKind::Instant => 0,
    };
    record(Event {
        kind: active.kind,
        name: active.name,
        cat: active.cat,
        tid: active.tid,
        start_ns: active.start_ns,
        dur_ns,
        fields: active.fields,
    });
}

#[inline]
fn begin(kind: EventKind, name: &'static str, cat: &'static str) -> Span {
    if !crate::recording() {
        return Span(None);
    }
    begin_active(kind, name, cat)
}

/// Out-of-line slow half of [`begin`], only reached while recording.
#[cold]
fn begin_active(kind: EventKind, name: &'static str, cat: &'static str) -> Span {
    Span(Some(ActiveSpan {
        kind,
        name,
        cat,
        tid: thread_id(),
        start_ns: now_ns(),
        fields: Vec::new(),
    }))
}

/// Starts a span in the default `"app"` category.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_cat(name, "app")
}

/// Starts a span in an explicit category (Chrome trace `cat`).
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Span {
    begin(EventKind::Span, name, cat)
}

/// Emits a point-in-time marker (recorded when the returned guard drops,
/// so fields can still be chained on).
#[inline]
pub fn instant(name: &'static str) -> Span {
    begin(EventKind::Instant, name, "app")
}
