//! Trace-store baseline: compressed on-disk ingest and O(log n) cold
//! queries vs the in-memory prefix index, written to `BENCH_store.json`
//! at the repository root (override the path with `TGI_BENCH_OUT`, the
//! sample count with `TGI_STORE_BENCH_SAMPLES`).
//!
//! The committed JSON documents the storage engine's claims at 100M
//! samples: under 2 bytes per sample on meter-cadenced input (delta-of-
//! delta timestamps + XOR-compressed watts, vs 16 bytes raw), ingest
//! throughput through the WAL-first append path, cold-query latency from
//! a freshly opened store, and — checked sample-for-sample here — that
//! every store answer is `to_bits`-identical to the in-memory oracle
//! while the decompression counter proves each window query touched at
//! most its two boundary chunks.

use power_model::PowerTrace;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use tgi_trace_store::{StoreConfig, TraceStore};

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct Ingest {
    wall_s: f64,
    samples_per_sec: f64,
    batch_samples: usize,
}

#[derive(Serialize)]
struct Storage {
    disk_bytes: u64,
    bytes_per_sample: f64,
    sealed_chunks: usize,
    chunk_samples: usize,
    compression_ratio_vs_raw16: f64,
}

#[derive(Serialize)]
struct ColdQuery {
    queries: usize,
    energy_between_us_per_query: f64,
    memory_oracle_ns_per_query: f64,
    max_chunks_decompressed_per_query: u64,
    footer_only_total_energy_ns: f64,
}

#[derive(Serialize)]
struct Parity {
    energy_total_bitwise_equal: bool,
    windows_checked: usize,
    windows_bitwise_equal: usize,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    samples: usize,
    ingest: Ingest,
    storage: Storage,
    cold_query: ColdQuery,
    parity: Parity,
}

/// Deterministic pseudo-random stream (LCG, same idiom as the other
/// benches).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Fills one batch of meter-like columns: an exact 1 Hz cadence (what a
/// Watts Up?-class logger actually emits) and 0.1 W-quantized power that
/// holds a level for a few dozen samples between phase shifts — the
/// regime the paper's wall-meter traces live in, and the one the codec's
/// delta-of-delta + XOR layout is built for.
fn fill_batch(
    rng: &mut Lcg,
    t0: f64,
    level: &mut f64,
    hold: &mut usize,
    times: &mut Vec<f64>,
    watts: &mut Vec<f64>,
    n: usize,
) {
    times.clear();
    watts.clear();
    for i in 0..n {
        if *hold == 0 {
            *level = (800.0 + 4000.0 * rng.next_unit()).round() / 10.0;
            *hold = 20 + (rng.next_unit() * 180.0) as usize;
        }
        *hold -= 1;
        times.push(t0 + i as f64);
        watts.push(*level);
    }
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_store.json")
}

struct ScratchDir(PathBuf);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn main() {
    let n: usize = std::env::var("TGI_STORE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000_000);
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let chunk_samples = StoreConfig::default().chunk_samples;
    let batch_samples = 1_000_000.min(n.max(1));
    eprintln!("trace_store: {n} samples, chunk {chunk_samples}, {n_threads} thread(s)");

    let dir = std::env::temp_dir().join(format!("tgi_store_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scratch = ScratchDir(dir.clone());

    // Ingest: batched WAL-first appends into the store, and (untimed) the
    // same columns into the in-memory oracle.
    let config = StoreConfig { chunk_samples, retain_seconds: None };
    let mut store = TraceStore::open(&dir, config.clone()).expect("store opens");
    let mut oracle = PowerTrace::with_capacity(n);
    let mut rng = Lcg(0x57047E);
    let (mut level, mut hold) = (250.0, 0usize);
    let mut times = Vec::with_capacity(batch_samples);
    let mut watts = Vec::with_capacity(batch_samples);
    let mut ingest_wall = 0.0f64;
    let mut done = 0usize;
    while done < n {
        let take = batch_samples.min(n - done);
        fill_batch(&mut rng, done as f64, &mut level, &mut hold, &mut times, &mut watts, take);
        let start = Instant::now();
        store.append_batch(&times, &watts).expect("batch appends");
        ingest_wall += start.elapsed().as_secs_f64();
        oracle.extend_from_slices(&times, &watts);
        done += take;
    }
    let start = Instant::now();
    store.sync().expect("store syncs");
    ingest_wall += start.elapsed().as_secs_f64();
    let ingest =
        Ingest { wall_s: ingest_wall, samples_per_sec: n as f64 / ingest_wall, batch_samples };
    eprintln!("  ingest: {:.2e} samples/s ({ingest_wall:.1} s wall)", ingest.samples_per_sec);

    let disk_bytes = store.disk_bytes();
    let bytes_per_sample = disk_bytes as f64 / n as f64;
    let storage = Storage {
        disk_bytes,
        bytes_per_sample,
        sealed_chunks: store.sealed_chunks(),
        chunk_samples,
        compression_ratio_vs_raw16: 16.0 / bytes_per_sample,
    };
    eprintln!(
        "  storage: {disk_bytes} bytes, {bytes_per_sample:.3} B/sample ({:.1}x vs raw)",
        storage.compression_ratio_vs_raw16
    );
    // The headline claim: cadenced meter traces compress below 2 bytes
    // per 16-byte sample.
    assert!(bytes_per_sample < 2.0, "compression missed the 2 B/sample bar: {bytes_per_sample:.3}");

    // Reopen so every query below starts cold: recovery reads only the
    // chunk footers, sample payloads decompress on demand.
    drop(store);
    let start = Instant::now();
    let store = TraceStore::open(&dir, config).expect("store reopens");
    eprintln!("  reopen (footer scan): {:.1} ms", start.elapsed().as_secs_f64() * 1e3);
    assert_eq!(store.len(), n as u64);

    // Parity: whole-trace aggregates, then random windows, all bitwise.
    let energy_total_bitwise_equal =
        store.energy_total().to_bits() == oracle.energy().value().to_bits();
    assert!(energy_total_bitwise_equal, "total energy diverged from the oracle");
    assert_eq!(store.peak_watts().to_bits(), oracle.peak_power().value().to_bits());
    assert_eq!(store.min_watts().to_bits(), oracle.min_power().value().to_bits());

    let (first, last) = oracle.time_bounds().expect("non-empty");
    let span = last - first;
    let queries = 2_000usize;
    let windows: Vec<(f64, f64)> = {
        let mut rng = Lcg(0xC01D);
        (0..queries)
            .map(|_| {
                let a = first + rng.next_unit() * span;
                let b = (a + rng.next_unit() * span * 0.1).min(last);
                (a, b)
            })
            .collect()
    };

    let mut windows_bitwise_equal = 0usize;
    let mut max_decomp = 0u64;
    store.reset_decompressions();
    let start = Instant::now();
    for &(a, b) in &windows {
        let before = store.decompressions();
        let got = store.energy_between(a, b).expect("store query");
        let used = store.decompressions() - before;
        max_decomp = max_decomp.max(used);
        if got.to_bits() == oracle.energy_between(a, b).value().to_bits() {
            windows_bitwise_equal += 1;
        }
    }
    let cold_us = start.elapsed().as_secs_f64() * 1e6 / queries as f64;
    assert_eq!(windows_bitwise_equal, queries, "store windows diverged from the oracle bitwise");
    assert!(
        max_decomp <= 2,
        "a window query decompressed {max_decomp} chunks (boundary-only bound is 2)"
    );

    // The same window set against the in-memory prefix index, for scale.
    let start = Instant::now();
    let mut sink = 0.0;
    for &(a, b) in &windows {
        sink += oracle.energy_between(a, b).value();
    }
    let memory_ns = start.elapsed().as_nanos() as f64 / queries as f64;
    assert!(sink.is_finite());

    // Footer-only fast path: whole-span totals never touch a payload.
    store.reset_decompressions();
    let start = Instant::now();
    let mut total_sink = 0.0;
    let total_queries = 100_000;
    for _ in 0..total_queries {
        total_sink += store.energy_total();
    }
    let footer_ns = start.elapsed().as_nanos() as f64 / total_queries as f64;
    assert!(total_sink.is_finite());
    assert_eq!(store.decompressions(), 0, "energy_total decompressed a chunk");

    let cold_query = ColdQuery {
        queries,
        energy_between_us_per_query: cold_us,
        memory_oracle_ns_per_query: memory_ns,
        max_chunks_decompressed_per_query: max_decomp,
        footer_only_total_energy_ns: footer_ns,
    };
    eprintln!(
        "  cold energy_between: {cold_us:.1} us/query (≤{max_decomp} chunks), \
         memory oracle {memory_ns:.0} ns, footer-only total {footer_ns:.0} ns"
    );

    let parity =
        Parity { energy_total_bitwise_equal, windows_checked: queries, windows_bitwise_equal };

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads },
        samples: n,
        ingest,
        storage,
        cold_query,
        parity,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("trace_store: wrote {}", path.display());
    drop(scratch);
}
