//! Regenerate Figures 2–6 of the paper (one Criterion group per figure).
//!
//! Each group prints the figure's series once — the same rows the paper
//! plots — and then times the regeneration from the underlying sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use tgi_core::ReferenceSystem;
use tgi_harness::{
    fig2_hpl_efficiency, fig3_stream_efficiency, fig4_iozone_efficiency, fig5_tgi_arithmetic,
    fig6_tgi_weighted, system_g_reference, FireSweep,
};

fn fixtures() -> &'static (FireSweep, ReferenceSystem) {
    static FIX: OnceLock<(FireSweep, ReferenceSystem)> = OnceLock::new();
    FIX.get_or_init(|| (FireSweep::run(), system_g_reference()))
}

fn bench_fig2(c: &mut Criterion) {
    let (sweep, _) = fixtures();
    println!("{}", fig2_hpl_efficiency(sweep).to_text());
    c.bench_function("fig2_hpl_scaling", |b| {
        b.iter(|| black_box(fig2_hpl_efficiency(black_box(sweep))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let (sweep, _) = fixtures();
    println!("{}", fig3_stream_efficiency(sweep).to_text());
    c.bench_function("fig3_stream_scaling", |b| {
        b.iter(|| black_box(fig3_stream_efficiency(black_box(sweep))))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let (sweep, _) = fixtures();
    println!("{}", fig4_iozone_efficiency(sweep).to_text());
    c.bench_function("fig4_iozone_scaling", |b| {
        b.iter(|| black_box(fig4_iozone_efficiency(black_box(sweep))))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let (sweep, reference) = fixtures();
    println!("{}", fig5_tgi_arithmetic(sweep, reference).to_text());
    c.bench_function("fig5_tgi_am", |b| {
        b.iter(|| black_box(fig5_tgi_arithmetic(black_box(sweep), black_box(reference))))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let (sweep, reference) = fixtures();
    println!("{}", fig6_tgi_weighted(sweep, reference).to_text());
    c.bench_function("fig6_tgi_wam", |b| {
        b.iter(|| black_box(fig6_tgi_weighted(black_box(sweep), black_box(reference))))
    });
}

/// The end-to-end regeneration: sweep + reference from scratch (what the
/// `tgi-experiments` binary does before printing anything).
fn bench_full_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("fire_sweep_all_figures", |b| {
        b.iter(|| {
            let sweep = FireSweep::run();
            let reference = system_g_reference();
            black_box((
                fig2_hpl_efficiency(&sweep),
                fig3_stream_efficiency(&sweep),
                fig4_iozone_efficiency(&sweep),
                fig5_tgi_arithmetic(&sweep, &reference),
                fig6_tgi_weighted(&sweep, &reference),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_full_sweep
);
criterion_main!(figures);
