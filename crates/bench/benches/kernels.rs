//! Microbenchmarks of the native benchmark kernels.
//!
//! These measure the substrate itself (deliverable: the benchmark suite the
//! paper's methodology runs). Throughput is reported per element/FLOP so
//! regressions in the kernels are visible independent of problem size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_kernels::{fft, gemm, hpl, iobench, ptrans, random_access, stream};
use std::hint::black_box;

fn bench_hpl(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpl");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let cfg = hpl::HplConfig::new(n);
        group.throughput(Throughput::Elements(cfg.flops() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| black_box(hpl::run(*cfg).expect("non-singular")))
        });
    }
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_triad");
    group.sample_size(10);
    for size in [1usize << 16, 1 << 20] {
        let cfg = stream::StreamConfig { array_size: size, ntimes: 3 };
        group.throughput(Throughput::Bytes((3 * 8 * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &cfg, |b, cfg| {
            b.iter(|| black_box(stream::run(*cfg)))
        });
    }
    group.finish();
}

fn bench_iobench(c: &mut Criterion) {
    let mut group = c.benchmark_group("iozone_write");
    group.sample_size(10);
    for mb in [4u64, 16] {
        let cfg = iobench::IoBenchConfig {
            file_size: mb << 20,
            record_size: 64 << 10,
            fsync: false,
            ..Default::default()
        };
        group.throughput(Throughput::Bytes(mb << 20));
        group.bench_with_input(BenchmarkId::from_parameter(mb), &cfg, |b, cfg| {
            b.iter(|| black_box(iobench::run(cfg).expect("scratch dir writable")))
        });
    }
    group.finish();
}

fn bench_dgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgemm");
    group.sample_size(10);
    for n in [128usize, 256] {
        group.throughput(Throughput::Elements(gemm::gemm_flops(n, n, n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, &n| {
            b.iter(|| black_box(gemm::benchmark(n, 7)))
        });
    }
    // Ablation: naive triple loop at the small size only.
    let n = 128;
    let a = hpc_kernels::Matrix::random(n, n, 1);
    let bm = hpc_kernels::Matrix::random(n, n, 2);
    group.bench_function(BenchmarkId::new("naive", n), |b| {
        b.iter(|| {
            let mut cm = hpc_kernels::Matrix::zeros(n, n);
            gemm::dgemm_naive(1.0, black_box(&a), black_box(&bm), 0.0, &mut cm);
            black_box(cm)
        })
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(10);
    for log_n in [12u32, 16] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(fft::fft_flops(n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(fft::benchmark(n, 1, 9)))
        });
    }
    group.finish();
}

fn bench_ptrans(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptrans");
    group.sample_size(10);
    for n in [256usize, 512] {
        group.throughput(Throughput::Bytes(ptrans::bytes_moved(n, n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(ptrans::benchmark(n, 3)))
        });
    }
    group.finish();
}

fn bench_gups(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_access");
    group.sample_size(10);
    for log2 in [14u32, 18] {
        let cfg = random_access::GupsConfig::new(log2);
        group.throughput(Throughput::Elements(cfg.updates));
        group.bench_with_input(BenchmarkId::from_parameter(1u64 << log2), &cfg, |b, cfg| {
            b.iter(|| black_box(random_access::run(*cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_hpl,
    bench_stream,
    bench_iobench,
    bench_dgemm,
    bench_fft,
    bench_ptrans,
    bench_gups
);
criterion_main!(kernels);
