//! Ablations of the measurement substrate.
//!
//! 1. **Meter sampling rate** — the Watts Up? PRO samples at 1 Hz; a bursty
//!    load hides sub-second spikes from it. The ablation quantifies the
//!    energy error of 1 Hz vs a fine-grained ideal meter on a square-wave
//!    load, and times the metering itself.
//! 2. **PUE on/off** — how much the facility view (cooling included)
//!    changes TGI, per DESIGN.md's cooling-extension entry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use power_model::cooling::CoolingModel;
use power_model::meter::{IdealMeter, PowerMeter, WattsUpPro};
use std::hint::black_box;
use tgi_core::prelude::*;
use tgi_core::Watts;

/// A square-wave load: 2 s at 400 W, 0.3 s spikes to 900 W.
fn bursty(t: f64) -> Watts {
    if t % 2.3 < 0.3 {
        Watts::new(900.0)
    } else {
        Watts::new(400.0)
    }
}

fn bench_sampling_rate(c: &mut Criterion) {
    // Report the accuracy ablation once.
    let duration = 120.0;
    let mut fine = IdealMeter::new(0.01);
    let truth = fine.record(&bursty, duration).energy().value();
    println!("\n# meter sampling-rate ablation (bursty load, {duration} s)");
    println!("{:>12} {:>14} {:>10}", "interval", "energy (J)", "error");
    for interval in [0.01, 0.1, 0.5, 1.0, 2.0, 5.0] {
        let mut meter = IdealMeter::new(interval);
        let e = meter.record(&bursty, duration).energy().value();
        println!("{:>10.2}s {:>14.1} {:>9.2}%", interval, e, (e - truth) / truth * 100.0);
    }
    let mut wattsup = WattsUpPro::calibrated(7);
    let e = wattsup.record(&bursty, duration).energy().value();
    println!(
        "{:>11} {:>14.1} {:>9.2}%  (Watts Up? PRO, 1 Hz)",
        "1.00s*",
        e,
        (e - truth) / truth * 100.0
    );

    let mut group = c.benchmark_group("meter_recording");
    for interval in [0.1f64, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(interval), &interval, |b, &interval| {
            b.iter(|| {
                let mut meter = IdealMeter::new(interval);
                black_box(meter.record(&bursty, 60.0))
            })
        });
    }
    group.bench_function("watts_up_pro_60s", |b| {
        b.iter(|| {
            let mut meter = WattsUpPro::new(1);
            black_box(meter.record(&bursty, 60.0))
        })
    });
    group.finish();
}

fn bench_pue_ablation(c: &mut Criterion) {
    let reference = tgi_harness::system_g_reference();
    let sweep = tgi_harness::FireSweep::run();
    let point = &sweep.points()[7]; // 128 cores

    let compute_tgi = |pue: Option<&CoolingModel>| {
        let measurements: Vec<Measurement> = point
            .measurements
            .iter()
            .map(|m| {
                let power = match pue {
                    Some(c) => c.facility_power(m.power()),
                    None => m.power(),
                };
                Measurement::new(m.id(), m.performance().clone(), power, m.time()).expect("valid")
            })
            .collect();
        Tgi::builder()
            .reference(reference.clone())
            .measurements(measurements)
            .compute()
            .expect("valid")
            .value()
    };

    let legacy = CoolingModel::typical_2012();
    let modern = CoolingModel::free_cooled();
    println!("\n# PUE ablation (Fire at 128 cores)");
    println!("  IT-only TGI        = {:.4}", compute_tgi(None));
    println!("  facility (PUE 1.8) = {:.4}", compute_tgi(Some(&legacy)));
    println!("  facility (PUE 1.1) = {:.4}", compute_tgi(Some(&modern)));

    let mut group = c.benchmark_group("pue");
    group.bench_function("it_only", |b| b.iter(|| black_box(compute_tgi(None))));
    group.bench_function("facility_legacy", |b| b.iter(|| black_box(compute_tgi(Some(&legacy)))));
    group.finish();
}

criterion_group!(meter_ablation, bench_sampling_rate, bench_pue_ablation);
criterion_main!(meter_ablation);
