//! Telemetry disabled-path overhead guard, written to `BENCH_telemetry.json`
//! at the repository root (override the path with `TGI_BENCH_OUT`, the
//! iteration count with `TGI_TELEMETRY_BENCH_ITERS`).
//!
//! The instrumentation layer's contract is that with no collector installed
//! every entry point collapses to a relaxed atomic load. This bench proves
//! it: it times a no-op loop baseline, the disabled span/counter/histogram
//! paths, and (for context) the enabled paths, and asserts the disabled
//! span cost stays within 2x of the baseline (with a small absolute floor
//! so sub-nanosecond jitter cannot flake the guard).

use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct DisabledPath {
    baseline_ns: f64,
    span_ns: f64,
    counter_ns: f64,
    histogram_ns: f64,
    span_overhead_x: f64,
}

#[derive(Serialize)]
struct EnabledPath {
    span_ns: f64,
    counter_ns: f64,
    histogram_ns: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    iters: usize,
    disabled: DisabledPath,
    enabled: EnabledPath,
}

/// The reference unit of work: something the optimizer cannot delete but
/// that does no real work — the floor any "free when off" claim is
/// measured against.
#[inline(never)]
fn noop_unit(i: u64) -> u64 {
    black_box(i)
}

fn time_per_iter(iters: usize, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters as u64 {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Median of several timing runs, to shrug off scheduler noise.
fn median_of(runs: usize, mut measure: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs).map(|_| measure()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_telemetry.json")
}

fn main() {
    let iters: usize = std::env::var("TGI_TELEMETRY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let runs = 7;
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    eprintln!("telemetry_overhead: {iters} iters x {runs} runs, {n_threads} thread(s)");

    assert!(!tgi_telemetry::installed(), "bench must start with no collector");

    // Disabled paths: no collector installed.
    let baseline_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            black_box(noop_unit(i));
        })
    });
    let disabled_span_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            let _span = tgi_telemetry::span("bench.disabled");
            black_box(noop_unit(i));
        })
    });
    let disabled_counter_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            tgi_telemetry::counter!("bench_disabled_total").inc();
            black_box(noop_unit(i));
        })
    });
    let disabled_histogram_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            tgi_telemetry::histogram!("bench_disabled_seconds", &[0.001, 0.1, 1.0])
                .observe(i as f64);
            black_box(noop_unit(i));
        })
    });

    // Enabled paths, for context (spans allocate + timestamp here). Uses a
    // smaller iteration count so the per-thread buffer bound is never hit.
    let enabled_iters = iters.min(100_000);
    assert!(tgi_telemetry::install(), "collector should install");
    let enabled_counter_ns = median_of(runs, || {
        time_per_iter(enabled_iters, |i| {
            tgi_telemetry::counter!("bench_enabled_total").inc();
            black_box(noop_unit(i));
        })
    });
    let enabled_histogram_ns = median_of(runs, || {
        time_per_iter(enabled_iters, |i| {
            tgi_telemetry::histogram!("bench_enabled_seconds", &[0.001, 0.1, 1.0])
                .observe(i as f64);
            black_box(noop_unit(i));
        })
    });
    let mut recorded_spans = 0usize;
    let enabled_span_ns = median_of(runs, || {
        let per = time_per_iter(enabled_iters, |i| {
            let _span = tgi_telemetry::span("bench.enabled");
            black_box(noop_unit(i));
        });
        // Drain between runs so the bounded per-thread buffer never fills
        // (a full buffer would silently turn recording into counting).
        recorded_spans += tgi_telemetry::drain().len();
        per
    });
    tgi_telemetry::uninstall();
    assert!(recorded_spans > 0 || enabled_iters == 0, "enabled spans were recorded");

    let span_overhead_x = disabled_span_ns / baseline_ns.max(0.5);
    eprintln!("  baseline:           {baseline_ns:.2} ns/iter");
    eprintln!("  disabled span:      {disabled_span_ns:.2} ns/iter ({span_overhead_x:.2}x)");
    eprintln!("  disabled counter:   {disabled_counter_ns:.2} ns/iter");
    eprintln!("  disabled histogram: {disabled_histogram_ns:.2} ns/iter");
    eprintln!("  enabled span:       {enabled_span_ns:.2} ns/iter");
    eprintln!("  enabled counter:    {enabled_counter_ns:.2} ns/iter");
    eprintln!("  enabled histogram:  {enabled_histogram_ns:.2} ns/iter");

    // The guard: disabled spans must cost within 2x of the no-op loop
    // (the 0.5 ns floor keeps the ratio meaningful when the baseline is
    // faster than the clock's resolution).
    assert!(
        disabled_span_ns <= 2.0 * baseline_ns.max(0.5),
        "disabled span overhead {disabled_span_ns:.2} ns exceeds 2x baseline {baseline_ns:.2} ns"
    );

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads },
        iters,
        disabled: DisabledPath {
            baseline_ns,
            span_ns: disabled_span_ns,
            counter_ns: disabled_counter_ns,
            histogram_ns: disabled_histogram_ns,
            span_overhead_x,
        },
        enabled: EnabledPath {
            span_ns: enabled_span_ns,
            counter_ns: enabled_counter_ns,
            histogram_ns: enabled_histogram_ns,
        },
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("telemetry_overhead: wrote {}", path.display());
}
