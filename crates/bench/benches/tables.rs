//! Regenerate Tables I and II of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use tgi_core::ReferenceSystem;
use tgi_harness::{system_g_reference, table1_reference_performance, table2_pcc, FireSweep};

fn fixtures() -> &'static (FireSweep, ReferenceSystem) {
    static FIX: OnceLock<(FireSweep, ReferenceSystem)> = OnceLock::new();
    FIX.get_or_init(|| (FireSweep::run(), system_g_reference()))
}

fn bench_table1(c: &mut Criterion) {
    let (_, reference) = fixtures();
    println!("{}", table1_reference_performance(reference).to_text());
    // Table I's cost is the reference-suite run itself.
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("systemg_reference_suite", |b| b.iter(|| black_box(system_g_reference())));
    group.bench_function("render", |b| {
        b.iter(|| black_box(table1_reference_performance(black_box(reference))))
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let (sweep, reference) = fixtures();
    println!("{}", table2_pcc(sweep, reference).to_text());
    c.bench_function("table2_pcc", |b| {
        b.iter(|| black_box(table2_pcc(black_box(sweep), black_box(reference))))
    });
}

criterion_group!(tables, bench_table1, bench_table2);
criterion_main!(tables);
