//! Microbenchmarks of the TGI metric library itself.
//!
//! The metric is cheap by construction (a weighted mean over a handful of
//! ratios); these benches pin that down and catch accidental regressions —
//! and they sweep the weighting schemes and suite sizes, since §II claims
//! TGI is "neither limited by the metrics … nor by the number of
//! benchmarks".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgi_core::prelude::*;

fn suite(n_benchmarks: usize) -> (ReferenceSystem, Vec<Measurement>) {
    let mut builder = ReferenceSystem::builder("ref");
    let mut suite = Vec::new();
    for i in 0..n_benchmarks {
        let id = format!("bench{i}");
        builder = builder.benchmark(
            Measurement::new(
                id.clone(),
                Perf::gflops(10.0 + i as f64),
                Watts::new(1000.0 + 10.0 * i as f64),
                Seconds::new(100.0),
            )
            .expect("valid"),
        );
        suite.push(
            Measurement::new(
                id,
                Perf::gflops(5.0 + i as f64),
                Watts::new(800.0 + 10.0 * i as f64),
                Seconds::new(120.0),
            )
            .expect("valid"),
        );
    }
    (builder.build().expect("non-empty"), suite)
}

fn bench_tgi_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("tgi_compute");
    for n in [3usize, 7, 32] {
        let (reference, measurements) = suite(n);
        for weighting in
            [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power]
        {
            group.bench_with_input(
                BenchmarkId::new(weighting.label().replace(' ', "_"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            Tgi::builder()
                                .reference(reference.clone())
                                .weighting(weighting.clone())
                                .measurements(measurements.iter().cloned())
                                .compute()
                                .expect("valid suite"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_pearson(c: &mut Criterion) {
    let mut group = c.benchmark_group("pearson");
    for n in [8usize, 64, 1024] {
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64).cos() + 0.1 * i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(stats::pearson(black_box(&xs), black_box(&ys)).unwrap()))
        });
    }
    group.finish();
}

fn bench_means(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
    let ws: Vec<f64> = vec![1.0 / 64.0; 64];
    let mut group = c.benchmark_group("means");
    group.bench_function("arithmetic", |b| {
        b.iter(|| black_box(means::arithmetic(black_box(&xs)).unwrap()))
    });
    group.bench_function("weighted_arithmetic", |b| {
        b.iter(|| black_box(means::weighted_arithmetic(black_box(&xs), black_box(&ws)).unwrap()))
    });
    group.bench_function("geometric", |b| {
        b.iter(|| black_box(means::geometric(black_box(&xs)).unwrap()))
    });
    group.bench_function("harmonic", |b| {
        b.iter(|| black_box(means::harmonic(black_box(&xs)).unwrap()))
    });
    group.finish();
}

criterion_group!(metric, bench_tgi_compute, bench_pearson, bench_means);
criterion_main!(metric);
