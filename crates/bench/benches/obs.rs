//! Observability-plane performance guards, written to `BENCH_obs.json` at
//! the repository root (override the path with `TGI_BENCH_OUT`, the trace
//! size with `TGI_OBS_SAMPLES`, the span-loop iterations with
//! `TGI_OBS_ITERS`).
//!
//! Three contracts, asserted here rather than just reported:
//!
//! * **Detector throughput** — the streaming anomaly detector scans a
//!   10M-sample trace at ≥ 1M samples/s. Anything slower would make the
//!   post-hoc `/traces/{node}/anomalies` scans and fleet-wide sweeps
//!   interactive-hostile.
//! * **Quantile accuracy** — the log-linear `QuantileHistogram` answers
//!   p50/p90/p99/p999 within its configured relative-error bound α of an
//!   exact sorted oracle over the same observations.
//! * **Recorder overhead** — with the flight recorder compiled in but
//!   nothing recording, a span costs ≤ 2× the no-op loop baseline (the
//!   "always-on" claim is only honest if idle cost stays negligible), and
//!   an *active* ring-buffer recorder stays within 2× of the full
//!   collector path it shadows.

use power_model::anomaly::{self, AnomalyConfig};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use tgi_telemetry::QuantileHistogram;

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct DetectorThroughput {
    samples: usize,
    elapsed_s: f64,
    samples_per_s: f64,
    events: usize,
}

#[derive(Serialize)]
struct QuantileAccuracy {
    samples: usize,
    alpha: f64,
    worst_rel_error: f64,
    quantiles_checked: usize,
}

#[derive(Serialize)]
struct RecorderOverhead {
    baseline_ns: f64,
    idle_span_ns: f64,
    idle_overhead_x: f64,
    recorder_span_ns: f64,
    collector_span_ns: f64,
    recorder_vs_collector_x: f64,
}

#[derive(Serialize)]
struct ObsReport {
    machine: Machine,
    detector: DetectorThroughput,
    quantile: QuantileAccuracy,
    recorder: RecorderOverhead,
}

/// Deterministic splitmix-style generator (no rand dependency on the hot
/// setup path).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Meter-like noise: ±2 W, quantized to 0.1 W.
    fn noise(&mut self) -> f64 {
        ((self.uniform() * 4.0 - 2.0) * 10.0).round() / 10.0
    }
}

#[inline(never)]
fn noop_unit(i: u64) -> u64 {
    black_box(i)
}

fn time_per_iter(iters: usize, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters as u64 {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Median of several timing runs, to shrug off scheduler noise.
fn median_of(runs: usize, mut measure: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs).map(|_| measure()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_obs.json")
}

fn env_count(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// Scans `n` samples of a noisy 200 W baseline with a handful of injected
/// spikes, timing the full streaming pass.
fn detector_throughput(n: usize) -> DetectorThroughput {
    let mut rng = Rng(7);
    let mut times = Vec::with_capacity(n);
    let mut watts = Vec::with_capacity(n);
    // One 3-sample 900 W spike every million samples, so the events path
    // (open/extend/close) is exercised, not just the clean fast path.
    for i in 0..n {
        times.push(i as f64);
        let spiky = i >= 1_000 && (i % 1_000_000) < 3;
        watts.push(if spiky { 900.0 } else { 200.0 + rng.noise() });
    }
    let start = Instant::now();
    let events = anomaly::scan_columns(&times, &watts, AnomalyConfig::default());
    let elapsed_s = start.elapsed().as_secs_f64();
    let samples_per_s = n as f64 / elapsed_s.max(1e-9);
    eprintln!(
        "  detector: {n} samples in {elapsed_s:.3} s = {:.2} Msamples/s ({} events)",
        samples_per_s / 1e6,
        events.len()
    );
    DetectorThroughput { samples: n, elapsed_s, samples_per_s, events: events.len() }
}

/// The oracle rank the sketch targets (same convention as the estimator's
/// own property tests).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Observes a heavy-tailed latency-shaped distribution into the sketch and
/// compares four quantiles against an exact sort of the same data.
fn quantile_accuracy(n: usize) -> QuantileAccuracy {
    const ALPHA: f64 = 0.01;
    let hist = QuantileHistogram::new(ALPHA);
    let mut rng = Rng(11);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        // Log-uniform over ~6 decades: microseconds to seconds.
        let v = 10f64.powf(rng.uniform() * 6.0 - 3.0);
        values.push(v);
        hist.observe(v);
    }
    values.sort_by(f64::total_cmp);
    let qs = [0.5, 0.9, 0.99, 0.999];
    let mut worst = 0.0f64;
    for &q in &qs {
        let exact = exact_quantile(&values, q);
        let est = hist.quantile(q).expect("non-empty sketch");
        let rel = (est - exact).abs() / exact;
        worst = worst.max(rel);
        assert!(
            rel <= ALPHA * (1.0 + 1e-9) + 1e-12,
            "q{q}: sketch {est} vs exact {exact} — relative error {rel} beyond α={ALPHA}"
        );
    }
    eprintln!(
        "  quantile: worst relative error {worst:.5} over {} quantiles (α={ALPHA})",
        qs.len()
    );
    QuantileAccuracy {
        samples: n,
        alpha: ALPHA,
        worst_rel_error: worst,
        quantiles_checked: qs.len(),
    }
}

/// Times the span path under three regimes: nothing recording (the
/// always-on idle cost), flight recorder active, and full collector.
fn recorder_overhead(iters: usize) -> RecorderOverhead {
    let runs = 7;
    assert!(!tgi_telemetry::installed(), "bench must start with no collector");
    assert!(!tgi_telemetry::recorder::active(), "bench must start with no recorder");

    let baseline_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            black_box(noop_unit(i));
        })
    });
    let idle_span_ns = median_of(runs, || {
        time_per_iter(iters, |i| {
            let _span = tgi_telemetry::span("bench.obs.idle");
            black_box(noop_unit(i));
        })
    });

    // Recorder-active spans: the per-thread ring absorbs writes without
    // draining (old events are overwritten, which is the point).
    let active_iters = iters.min(100_000);
    assert!(tgi_telemetry::recorder::enable(4096), "recorder should enable");
    let recorder_span_ns = median_of(runs, || {
        time_per_iter(active_iters, |i| {
            let _span = tgi_telemetry::span("bench.obs.recorder");
            black_box(noop_unit(i));
        })
    });
    tgi_telemetry::recorder::disable();

    // Collector-enabled spans, drained between runs so the bounded buffer
    // never fills.
    assert!(tgi_telemetry::install(), "collector should install");
    let collector_span_ns = median_of(runs, || {
        let per = time_per_iter(active_iters, |i| {
            let _span = tgi_telemetry::span("bench.obs.collector");
            black_box(noop_unit(i));
        });
        let _ = tgi_telemetry::drain();
        per
    });
    tgi_telemetry::uninstall();

    let idle_overhead_x = idle_span_ns / baseline_ns.max(0.5);
    let recorder_vs_collector_x = recorder_span_ns / collector_span_ns.max(0.5);
    eprintln!("  recorder: baseline {baseline_ns:.2} ns, idle span {idle_span_ns:.2} ns ({idle_overhead_x:.2}x)");
    eprintln!(
        "  recorder: active span {recorder_span_ns:.2} ns vs collector {collector_span_ns:.2} ns ({recorder_vs_collector_x:.2}x)"
    );

    // Guard 1: with the recorder compiled in but idle, spans still cost
    // within 2x of the no-op loop (0.5 ns floor against clock resolution).
    assert!(
        idle_span_ns <= 2.0 * baseline_ns.max(0.5),
        "idle span overhead {idle_span_ns:.2} ns exceeds 2x baseline {baseline_ns:.2} ns"
    );
    // Guard 2: the lock-free ring write stays within 2x of the collector
    // path it shadows — the flight recorder must never be the slow sink.
    assert!(
        recorder_span_ns <= 2.0 * collector_span_ns.max(0.5),
        "recorder span {recorder_span_ns:.2} ns exceeds 2x collector span {collector_span_ns:.2} ns"
    );

    RecorderOverhead {
        baseline_ns,
        idle_span_ns,
        idle_overhead_x,
        recorder_span_ns,
        collector_span_ns,
        recorder_vs_collector_x,
    }
}

fn main() {
    let samples = env_count("TGI_OBS_SAMPLES", 10_000_000);
    let iters = env_count("TGI_OBS_ITERS", 2_000_000);
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    eprintln!("obs: {samples} detector samples, {iters} span iters, {n_threads} thread(s)");

    let detector = detector_throughput(samples);
    assert!(
        detector.samples_per_s >= 1e6,
        "detector {:.2} Msamples/s below the 1 Msamples/s floor",
        detector.samples_per_s / 1e6
    );

    let quantile = quantile_accuracy(samples.min(200_000));
    let recorder = recorder_overhead(iters);

    let report = ObsReport {
        machine: Machine { available_parallelism: n_threads },
        detector,
        quantile,
        recorder,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("report file writable");
    eprintln!("obs: wrote {}", path.display());
}
