//! TGI evaluation throughput baseline: the reusable [`TgiEvaluator`] batch
//! path vs a clone-per-evaluation `Tgi::builder` loop, written to
//! `BENCH_tgi.json` at the repository root (override the path with
//! `TGI_BENCH_OUT`, the evaluation count with `TGI_EVAL_BENCH_N`).
//!
//! The committed JSON documents the PR's win: the evaluator resolves the
//! reference once, reuses scratch buffers, and allocates nothing per call,
//! while the builder baseline pays a reference clone, a measurement-vector
//! clone, weight/REE vectors, and a contribution vector on every single
//! evaluation. Before any timing, the bench asserts the two paths agree to
//! the last bit on every (suite, weighting, mean) cell it will run. A
//! second section times a full [`GridSweep`] cold (simulating) and warm
//! (memoized), Fire vs Fire-GPU against SystemG.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use tgi_core::evaluator::{EvalScratch, TgiEvaluator};
use tgi_core::{MeanKind, Measurement, Perf, ReferenceSystem, Seconds, Tgi, Watts, Weighting};
use tgi_harness::sweep::FIRE_CORE_COUNTS;
use tgi_harness::{system_g_reference, GridSweep};

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct BatchEval {
    evaluations: usize,
    suite_len: usize,
    evaluator_evals_per_sec: f64,
    builder_evals_per_sec: f64,
    evaluator_ns_per_eval: f64,
    builder_ns_per_eval: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Grid {
    clusters: usize,
    core_points: usize,
    cells: usize,
    cold_ms: f64,
    warm_ms: f64,
    memo_hits: usize,
    memo_misses: usize,
    cold_over_warm: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    batch_eval: BatchEval,
    grid: Grid,
}

/// Deterministic pseudo-random stream (SplitMix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

const SUITE_LEN: usize = 12;
const N_SUITES: usize = 128;

fn measurement(id: &str, perf: f64, watts: f64, secs: f64) -> Measurement {
    Measurement::new(id, Perf::gflops(perf), Watts::new(watts), Seconds::new(secs))
        .expect("synthetic quantities are valid")
}

/// A 12-benchmark reference plus `N_SUITES` perturbed suites over the same
/// ids — the shape of a Green500-style submission sweep.
fn synth_workload() -> (ReferenceSystem, Vec<Vec<Measurement>>) {
    let mut rng = Lcg(0x9E11);
    let ids: Vec<String> = (0..SUITE_LEN).map(|i| format!("bench-{i:02}")).collect();
    let mut builder = ReferenceSystem::builder("synth-ref");
    let mut base = Vec::with_capacity(SUITE_LEN);
    for id in &ids {
        let (p, w, t) = (
            10.0 + 500.0 * rng.next_unit(),
            500.0 + 3000.0 * rng.next_unit(),
            30.0 + 600.0 * rng.next_unit(),
        );
        base.push((p, w, t));
        builder = builder.benchmark(measurement(id, p, w, t));
    }
    let reference = builder.build().expect("non-empty");
    let suites = (0..N_SUITES)
        .map(|_| {
            ids.iter()
                .zip(&base)
                .map(|(id, &(p, w, t))| {
                    let jitter = |v: f64, rng: &mut Lcg| v * (0.5 + rng.next_unit());
                    measurement(id, jitter(p, &mut rng), jitter(w, &mut rng), jitter(t, &mut rng))
                })
                .collect()
        })
        .collect();
    (reference, suites)
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_tgi.json")
}

fn main() {
    let n: usize =
        std::env::var("TGI_EVAL_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    eprintln!("tgi_throughput: {n} evaluations, {n_threads} thread(s) available");

    let (reference, suites) = synth_workload();
    let weightings = [Weighting::Arithmetic, Weighting::Time, Weighting::Energy, Weighting::Power];
    let means = [MeanKind::Arithmetic, MeanKind::Geometric, MeanKind::Harmonic];
    let evaluator = TgiEvaluator::new(&reference);
    let mut scratch = EvalScratch::with_capacity(SUITE_LEN);

    // The evaluation schedule: cycle (suite, weighting, mean) to n entries.
    let combos = suites.len() * weightings.len() * means.len();
    let cell = |k: usize| {
        let suite = &suites[k % suites.len()];
        let weighting = &weightings[(k / suites.len()) % weightings.len()];
        let mean = means[(k / (suites.len() * weightings.len())) % means.len()];
        (suite, weighting, mean)
    };

    // Correctness gate: both paths agree to the last bit on every distinct
    // cell before any timing is trusted.
    for k in 0..combos {
        let (suite, weighting, mean) = cell(k);
        let fast = evaluator.evaluate_into(suite, weighting, mean, &mut scratch).expect("valid");
        let slow = Tgi::builder()
            .reference(reference.clone())
            .weighting(weighting.clone())
            .mean(mean)
            .measurements(suite.iter().cloned())
            .compute()
            .expect("valid")
            .value();
        assert_eq!(fast.to_bits(), slow.to_bits(), "paths disagree on cell {k}");
    }

    // Batch path: one evaluator + one scratch across the whole grid. Each
    // suite's full weighting × mean block goes through
    // `evaluate_cells_into`, so the reference resolution and the REE
    // vector are computed once per suite and shared by all of its cells.
    let cells_per_suite = weightings.len() * means.len();
    let blocks = n.div_ceil(cells_per_suite);
    let evals = blocks * cells_per_suite;
    let mut cells_out = Vec::with_capacity(cells_per_suite);
    let start = Instant::now();
    let mut fast_sink = 0.0;
    for b in 0..blocks {
        let suite = &suites[b % suites.len()];
        evaluator
            .evaluate_cells_into(suite, &weightings, &means, &mut scratch, &mut cells_out)
            .expect("valid");
        fast_sink += cells_out.iter().sum::<f64>();
    }
    let eval_secs = start.elapsed().as_secs_f64();

    // Baseline: the pre-PR shape — a fresh builder per cell, cloning the
    // reference, the weighting, and every measurement, and re-deriving the
    // reference efficiencies and REEs each time.
    let start = Instant::now();
    let mut slow_sink = 0.0;
    for b in 0..blocks {
        let suite = &suites[b % suites.len()];
        let mut block = 0.0;
        for weighting in &weightings {
            for &mean in &means {
                block += Tgi::builder()
                    .reference(reference.clone())
                    .weighting(weighting.clone())
                    .mean(mean)
                    .measurements(suite.iter().cloned())
                    .compute()
                    .expect("valid")
                    .value();
            }
        }
        slow_sink += block;
    }
    let builder_secs = start.elapsed().as_secs_f64();
    assert!((fast_sink - slow_sink).abs() <= 1e-12 * slow_sink.abs(), "timed sums must agree");

    let speedup = builder_secs / eval_secs;
    let batch_eval = BatchEval {
        evaluations: evals,
        suite_len: SUITE_LEN,
        evaluator_evals_per_sec: evals as f64 / eval_secs,
        builder_evals_per_sec: evals as f64 / builder_secs,
        evaluator_ns_per_eval: eval_secs * 1e9 / evals as f64,
        builder_ns_per_eval: builder_secs * 1e9 / evals as f64,
        speedup,
    };
    eprintln!(
        "  batch eval: {:.2e}/s vs builder {:.2e}/s ({speedup:.1}x)",
        batch_eval.evaluator_evals_per_sec, batch_eval.builder_evals_per_sec
    );

    // The evaluator must never lose to the builder; at the acceptance size
    // the bar is 10x.
    assert!(speedup >= 1.0, "evaluator slower than clone-per-eval builder");
    if evals >= 10_000 {
        assert!(speedup >= 10.0, "evaluator below the 10x bar: {speedup:.2}x");
    }

    // Grid sweep: cold run simulates every (cluster, cores) point; the warm
    // rerun answers every one of the same cells from the memo cache.
    let sweep = GridSweep::new()
        .cluster("Fire", cluster_sim::ClusterSpec::fire())
        .cluster("Fire-GPU", cluster_sim::ClusterSpec::fire_gpu())
        .cores(&FIRE_CORE_COUNTS)
        .paper_axes();
    let reference = system_g_reference();
    let start = Instant::now();
    let cold = sweep.run(&reference).expect("grid evaluates");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let warm = sweep.run(&reference).expect("grid evaluates");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold, warm, "memoized rerun must reproduce the grid exactly");
    let (memo_hits, memo_misses) = sweep.memo_stats();
    assert_eq!(memo_misses, 2 * FIRE_CORE_COUNTS.len(), "cold run simulates each point once");
    let grid = Grid {
        clusters: 2,
        core_points: FIRE_CORE_COUNTS.len(),
        cells: cold.len(),
        cold_ms,
        warm_ms,
        memo_hits,
        memo_misses,
        cold_over_warm: cold_ms / warm_ms,
    };
    eprintln!(
        "  grid: {} cells cold {cold_ms:.2} ms, warm {warm_ms:.2} ms ({:.1}x)",
        grid.cells, grid.cold_over_warm
    );

    let baseline =
        Baseline { machine: Machine { available_parallelism: n_threads }, batch_eval, grid };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("tgi_throughput: wrote {}", path.display());
}
