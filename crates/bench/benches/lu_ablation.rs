//! Ablation: blocked vs unblocked LU, and the block-size (NB) sweep.
//!
//! DESIGN.md calls out the blocked right-looking factorization as the key
//! design choice inside the HPL substrate; this bench quantifies it. HPL
//! tuning folklore says NB in the 32–256 range; the sweep shows where the
//! pure-Rust micro-kernel peaks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_kernels::lu;
use hpc_kernels::Matrix;
use std::hint::black_box;

const N: usize = 384;

fn flops(n: usize) -> u64 {
    ((2.0 / 3.0) * (n as f64).powi(3)) as u64
}

fn bench_blocked_vs_unblocked(c: &mut Criterion) {
    let a = Matrix::random(N, N, 42);
    let mut group = c.benchmark_group("lu_factorization");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flops(N)));

    group.bench_function("unblocked", |b| {
        b.iter(|| {
            let mut m = a.clone();
            black_box(lu::factor_unblocked(&mut m).expect("non-singular"))
        })
    });
    group.bench_function("blocked_default_nb", |b| {
        b.iter(|| {
            let mut m = a.clone();
            black_box(lu::factor_blocked(&mut m, lu::DEFAULT_BLOCK).expect("non-singular"))
        })
    });
    group.finish();
}

fn bench_block_size_sweep(c: &mut Criterion) {
    let a = Matrix::random(N, N, 43);
    let mut group = c.benchmark_group("lu_block_size");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flops(N)));
    for nb in [8usize, 16, 32, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut m = a.clone();
                black_box(lu::factor_blocked(&mut m, nb).expect("non-singular"))
            })
        });
    }
    group.finish();
}

/// Ablation: full-f64 solve vs f32-factor + iterative refinement (the
/// HPL-AI energy technique). Same N, same accuracy target; on hardware with
/// wider f32 SIMD the gap widens further.
fn bench_mixed_precision(c: &mut Criterion) {
    use hpc_kernels::mixed;
    let a = Matrix::random(N, N, 44);
    let b: Vec<f64> = (0..N).map(|i| (i as f64 * 0.29).sin()).collect();
    let mut group = c.benchmark_group("lu_precision");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flops(N)));
    group.bench_function("f64_solve", |bch| {
        bch.iter(|| black_box(lu::solve(a.clone(), &b, 64).expect("non-singular")))
    });
    group.bench_function("f32_factor_plus_refinement", |bch| {
        bch.iter(|| {
            let r = mixed::solve_refined(&a, &b, 64, 10).expect("non-singular");
            assert!(r.converged);
            black_box(r)
        })
    });
    group.finish();
}

criterion_group!(
    lu_ablation,
    bench_blocked_vs_unblocked,
    bench_block_size_sweep,
    bench_mixed_precision
);
criterion_main!(lu_ablation);
