//! Synthetic Green500 fleet bench: Top500-scale fleet generation, the full
//! (system × weighting × mean) fleet sweep, and the sharded single-flight
//! memoizer vs the old single-mutex design, written to `BENCH_fleet.json`
//! at the repository root (override the path with `TGI_BENCH_OUT`, the
//! fleet size with `TGI_FLEET_BENCH_SYSTEMS`).
//!
//! Three sections, each with hard correctness gates before any number is
//! trusted:
//!
//! 1. **generation** — seeded fleet sampling, sequential vs the rayon
//!    shim; the two fleets must be identical.
//! 2. **sweep** — `FleetSweep::run` over the full paper axes grid; the
//!    parallel table must be bitwise equal to `run_sequential`, and the
//!    single-flight duplicate-simulation count must be exactly 0.
//! 3. **memo** — N threads (1/4/16) race through the same cold key
//!    sequence. The old design (one mutex, simulate outside the lock) lets
//!    every racing thread re-simulate a missed key; the sharded
//!    single-flight cache simulates each key exactly once and parks the
//!    rest. The speedup is duplicate-work avoidance, so it holds on any
//!    core count. ≥ 1× at 16 threads is always asserted; ≥ 4× at the full
//!    500-system size.

use cluster_sim::{
    ClusterSpec, ExecutionEngine, FleetConfig, MemoizedEngine, SimulatedRun, Workload,
};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;
use tgi_harness::{system_g_reference, FleetSweep};

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct Generation {
    systems: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    identical: bool,
}

#[derive(Serialize)]
struct Sweep {
    systems: usize,
    suites: usize,
    weightings: usize,
    means: usize,
    cells: usize,
    cold_parallel_ms: f64,
    warm_parallel_ms: f64,
    warm_sequential_ms: f64,
    bitwise_equal: bool,
    duplicate_simulations: usize,
    inflight_waits: usize,
}

#[derive(Serialize)]
struct MemoPoint {
    threads: usize,
    distinct_keys: usize,
    single_mutex_ms: f64,
    single_mutex_simulations: usize,
    single_mutex_duplicates: usize,
    sharded_ms: f64,
    sharded_simulations: usize,
    sharded_duplicates: usize,
    speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    generation: Generation,
    sweep: Sweep,
    memo: Vec<MemoPoint>,
}

/// The pre-PR memoizer, reconstructed as the baseline: one mutex around
/// the whole map, simulation *outside* the lock, first insert wins. Two
/// threads missing on the same key both pay the full simulation — the
/// duplicate work the single-flight cache eliminates.
struct SingleMutexMemo {
    engine: ExecutionEngine,
    cache: Mutex<HashMap<usize, Arc<Vec<SimulatedRun>>>>,
    simulations: AtomicUsize,
}

impl SingleMutexMemo {
    fn new(engine: ExecutionEngine) -> Self {
        SingleMutexMemo {
            engine,
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicUsize::new(0),
        }
    }

    fn run_suite(&self, workloads: &[Workload], processes: usize) -> Arc<Vec<SimulatedRun>> {
        if let Some(cached) = self.cache.lock().unwrap().get(&processes) {
            return Arc::clone(cached);
        }
        self.simulations.fetch_add(1, Ordering::Relaxed);
        let runs = Arc::new(self.engine.run_suite(workloads, processes));
        Arc::clone(self.cache.lock().unwrap().entry(processes).or_insert(runs))
    }
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_fleet.json")
}

/// Drives `threads` std threads through the same cold key sequence and
/// returns (elapsed ms, simulations performed).
fn race_keys<F>(
    threads: usize,
    keys: &[usize],
    run_key: F,
    simulations: &AtomicUsize,
) -> (f64, usize)
where
    F: Fn(usize) + Sync,
{
    simulations.store(0, Ordering::Relaxed);
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                for &key in keys {
                    run_key(key);
                }
            });
        }
    });
    (start.elapsed().as_secs_f64() * 1e3, simulations.load(Ordering::Relaxed))
}

fn main() {
    let systems: usize =
        std::env::var("TGI_FLEET_BENCH_SYSTEMS").ok().and_then(|v| v.parse().ok()).unwrap_or(500);
    let full_size = systems >= 500;
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    eprintln!("fleet: {systems} systems, {n_threads} thread(s) available");

    // --- 1. Generation: sequential vs rayon shim, must be identical.
    let config = FleetConfig::new(42).systems(systems);
    let start = Instant::now();
    let fleet_seq = config.generate();
    let sequential_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let fleet_par = config.generate_par();
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    let identical = fleet_seq == fleet_par;
    assert!(identical, "parallel fleet generation must match sequential");
    let generation = Generation { systems, sequential_ms, parallel_ms, identical };
    eprintln!("  generation: seq {sequential_ms:.2} ms, par {parallel_ms:.2} ms");

    // --- 2. Fleet sweep over the full paper axes.
    let sweep =
        FleetSweep::new().fleet(fleet_seq).suite("fire", Workload::fire_suite()).paper_axes();
    let reference = system_g_reference();
    let start = Instant::now();
    let cold = sweep.run(&reference).expect("fleet evaluates");
    let cold_parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let warm = sweep.run(&reference).expect("fleet evaluates");
    let warm_parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sequential = sweep.run_sequential(&reference).expect("fleet evaluates");
    let warm_sequential_ms = start.elapsed().as_secs_f64() * 1e3;

    let bitwise_equal = cold.values().len() == sequential.values().len()
        && cold.values().iter().zip(sequential.values()).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bitwise_equal, "parallel FleetTable must equal the sequential reference bitwise");
    assert_eq!(cold, warm, "memoized rerun must reproduce the table exactly");
    let duplicate_simulations = sweep.duplicate_simulations();
    assert_eq!(duplicate_simulations, 0, "single-flight memo must never simulate a key twice");
    let ranking = cold.green500_ranking(0, 0, 0).expect("finite scores");
    eprintln!(
        "  sweep: {} cells cold {cold_parallel_ms:.1} ms, warm {warm_parallel_ms:.2} ms; \
         greenest {}",
        cold.len(),
        ranking.greenest().expect("non-empty fleet").name
    );
    let sweep_section = Sweep {
        systems,
        suites: 1,
        weightings: cold.weightings().len(),
        means: cold.means().len(),
        cells: cold.len(),
        cold_parallel_ms,
        warm_parallel_ms,
        warm_sequential_ms,
        bitwise_equal,
        duplicate_simulations,
        inflight_waits: sweep.inflight_waits(),
    };

    // --- 3. Sharded single-flight vs single-mutex memo under key races.
    // Every thread walks the same cold (suite, cores) sequence — the shape
    // of concurrent clients scoring one fleet. The old design re-simulates
    // a racing key per thread; single-flight parks all but one. The suite
    // is a multi-size qualification batch (120 workloads, ~10 ms per
    // simulation) so each simulation outlives a scheduler timeslice: racing
    // threads genuinely interleave mid-simulation, on any core count.
    let keys: Vec<usize> = vec![16, 32, 64, 128];
    let suite: Vec<Workload> = (0..40u64)
        .flat_map(|i| {
            let scale = 1.0 + i as f64 * 0.25;
            [
                Workload::Hpl { n: 40_000 + i as usize * 4_000 },
                Workload::Stream { total_bytes: 4e13 * scale },
                Workload::Iozone { total_bytes: 1.5e10 * scale },
            ]
        })
        .collect();
    let mut memo = Vec::new();
    for &threads in &[1usize, 4, 16] {
        let baseline = SingleMutexMemo::new(ExecutionEngine::new(ClusterSpec::fire()));
        let (single_mutex_ms, single_mutex_simulations) = race_keys(
            threads,
            &keys,
            |cores| {
                baseline.run_suite(&suite, cores);
            },
            &baseline.simulations,
        );

        let sharded = MemoizedEngine::new(ExecutionEngine::new(ClusterSpec::fire()));
        let shard_sims = AtomicUsize::new(0);
        let (sharded_ms, _) = race_keys(
            threads,
            &keys,
            |cores| {
                sharded.run_suite(&suite, cores);
            },
            &shard_sims,
        );
        let sharded_simulations = sharded.simulations();
        let sharded_duplicates = sharded.duplicate_simulations();
        assert_eq!(sharded_duplicates, 0, "single-flight duplicates at {threads} threads");
        assert_eq!(sharded_simulations, keys.len(), "one simulation per distinct key");

        let speedup = single_mutex_ms / sharded_ms;
        eprintln!(
            "  memo {threads:>2} threads: single-mutex {single_mutex_ms:.1} ms \
             ({single_mutex_simulations} sims), sharded {sharded_ms:.1} ms \
             ({sharded_simulations} sims) — {speedup:.1}x"
        );
        memo.push(MemoPoint {
            threads,
            distinct_keys: keys.len(),
            single_mutex_ms,
            single_mutex_simulations,
            single_mutex_duplicates: single_mutex_simulations
                - keys.len().min(single_mutex_simulations),
            sharded_ms,
            sharded_simulations,
            sharded_duplicates,
            speedup,
        });
    }
    let at_16 = memo.iter().find(|p| p.threads == 16).expect("16-thread point");
    assert!(
        at_16.speedup >= 1.0,
        "sharded memo slower than single-mutex at 16 threads: {:.2}x",
        at_16.speedup
    );
    if full_size {
        assert!(
            at_16.speedup >= 4.0,
            "sharded memo below the 4x bar at 16 threads: {:.2}x",
            at_16.speedup
        );
    }

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads },
        generation,
        sweep: sweep_section,
        memo,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("fleet: wrote {}", path.display());
}
