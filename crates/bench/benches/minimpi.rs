//! Benchmarks of the message-passing substrate and the distributed HPL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mini_mpi::hpl::{run as hpl_run, DistributedHplConfig};
use mini_mpi::World;
use std::hint::black_box;

fn bench_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimpi_pingpong");
    group.sample_size(10);
    group.bench_function("round_trips_1k", |b| {
        b.iter(|| {
            let out = World::run(2, |comm| {
                if comm.rank() == 0 {
                    for i in 0..1000u64 {
                        comm.send_f64(1, i, &[1.0]);
                        let _ = comm.recv_f64(1, i);
                    }
                    1.0
                } else {
                    for i in 0..1000u64 {
                        let v = comm.recv_f64(0, i);
                        comm.send_f64(0, i, &v);
                    }
                    1.0
                }
            });
            black_box(out)
        })
    });
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimpi_allreduce");
    group.sample_size(10);
    for ranks in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let out = World::run(ranks, |comm| {
                    let local = vec![comm.rank() as f64; 1024];
                    comm.allreduce_sum(&local)
                });
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_distributed_hpl(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimpi_hpl");
    group.sample_size(10);
    let n = 192;
    let flops = (2.0 / 3.0) * (n as f64).powi(3);
    group.throughput(Throughput::Elements(flops as u64));
    for ranks in [1usize, 2, 4] {
        let config = DistributedHplConfig::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let out = World::run(ranks, move |comm| hpl_run(comm, config));
                assert!(out[0].passed);
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_hpl_2d_grid(c: &mut Criterion) {
    use mini_mpi::hpl2d::{run as run2d, Grid2dConfig};
    let mut group = c.benchmark_group("minimpi_hpl2d");
    group.sample_size(10);
    let n = 144;
    for (p, q) in [(1usize, 1usize), (2, 2), (1, 4)] {
        let config = Grid2dConfig { n, block_size: 16, p, q, seed: 4 };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{q}")),
            &config,
            |b, &config| {
                b.iter(|| {
                    let out = World::run(config.p * config.q, move |comm| run2d(comm, config));
                    assert!(out[0].passed);
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    minimpi,
    bench_pingpong,
    bench_allreduce,
    bench_distributed_hpl,
    bench_hpl_2d_grid
);
criterion_main!(minimpi);
