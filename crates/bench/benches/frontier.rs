//! DVFS energy/performance frontier: frequency × thread count over GEMM
//! and STREAM, written to `BENCH_frontier.json` at the repository root
//! (override with `TGI_BENCH_OUT`).
//!
//! The sweep combines **measurement** and **model**, and the JSON labels
//! which is which:
//!
//! * *measured* — time-to-solution and throughput of the real GEMM and
//!   STREAM kernels on this machine, at each thread count, on the
//!   dispatched SIMD path (`machine.isa`);
//! * *modeled* — watts from the Sandy Bridge node power model and the
//!   frequency stretch from the governor's Amdahl split
//!   (`t(r)/t(1) = cf/r + 1 − cf`), because the container can neither
//!   meter the wall nor change the host clock. GEMM is treated as
//!   compute-bound (`cf = 0.95`), STREAM as memory-bound (`cf = 0.10`).
//!
//! Every (frequency, threads) point carries energy-to-solution and
//! time-to-solution; each workload × thread count gets a race-to-idle
//! verdict against a deadline of 2× its nominal-frequency runtime, and the
//! roofline summary places the measured throughput against the model
//! machine's compute and bandwidth ceilings.
//!
//! Problem sizes shrink via `TGI_FRONTIER_GEMM_N` / `TGI_FRONTIER_STREAM_ELEMS`
//! for the CI smoke leg.

use cluster_sim::ClusterSpec;
use hpc_kernels::stream::StreamConfig;
use hpc_kernels::{gemm, stream, timing};
use power_model::utilization::UtilizationSample;
use power_model::{FrontierPoint, GovernorModel, NodePowerModel, RaceToIdleVerdict};
use serde::Serialize;
use std::path::PathBuf;

/// Compute-bound fraction assumed for blocked DGEMM (packed panels keep
/// the FPU fed; runtime scales almost inversely with clock).
const GEMM_COMPUTE_FRACTION: f64 = 0.95;
/// Compute-bound fraction assumed for STREAM triad (bandwidth-bound;
/// nearly frequency-insensitive).
const STREAM_COMPUTE_FRACTION: f64 = 0.10;
/// Deadline for the race-to-idle question: 2× the nominal-frequency time.
const DEADLINE_SLACK: f64 = 2.0;

fn env_size(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| panic!("{name} must be an integer: {v:?}")),
        Err(_) => default,
    }
}

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
    isa: &'static str,
}

#[derive(Serialize)]
struct ModelInfo {
    node: &'static str,
    governor_nominal_ghz: f64,
    frequency_ratios: Vec<f64>,
    gemm_compute_fraction: f64,
    stream_compute_fraction: f64,
    deadline_slack: f64,
}

#[derive(Serialize)]
struct ThreadSweep {
    threads: usize,
    measured_seconds: f64,
    measured_throughput: f64,
    throughput_unit: &'static str,
    points: Vec<FrontierPoint>,
    race_to_idle: RaceToIdleVerdict,
}

#[derive(Serialize)]
struct Workload {
    name: &'static str,
    problem_size: usize,
    sweeps: Vec<ThreadSweep>,
}

#[derive(Serialize)]
struct Roofline {
    model_peak_gflops_per_core: f64,
    model_mem_bandwidth_gbps: f64,
    ridge_flops_per_byte: f64,
    gemm_flops_per_byte: f64,
    measured_gemm_gflops_1t: f64,
    gemm_fraction_of_core_peak_1t: f64,
    measured_triad_gbps_best: f64,
    triad_fraction_of_model_bw: f64,
}

#[derive(Serialize)]
struct Verdicts {
    gemm_race_to_idle_optimal: bool,
    stream_race_to_idle_optimal: bool,
    summary: String,
}

#[derive(Serialize)]
struct FrontierReport {
    machine: Machine,
    model: ModelInfo,
    workloads: Vec<Workload>,
    roofline: Roofline,
    verdicts: Verdicts,
}

/// Measured (seconds, throughput) for one workload at one thread count.
fn measure(threads: usize, gemm_n: usize, stream_elems: usize) -> ((f64, f64), (f64, f64)) {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let g = gemm::benchmark(gemm_n, 7);
        let s = stream::run(StreamConfig { array_size: stream_elems, ntimes: 3 });
        assert!(s.validated, "STREAM results check failed");
        let triad = s.timing(stream::StreamKernel::Triad);
        ((g.seconds, g.gflops), (triad.best_seconds, triad.best_bytes_per_sec / 1e9))
    })
}

/// One measured observation: what actually ran, for how long, how fast.
struct Measured {
    threads: usize,
    seconds: f64,
    throughput: f64,
    unit: &'static str,
}

fn sweep(
    governor: &GovernorModel,
    node: &NodePowerModel,
    u: UtilizationSample,
    compute_fraction: f64,
    m: Measured,
) -> ThreadSweep {
    let deadline = m.seconds * DEADLINE_SLACK;
    let points = governor.frontier(node, u, compute_fraction, m.seconds, deadline);
    let race_to_idle = governor
        .race_to_idle(node, u, compute_fraction, m.seconds, deadline)
        .expect("nominal frequency always meets a 2x deadline");
    assert!(points.len() >= 3, "frontier needs >= 3 frequency points");
    assert!(points.iter().all(|p| p.energy_j.is_finite() && p.energy_j > 0.0));
    ThreadSweep {
        threads: m.threads,
        measured_seconds: m.seconds,
        measured_throughput: m.throughput,
        throughput_unit: m.unit,
        points,
        race_to_idle,
    }
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_frontier.json")
}

fn main() {
    let gemm_n = env_size("TGI_FRONTIER_GEMM_N", 512);
    let stream_elems = env_size("TGI_FRONTIER_STREAM_ELEMS", 1 << 21);
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // At least two thread counts even on a single-core machine (the
    // 2-thread point is then an oversubscription measurement — honest,
    // because `threads` records what actually ran).
    let thread_counts = if n_threads > 1 { vec![1, n_threads] } else { vec![1, 2] };
    let isa = timing::active_isa_name();
    eprintln!(
        "frontier: isa={isa}, gemm n={gemm_n}, stream elems={stream_elems}, threads {thread_counts:?}"
    );

    let governor = GovernorModel::sandy_bridge();
    let node = NodePowerModel::sandy_bridge_node();
    let gemm_u = UtilizationSample::cpu_bound(1.0);
    // STREAM saturates the memory system while cores stall.
    let stream_u = UtilizationSample::new(0.4, 1.0, 0.0, 0.0);

    let mut gemm_sweeps = Vec::new();
    let mut stream_sweeps = Vec::new();
    for &t in &thread_counts {
        let ((gs, gf), (ss, sbw)) = measure(t, gemm_n, stream_elems);
        eprintln!("  threads={t}: gemm {gs:.4}s ({gf:.2} GFLOPS), triad {ss:.5}s ({sbw:.2} GB/s)");
        let g = Measured { threads: t, seconds: gs, throughput: gf, unit: "gflops" };
        gemm_sweeps.push(sweep(&governor, &node, gemm_u, GEMM_COMPUTE_FRACTION, g));
        let s = Measured { threads: t, seconds: ss, throughput: sbw, unit: "gbps" };
        stream_sweeps.push(sweep(&governor, &node, stream_u, STREAM_COMPUTE_FRACTION, s));
    }

    // Roofline context from the model machine (Sandy Bridge-EP node).
    let spec = ClusterSpec::sandy();
    let per_core_peak = spec.node.clock_ghz * spec.node.flops_per_cycle;
    let bw = spec.node.mem_bandwidth_gbps;
    let ridge = spec.node.peak_gflops() / bw;
    // Blocked DGEMM at size n: 2n^3 FLOPs over 3·8·n^2 bytes of matrix data.
    let gemm_intensity = 2.0 * gemm_n as f64 / 24.0;
    let gemm_1t = &gemm_sweeps[0];
    let triad_best = stream_sweeps.iter().map(|s| s.measured_throughput).fold(0.0f64, f64::max);
    let roofline = Roofline {
        model_peak_gflops_per_core: per_core_peak,
        model_mem_bandwidth_gbps: bw,
        ridge_flops_per_byte: ridge,
        gemm_flops_per_byte: gemm_intensity,
        measured_gemm_gflops_1t: gemm_1t.measured_throughput,
        gemm_fraction_of_core_peak_1t: gemm_1t.measured_throughput / per_core_peak,
        measured_triad_gbps_best: triad_best,
        triad_fraction_of_model_bw: triad_best / bw,
    };

    let gemm_rti = gemm_sweeps.iter().all(|s| s.race_to_idle.race_to_idle_optimal);
    let stream_rti = stream_sweeps.iter().all(|s| s.race_to_idle.race_to_idle_optimal);
    let verdicts = Verdicts {
        gemm_race_to_idle_optimal: gemm_rti,
        stream_race_to_idle_optimal: stream_rti,
        summary: format!(
            "Race-to-idle is {} for compute-bound GEMM (cubic CPU power dominates the \
             above-idle draw, so a lower P-state saves more than the stretch costs) and {} \
             for memory-bound STREAM (runtime barely stretches, so the lowest P-state wins \
             outright); under this node model the sprint-then-idle strategy is only optimal \
             when frequency-insensitive active power dominates.",
            if gemm_rti { "optimal" } else { "not optimal" },
            if stream_rti { "optimal" } else { "not optimal" },
        ),
    };
    eprintln!("  verdict: {}", verdicts.summary);

    let report = FrontierReport {
        machine: Machine { available_parallelism: n_threads, isa },
        model: ModelInfo {
            node: "sandy_bridge_node",
            governor_nominal_ghz: governor.nominal_ghz,
            frequency_ratios: governor.ratios.clone(),
            gemm_compute_fraction: GEMM_COMPUTE_FRACTION,
            stream_compute_fraction: STREAM_COMPUTE_FRACTION,
            deadline_slack: DEADLINE_SLACK,
        },
        workloads: vec![
            Workload { name: "gemm", problem_size: gemm_n, sweeps: gemm_sweeps },
            Workload { name: "stream_triad", problem_size: stream_elems, sweeps: stream_sweeps },
        ],
        roofline,
        verdicts,
    };
    for w in &report.workloads {
        assert!(w.sweeps.len() >= 2, "need >= 2 thread counts per workload");
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("report file writable");
    eprintln!("frontier: wrote {}", path.display());
}
