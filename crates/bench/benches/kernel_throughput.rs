//! Kernel throughput baseline: measures the native kernels at 1 thread and
//! at the machine's full thread count, and writes `BENCH_kernels.json` at
//! the repository root (override the path with `TGI_BENCH_OUT`).
//!
//! The committed JSON is the perf baseline for the parallel backend: GFLOPS
//! for DGEMM and HPL, STREAM Triad MB/s, and GUPS, plus the N-thread/1-thread
//! speedup per kernel. Numbers are honest for the machine that produced
//! them: `machine.available_parallelism` records how many cores that was,
//! `machine.isa` names the SIMD path the kernels dispatched to
//! (`TGI_KERNEL_ISA` overrides it), and on a single-core machine only the
//! 1-thread run is recorded with `speedup_n_over_1: null` — a 1-over-1
//! "speedup" is not a measurement.

use hpc_kernels::stream::StreamConfig;
use hpc_kernels::{gemm, hpl, random_access, stream, timing};
use serde::Serialize;
use std::path::PathBuf;

/// Problem sizes: big enough to exercise the blocking/parallel paths,
/// small enough that the bench smoke-runs in CI.
const GEMM_N: usize = 512;
const HPL_N: usize = 512;
const STREAM_ELEMS: usize = 1 << 21;
const GUPS_LOG2: u32 = 16;

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
    isa: &'static str,
}

#[derive(Serialize)]
struct KernelRun {
    threads: usize,
    gemm_n: usize,
    gemm_gflops: f64,
    hpl_n: usize,
    hpl_gflops: f64,
    stream_elems: usize,
    stream_triad_mbps: f64,
    gups_log2_table: u32,
    gups: f64,
}

#[derive(Serialize)]
struct Speedup {
    threads: usize,
    gemm: f64,
    hpl: f64,
    stream_triad: f64,
    gups: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    runs: Vec<KernelRun>,
    /// `null` when the machine has a single core: there is no N-thread
    /// run to compare against.
    speedup_n_over_1: Option<Speedup>,
}

fn measure(threads: usize) -> KernelRun {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let g = gemm::benchmark(GEMM_N, 7);
        let h = hpl::run(hpl::HplConfig::new(HPL_N)).expect("non-singular HPL system");
        assert!(h.passed, "HPL residual check failed");
        let s = stream::run(StreamConfig { array_size: STREAM_ELEMS, ntimes: 3 });
        assert!(s.validated, "STREAM results check failed");
        let r = random_access::run(random_access::GupsConfig::new(GUPS_LOG2));
        assert!(r.passed, "GUPS verification failed");
        KernelRun {
            threads,
            gemm_n: GEMM_N,
            gemm_gflops: g.gflops,
            hpl_n: HPL_N,
            hpl_gflops: h.gflops,
            stream_elems: STREAM_ELEMS,
            stream_triad_mbps: s.triad_mbps(),
            gups_log2_table: GUPS_LOG2,
            gups: r.gups,
        }
    })
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_kernels.json")
}

fn main() {
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let isa = timing::active_isa_name();
    eprintln!("kernel_throughput: isa={isa}, measuring at 1 and {n_threads} thread(s)");

    let one = measure(1);
    let mut runs = vec![one];
    let speedup = if n_threads > 1 {
        let many = measure(n_threads);
        let one = &runs[0];
        let s = Speedup {
            threads: many.threads,
            gemm: many.gemm_gflops / one.gemm_gflops,
            hpl: many.hpl_gflops / one.hpl_gflops,
            stream_triad: many.stream_triad_mbps / one.stream_triad_mbps,
            gups: many.gups / one.gups,
        };
        runs.push(many);
        Some(s)
    } else {
        None
    };
    for run in &runs {
        eprintln!(
            "  threads={}: gemm {:.3} GFLOPS, hpl {:.3} GFLOPS, triad {:.1} MB/s, {:.5} GUPS",
            run.threads, run.gemm_gflops, run.hpl_gflops, run.stream_triad_mbps, run.gups
        );
    }
    if speedup.is_none() {
        eprintln!("  single core: skipping the N-thread run (speedup_n_over_1 = null)");
    }

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads, isa },
        runs,
        speedup_n_over_1: speedup,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("kernel_throughput: wrote {}", path.display());
}
