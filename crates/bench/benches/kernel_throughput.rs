//! Kernel throughput baseline: measures the native kernels at 1 thread and
//! at the machine's full thread count, and writes `BENCH_kernels.json` at
//! the repository root (override the path with `TGI_BENCH_OUT`).
//!
//! The committed JSON is the perf baseline for the parallel backend: GFLOPS
//! for DGEMM and HPL, STREAM Triad MB/s, and GUPS, plus the N-thread/1-thread
//! speedup per kernel. Numbers are honest for the machine that produced
//! them — `machine.available_parallelism` records how many cores that was.

use hpc_kernels::stream::StreamConfig;
use hpc_kernels::{gemm, hpl, random_access, stream};
use serde::Serialize;
use std::path::PathBuf;

/// Problem sizes: big enough to exercise the blocking/parallel paths,
/// small enough that the bench smoke-runs in CI.
const GEMM_N: usize = 512;
const HPL_N: usize = 512;
const STREAM_ELEMS: usize = 1 << 21;
const GUPS_LOG2: u32 = 16;

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct KernelRun {
    threads: usize,
    gemm_n: usize,
    gemm_gflops: f64,
    hpl_n: usize,
    hpl_gflops: f64,
    stream_elems: usize,
    stream_triad_mbps: f64,
    gups_log2_table: u32,
    gups: f64,
}

#[derive(Serialize)]
struct Speedup {
    gemm: f64,
    hpl: f64,
    stream_triad: f64,
    gups: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    runs: Vec<KernelRun>,
    speedup_n_over_1: Speedup,
}

fn measure(threads: usize) -> KernelRun {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let g = gemm::benchmark(GEMM_N, 7);
        let h = hpl::run(hpl::HplConfig::new(HPL_N)).expect("non-singular HPL system");
        assert!(h.passed, "HPL residual check failed");
        let s = stream::run(StreamConfig { array_size: STREAM_ELEMS, ntimes: 3 });
        assert!(s.validated, "STREAM results check failed");
        let r = random_access::run(random_access::GupsConfig::new(GUPS_LOG2));
        assert!(r.passed, "GUPS verification failed");
        KernelRun {
            threads,
            gemm_n: GEMM_N,
            gemm_gflops: g.gflops,
            hpl_n: HPL_N,
            hpl_gflops: h.gflops,
            stream_elems: STREAM_ELEMS,
            stream_triad_mbps: s.triad_mbps(),
            gups_log2_table: GUPS_LOG2,
            gups: r.gups,
        }
    })
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_kernels.json")
}

fn main() {
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("kernel_throughput: measuring at 1 and {n_threads} thread(s)");

    let one = measure(1);
    let many = if n_threads > 1 { measure(n_threads) } else { measure(1) };
    let speedup = Speedup {
        gemm: many.gemm_gflops / one.gemm_gflops,
        hpl: many.hpl_gflops / one.hpl_gflops,
        stream_triad: many.stream_triad_mbps / one.stream_triad_mbps,
        gups: many.gups / one.gups,
    };
    for run in [&one, &many] {
        eprintln!(
            "  threads={}: gemm {:.3} GFLOPS, hpl {:.3} GFLOPS, triad {:.1} MB/s, {:.5} GUPS",
            run.threads, run.gemm_gflops, run.hpl_gflops, run.stream_triad_mbps, run.gups
        );
    }

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads },
        runs: vec![one, many],
        speedup_n_over_1: speedup,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("kernel_throughput: wrote {}", path.display());
}
