//! End-to-end load benchmark for `tgi-server`, written to
//! `BENCH_server.json` at the repository root (override the path with
//! `TGI_BENCH_OUT`, the scale with `TGI_SERVER_BENCH_CLIENTS` /
//! `TGI_SERVER_BENCH_REQUESTS`).
//!
//! Starts an in-process server on an ephemeral loopback port, then drives
//! the same [`tgi_server::load`] generator the `tgi-load` binary uses:
//! N concurrent keep-alive clients, each cycling a write-heavy
//! ingest/query/evaluate mix. Guarantees asserted here, not just reported:
//!
//! * every request eventually succeeds (`429`s are retried, nothing is
//!   dropped, no non-2xx other than backpressure);
//! * no transport-level errors on loopback;
//! * the server's own served/rejected counters agree with the clients'
//!   view of the run.

use serde::Serialize;
use std::path::PathBuf;
use tgi_server::{LoadConfig, Server, ServerConfig};

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct ServerSide {
    workers: usize,
    shards: usize,
    queue_capacity: usize,
    connections_accepted: u64,
    connections_rejected: u64,
    requests_served: u64,
}

#[derive(Serialize)]
struct BenchReport {
    machine: Machine,
    server: ServerSide,
    load: tgi_server::LoadReport,
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_server.json")
}

fn env_count(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

fn main() {
    let clients = env_count("TGI_SERVER_BENCH_CLIENTS", 1000);
    let requests_per_client = env_count("TGI_SERVER_BENCH_REQUESTS", 20);
    let server_config = ServerConfig::default();
    let workers = server_config.workers;
    let shards = server_config.shards;
    let queue_capacity = server_config.queue_capacity;
    eprintln!(
        "server_load: {clients} clients x {requests_per_client} requests, \
         {workers} workers, {shards} shards, queue {queue_capacity}"
    );

    let mut server = Server::start(server_config, tgi_harness::experiments::system_g_reference())
        .expect("server starts");
    let load_config = LoadConfig {
        addr: server.addr().to_string(),
        clients,
        requests_per_client,
        batch_samples: 32,
    };
    let report = tgi_server::load::run(&load_config);
    server.shutdown();

    // Contract checks — the numbers are only worth committing if the run
    // was clean.
    let expected = (clients * requests_per_client) as u64;
    assert_eq!(report.ok, expected, "every request must eventually succeed");
    assert_eq!(report.failed, 0, "no non-backpressure failures allowed");
    assert_eq!(report.transport_errors, 0, "loopback transport must be clean");
    let stats = server.stats();
    let served = stats.served.load(std::sync::atomic::Ordering::Relaxed);
    assert!(served >= expected, "server served {served} but clients completed {expected}");

    let bench = BenchReport {
        machine: Machine {
            available_parallelism: std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1),
        },
        server: ServerSide {
            workers,
            shards,
            queue_capacity,
            connections_accepted: stats.accepted.load(std::sync::atomic::Ordering::Relaxed),
            connections_rejected: stats.rejected.load(std::sync::atomic::Ordering::Relaxed),
            requests_served: served,
        },
        load: report,
    };
    let path = output_path();
    let json = serde_json::to_string_pretty(&bench).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write bench report");
    eprintln!(
        "server_load: {:.0} rps, p50 {:.0}us, p99 {:.0}us, p999 {:.0}us -> {}",
        bench.load.rps,
        bench.load.p50_us,
        bench.load.p99_us,
        bench.load.p999_us,
        path.display()
    );
}
