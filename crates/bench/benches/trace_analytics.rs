//! Trace-analytics baseline: indexed SoA trace queries vs naive rescans,
//! written to `BENCH_trace.json` at the repository root (override the path
//! with `TGI_BENCH_OUT`, the trace length with `TGI_TRACE_BENCH_SAMPLES`).
//!
//! The committed JSON documents the streaming-analytics engine's win: batch
//! and per-push ingest rates, O(log n) `energy_between` vs a full-scan
//! integration, the O(n) two-pointer `moving_average` vs the O(n·w)
//! definition, selection-based percentiles vs a full sort per query, and
//! parallel fleet summarization at 1 vs N threads. Every naive reference is
//! implemented here, independent of the library's prefix index, and the
//! bench asserts the two paths agree before it trusts a timing.

use power_model::{analysis, PowerTrace, TraceSet};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use tgi_core::Watts;

#[derive(Serialize)]
struct Machine {
    available_parallelism: usize,
}

#[derive(Serialize)]
struct Ingest {
    push_samples_per_sec: f64,
    batch_samples_per_sec: f64,
}

#[derive(Serialize)]
struct EnergyBetween {
    indexed_ns_per_query: f64,
    naive_ns_per_query: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct MovingAverage {
    window_s: f64,
    indexed_ms: f64,
    naive_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Percentile {
    selection_us_per_query: f64,
    full_sort_us_per_query: f64,
    cached_ns_per_query: f64,
    speedup_selection_over_sort: f64,
}

#[derive(Serialize)]
struct Fleet {
    nodes: usize,
    summarize_ms_1_thread: f64,
    summarize_ms_n_threads: f64,
}

#[derive(Serialize)]
struct Baseline {
    machine: Machine,
    samples: usize,
    ingest: Ingest,
    energy_between: EnergyBetween,
    moving_average: MovingAverage,
    percentile: Percentile,
    fleet: Fleet,
}

/// Deterministic pseudo-random stream (SplitMix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A wall-meter-like trace: ~1 Hz cadence with jitter, wandering power.
fn synth_columns(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Lcg(0x7261CE);
    let mut times = Vec::with_capacity(n);
    let mut watts = Vec::with_capacity(n);
    let mut t = 0.0;
    let mut w = 250.0;
    for _ in 0..n {
        t += 0.9 + 0.2 * rng.next_unit();
        w = (w + 10.0 * (rng.next_unit() - 0.5)).clamp(80.0, 450.0);
        times.push(t);
        watts.push(w);
    }
    (times, watts)
}

/// Naive full-scan windowed energy: interpolated piecewise-linear integral.
fn naive_energy_between(times: &[f64], watts: &[f64], a: f64, b: f64) -> f64 {
    let a = a.max(times[0]);
    let b = b.min(times[times.len() - 1]);
    if b <= a {
        return 0.0;
    }
    let interp = |lo: usize, t: f64| -> f64 {
        let (t0, t1) = (times[lo], times[lo + 1]);
        if t1 == t0 {
            watts[lo + 1]
        } else {
            watts[lo] + (watts[lo + 1] - watts[lo]) * (t - t0) / (t1 - t0)
        }
    };
    let mut e = 0.0;
    for i in 1..times.len() {
        let lo = times[i - 1].max(a);
        let hi = times[i].min(b);
        if hi > lo {
            e += 0.5 * (interp(i - 1, lo) + interp(i - 1, hi)) * (hi - lo);
        }
    }
    e
}

/// Naive O(n·w) centered moving average.
fn naive_moving_average(times: &[f64], watts: &[f64], window_s: f64) -> Vec<f64> {
    let half = window_s / 2.0;
    let n = times.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (mut sum, mut count) = (0.0, 0usize);
        let mut j = i;
        loop {
            if times[i] - times[j] > half {
                break;
            }
            sum += watts[j];
            count += 1;
            if j == 0 {
                break;
            }
            j -= 1;
        }
        let mut j = i + 1;
        while j < n && times[j] - times[i] <= half {
            sum += watts[j];
            count += 1;
            j += 1;
        }
        out.push(sum / count as f64);
    }
    out
}

/// Naive full-sort percentile with linear interpolation.
fn naive_percentile(watts: &[f64], p: f64) -> f64 {
    let mut sorted = watts.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

fn output_path() -> PathBuf {
    if let Ok(p) = std::env::var("TGI_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench/ → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_trace.json")
}

fn main() {
    let n: usize = std::env::var("TGI_TRACE_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    eprintln!("trace_analytics: {n} samples, {n_threads} thread(s) available");

    let (times, watts) = synth_columns(n);

    // Ingest: validated per-sample pushes vs one batch call.
    let start = Instant::now();
    let mut pushed = PowerTrace::with_capacity(n);
    for (&t, &w) in times.iter().zip(&watts) {
        pushed.push(t, Watts::new(w));
    }
    let push_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut batched = PowerTrace::with_capacity(n);
    batched.extend_from_slices(&times, &watts);
    let batch_secs = start.elapsed().as_secs_f64();
    assert_eq!(batched.energy().value(), pushed.energy().value(), "ingest paths must agree");
    let trace = batched;

    // Windowed energy: agree on a probe set, then time each path at a
    // query count matched to its cost.
    let span = times[n - 1] - times[0];
    let windows: Vec<(f64, f64)> = {
        let mut rng = Lcg(0xE6E7);
        (0..200)
            .map(|_| {
                let a = times[0] + rng.next_unit() * span;
                let b = (a + rng.next_unit() * span * 0.2).min(times[n - 1]);
                (a, b)
            })
            .collect()
    };
    for &(a, b) in windows.iter().take(25) {
        let fast = trace.energy_between(a, b).value();
        let slow = naive_energy_between(&times, &watts, a, b);
        assert!(
            (fast - slow).abs() <= 1e-7 * slow.abs().max(1.0),
            "energy_between disagrees on [{a}, {b}]: {fast} vs {slow}"
        );
    }
    let naive_queries = 50.min(windows.len());
    let start = Instant::now();
    let mut sink = 0.0;
    for &(a, b) in windows.iter().cycle().take(naive_queries) {
        sink += naive_energy_between(&times, &watts, a, b);
    }
    let naive_ns = start.elapsed().as_nanos() as f64 / naive_queries as f64;
    let indexed_queries = 200_000;
    let start = Instant::now();
    for &(a, b) in windows.iter().cycle().take(indexed_queries) {
        sink -= trace.energy_between(a, b).value();
    }
    let indexed_ns = start.elapsed().as_nanos() as f64 / indexed_queries as f64;
    assert!(sink.is_finite());
    let energy_between = EnergyBetween {
        indexed_ns_per_query: indexed_ns,
        naive_ns_per_query: naive_ns,
        speedup: naive_ns / indexed_ns,
    };

    // Moving average: one full pass each, same window. The window is sized
    // relative to the span (~0.2% ≈ 2000 samples at 1e6) so the naive
    // O(n·w) cost is clearly separated from the indexed O(n) pass.
    let window_s = (span * 2e-3).max(3.0);
    let start = Instant::now();
    let smooth = analysis::moving_average(&trace, window_s);
    let ma_indexed_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let reference = naive_moving_average(&times, &watts, window_s);
    let ma_naive_ms = start.elapsed().as_secs_f64() * 1e3;
    for i in (0..n).step_by((n / 64).max(1)) {
        let (a, b) = (smooth.sample(i).watts, reference[i]);
        assert!((a - b).abs() <= 1e-7 * b.abs().max(1.0), "moving_average disagrees at {i}");
    }
    let moving_average = MovingAverage {
        window_s,
        indexed_ms: ma_indexed_ms,
        naive_ms: ma_naive_ms,
        speedup: ma_naive_ms / ma_indexed_ms,
    };

    // Percentiles: selection per query vs full sort per query vs the cache.
    let ps = [5.0, 25.0, 50.0, 75.0, 95.0, 99.0];
    let start = Instant::now();
    let mut sel_sink = 0.0;
    for &p in &ps {
        sel_sink += analysis::try_percentile(&trace, p).unwrap().value();
    }
    let selection_us = start.elapsed().as_secs_f64() * 1e6 / ps.len() as f64;
    let start = Instant::now();
    let mut sort_sink = 0.0;
    for &p in &ps {
        sort_sink += naive_percentile(&watts, p);
    }
    let sort_us = start.elapsed().as_secs_f64() * 1e6 / ps.len() as f64;
    assert!((sel_sink - sort_sink).abs() <= 1e-7 * sort_sink.abs().max(1.0));
    let cache = PercentileCacheTimed::build(&trace);
    let percentile = Percentile {
        selection_us_per_query: selection_us,
        full_sort_us_per_query: sort_us,
        cached_ns_per_query: cache.ns_per_query,
        speedup_selection_over_sort: sort_us / selection_us,
    };

    // Fleet: split the trace over 8 nodes, summarize at 1 and N threads.
    let nodes = 8;
    let per = n / nodes;
    let mut set = TraceSet::new();
    for i in 0..nodes {
        let (lo, hi) = (i * per, ((i + 1) * per).min(n));
        let mut node = PowerTrace::with_capacity(hi - lo);
        node.extend_from_slices(&times[lo..hi], &watts[lo..hi]);
        set.push(format!("node{i}"), node);
    }
    let one_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let start = Instant::now();
    let s1 = one_pool.install(|| set.summarize());
    let fleet_ms_1 = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sn = set.summarize();
    let fleet_ms_n = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(s1.total_samples, sn.total_samples);
    assert!((s1.total_energy_j - sn.total_energy_j).abs() <= 1e-9 * sn.total_energy_j.abs());
    let fleet =
        Fleet { nodes, summarize_ms_1_thread: fleet_ms_1, summarize_ms_n_threads: fleet_ms_n };

    eprintln!(
        "  ingest: push {:.2e}/s, batch {:.2e}/s",
        n as f64 / push_secs,
        n as f64 / batch_secs
    );
    eprintln!(
        "  energy_between: indexed {:.0} ns vs naive {:.0} ns ({:.0}x)",
        energy_between.indexed_ns_per_query,
        energy_between.naive_ns_per_query,
        energy_between.speedup
    );
    eprintln!(
        "  moving_average ({:.1} s window): {:.1} ms vs {:.1} ms ({:.0}x)",
        window_s, moving_average.indexed_ms, moving_average.naive_ms, moving_average.speedup
    );
    eprintln!(
        "  percentile: selection {:.0} us vs sort {:.0} us; cached {:.0} ns",
        percentile.selection_us_per_query,
        percentile.full_sort_us_per_query,
        percentile.cached_ns_per_query
    );
    eprintln!("  fleet summarize: {fleet_ms_1:.1} ms at 1 thread, {fleet_ms_n:.1} ms at N");

    // The indexed paths must never lose to the naive ones; at full size the
    // acceptance bar is 10x.
    assert!(energy_between.speedup >= 1.0, "energy_between slower than naive");
    assert!(moving_average.speedup >= 1.0, "moving_average slower than naive");
    if n >= 1_000_000 {
        assert!(energy_between.speedup >= 10.0, "energy_between below the 10x bar");
        assert!(moving_average.speedup >= 10.0, "moving_average below the 10x bar");
    }

    let baseline = Baseline {
        machine: Machine { available_parallelism: n_threads },
        samples: n,
        ingest: Ingest {
            push_samples_per_sec: n as f64 / push_secs,
            batch_samples_per_sec: n as f64 / batch_secs,
        },
        energy_between,
        moving_average,
        percentile,
        fleet,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = output_path();
    std::fs::write(&path, json + "\n").expect("baseline file writable");
    eprintln!("trace_analytics: wrote {}", path.display());
}

/// Times the [`analysis::PercentileCache`]: one build, then repeated O(1)
/// queries.
struct PercentileCacheTimed {
    ns_per_query: f64,
}

impl PercentileCacheTimed {
    fn build(trace: &PowerTrace) -> Self {
        let cache = analysis::PercentileCache::new(trace);
        let queries = 100_000;
        let mut rng = Lcg(0xCAC4E);
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..queries {
            sink += cache.percentile(rng.next_unit() * 100.0).unwrap().value();
        }
        assert!(sink.is_finite());
        PercentileCacheTimed { ns_per_query: start.elapsed().as_nanos() as f64 / queries as f64 }
    }
}
