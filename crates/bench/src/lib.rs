//! # tgi-bench — benchmark harnesses for every paper artifact
//!
//! Each Criterion bench regenerates one artifact of the paper's evaluation
//! (printing its rows/series once, then timing the regeneration), or runs an
//! ablation of a design choice called out in DESIGN.md:
//!
//! * `benches/figures.rs` — Figures 2–6 (one bench group per figure).
//! * `benches/tables.rs` — Tables I and II.
//! * `benches/kernels.rs` — the native kernels (HPL, STREAM, IOzone-style,
//!   DGEMM, FFT, PTRANS, GUPS) at several sizes.
//! * `benches/kernel_throughput.rs` — the parallel-backend perf baseline:
//!   runs DGEMM/HPL/STREAM/GUPS at 1 thread and at the machine's full
//!   thread count and writes `BENCH_kernels.json` at the repo root (path
//!   overridable with `TGI_BENCH_OUT`), including N-over-1 speedups.
//! * `benches/lu_ablation.rs` — blocked vs unblocked LU, block-size sweep.
//! * `benches/metric.rs` — tgi-core microbenchmarks (TGI computation,
//!   Pearson correlation, means).
//! * `benches/meter_ablation.rs` — meter sampling-rate sensitivity and
//!   PUE-on/off ablation.
//! * `benches/fleet.rs` — the synthetic Green500: fleet generation, the
//!   full 500-system fleet sweep (parallel bitwise-equal to sequential,
//!   zero duplicate simulations hard-asserted), and the sharded
//!   single-flight memoizer vs the old single-mutex design at 1/4/16
//!   threads; writes `BENCH_fleet.json` (`TGI_FLEET_BENCH_SYSTEMS`
//!   shrinks it for CI smoke).
//!
//! Run with `cargo bench --workspace` (or `-p tgi-bench --bench figures`).

/// Shared Criterion settings so `cargo bench --workspace` stays fast: the
/// artifact regenerations are deterministic, so few samples suffice.
pub fn quick() -> criterion_config::Quick {
    criterion_config::Quick
}

/// Tiny marker module so the crate has a stable public item to document.
pub mod criterion_config {
    /// Marker for the quick-benchmarks configuration.
    pub struct Quick;
}
