//! Distributed HPL on a true two-dimensional process grid.
//!
//! §IV-A: "The data is distributed on a two-dimensional grid using a cyclic
//! scheme for better load balance and scalability." This module implements
//! exactly that — the `P×Q` block-cyclic distribution of ScaLAPACK/HPL —
//! on the mini-MPI runtime:
//!
//! * block `(bi, bj)` of the matrix lives on grid process
//!   `(bi mod P, bj mod Q)`;
//! * pivot search is a max-loc reduction down the process *column* owning
//!   the panel;
//! * row interchanges are pairwise exchanges between process rows;
//! * the factored panel is broadcast along process *rows*, the computed
//!   `U₁₂` block row along process *columns*, and every process updates its
//!   local trailing submatrix with a local GEMM — HPL's communication
//!   pattern in miniature.
//!
//! The [`crate::hpl`] module remains the simpler `1×Q` specialization; this
//! one is the general grid, validated against it and against the
//! shared-memory solver.

use crate::comm::Communicator;
use hpc_kernels::hpl::{scaled_residual, RESIDUAL_THRESHOLD};
use hpc_kernels::matrix::Matrix;
use std::time::Instant;

/// Configuration of a 2D-grid distributed HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2dConfig {
    /// Problem order N.
    pub n: usize,
    /// Square block size NB.
    pub block_size: usize,
    /// Process-grid rows P (world size must equal `p * q`).
    pub p: usize,
    /// Process-grid columns Q.
    pub q: usize,
    /// Seed for the problem generator.
    pub seed: u64,
}

/// Per-rank result (solution replicated, validated by the HPL residual).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2dResult {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Wall seconds for factor + solve on this rank.
    pub seconds: f64,
    /// The HPL scaled residual.
    pub scaled_residual: f64,
    /// Whether the residual test passed.
    pub passed: bool,
}

/// 2D block-cyclic ownership arithmetic.
#[derive(Debug, Clone, Copy)]
struct Grid {
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    /// This rank's grid coordinates.
    pr: usize,
    pc: usize,
}

impl Grid {
    fn coords_of(rank: usize, p: usize) -> (usize, usize) {
        (rank % p, rank / p)
    }

    fn rank_of(&self, pr: usize, pc: usize) -> usize {
        pr + self.p * pc
    }

    fn owner_row_of(&self, i: usize) -> usize {
        (i / self.nb) % self.p
    }

    fn owner_col_of(&self, j: usize) -> usize {
        (j / self.nb) % self.q
    }

    /// Local row index of global row `i` (valid only on its owner row).
    fn local_row(&self, i: usize) -> usize {
        (i / self.nb) / self.p * self.nb + i % self.nb
    }

    /// Local column index of global column `j` (on its owner column).
    fn local_col(&self, j: usize) -> usize {
        (j / self.nb) / self.q * self.nb + j % self.nb
    }

    fn my_global_rows(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.owner_row_of(i) == self.pr).collect()
    }

    fn my_global_cols(&self) -> Vec<usize> {
        (0..self.n).filter(|&j| self.owner_col_of(j) == self.pc).collect()
    }

    /// Ranks in my process column (fixed pc, all grid rows), ascending.
    fn col_group(&self, pc: usize) -> Vec<usize> {
        (0..self.p).map(|pr| self.rank_of(pr, pc)).collect()
    }

    /// Ranks in my process row (fixed pr, all grid columns), ascending.
    fn row_group(&self, pr: usize) -> Vec<usize> {
        (0..self.q).map(|pc| self.rank_of(pr, pc)).collect()
    }
}

/// Runs the 2D-grid HPL on this rank; call with identical config on every
/// rank of a `p*q`-rank world.
pub fn run(comm: &mut Communicator, config: Grid2dConfig) -> Grid2dResult {
    assert!(config.n > 0, "problem order must be positive");
    assert!(config.block_size > 0, "block size must be positive");
    assert_eq!(comm.size(), config.p * config.q, "world size must equal p*q");
    let (pr, pc) = Grid::coords_of(comm.rank(), config.p);
    let grid = Grid { n: config.n, nb: config.block_size, p: config.p, q: config.q, pr, pc };

    // Replicated problem generation (HPL's generator is replicated too).
    let full = Matrix::random(config.n, config.n, config.seed);
    let b: Vec<f64> =
        Matrix::random(config.n, 1, config.seed.wrapping_add(0x9E37_79B9)).as_slice().to_vec();

    // Local storage: my rows × my cols, column-major.
    let rows = grid.my_global_rows();
    let cols = grid.my_global_cols();
    let ld = rows.len();
    let mut local = vec![0.0f64; ld * cols.len()];
    for (lc, &gj) in cols.iter().enumerate() {
        let src = full.col(gj);
        for (lr, &gi) in rows.iter().enumerate() {
            local[lc * ld + lr] = src[gi];
        }
    }

    let start = Instant::now();
    let piv = factor(comm, &grid, &rows, &cols, &mut local);
    let x = solve(comm, &grid, &rows, &cols, &local, &piv, &b);
    let seconds = start.elapsed().as_secs_f64().max(1e-9);

    let scaled = scaled_residual(&full, &x, &b);
    Grid2dResult { x, seconds, scaled_residual: scaled, passed: scaled <= RESIDUAL_THRESHOLD }
}

/// The panel loop. Returns the replicated pivot vector.
fn factor(
    comm: &mut Communicator,
    grid: &Grid,
    rows: &[usize],
    cols: &[usize],
    local: &mut [f64],
) -> Vec<usize> {
    let (n, nb) = (grid.n, grid.nb);
    let ld = rows.len();
    let blocks = n.div_ceil(nb);
    let mut piv = vec![0usize; n];

    for k in 0..blocks {
        let k0 = k * nb;
        let kb = nb.min(n - k0);
        let pc_k = grid.owner_col_of(k0);
        let pr_k = grid.owner_row_of(k0);
        let gen = k as u64 * 1000;
        let col_group = grid.col_group(pc_k);
        let in_panel_col = grid.pc == pc_k;

        // ---- Phase 1: panel factorization within process column pc_k. ----
        let mut block_piv = vec![0usize; kb];
        for j in 0..kb {
            let gj = k0 + j;
            if in_panel_col {
                let lcj = grid.local_col(gj);
                // Local pivot candidate among my rows with global index ≥ gj.
                let (mut best_val, mut best_row) = (-1.0f64, gj);
                for (lr, &gi) in rows.iter().enumerate() {
                    if gi >= gj {
                        let v = local[lcj * ld + lr].abs();
                        if v > best_val {
                            best_val = v;
                            best_row = gi;
                        }
                    }
                }
                let (val, _owner, gpiv) = comm.allreduce_max_loc_among(
                    &col_group,
                    gen + j as u64 * 4,
                    best_val,
                    best_row,
                );
                assert!(val > 0.0, "2D HPL hit a singular panel at step {gj}");
                block_piv[j] = gpiv;

                // Swap rows gj ↔ gpiv across the *panel* columns.
                swap_rows_segment(
                    comm,
                    grid,
                    rows,
                    local,
                    ld,
                    gj,
                    gpiv,
                    &panel_local_cols(grid, cols, k0, kb),
                    gen + j as u64 * 4 + 1,
                );

                // Broadcast the (post-swap) pivot row's panel segment.
                let prow_owner = grid.rank_of(grid.owner_row_of(gj), pc_k);
                let row_seg = if comm.rank() == prow_owner {
                    let lr = grid.local_row(gj);
                    let seg: Vec<f64> = panel_local_cols(grid, cols, k0, kb)
                        .iter()
                        .map(|&lc| local[lc * ld + lr])
                        .collect();
                    Some(seg)
                } else {
                    None
                };
                let row_seg = comm.broadcast_f64_among(
                    &col_group,
                    prow_owner,
                    gen + j as u64 * 4 + 2,
                    row_seg.as_deref(),
                );

                // Eliminate below the pivot in my local rows.
                let pivot = row_seg[j];
                let panel_cols = panel_local_cols(grid, cols, k0, kb);
                for (lr, &gi) in rows.iter().enumerate() {
                    if gi > gj {
                        let lcol = panel_cols[j];
                        let l = local[lcol * ld + lr] / pivot;
                        local[lcol * ld + lr] = l;
                        for (c, &lc) in panel_cols.iter().enumerate().skip(j + 1) {
                            local[lc * ld + lr] -= l * row_seg[c];
                        }
                    }
                }
            }
        }

        // ---- Phase 2: publish pivots; apply swaps outside the panel. ----
        let head = col_group[0];
        let block_piv = comm.broadcast_usize(
            head,
            gen + 500,
            if comm.rank() == head { Some(&block_piv) } else { None },
        );
        piv[k0..k0 + kb].copy_from_slice(&block_piv);

        let outside_cols: Vec<usize> = cols
            .iter()
            .enumerate()
            .filter(|(_, &gj)| !(gj >= k0 && gj < k0 + kb))
            .map(|(lc, _)| lc)
            .collect();
        for (j, &gpiv) in block_piv.iter().enumerate() {
            let gj = k0 + j;
            swap_rows_segment(
                comm,
                grid,
                rows,
                local,
                ld,
                gj,
                gpiv,
                &outside_cols,
                gen + 510 + j as u64,
            );
        }

        if k0 + kb >= n {
            break; // no trailing submatrix
        }

        // ---- Phase 3: broadcast L11 along the diagonal process row; the
        //      owning process row computes U12 and broadcasts it down
        //      process columns. ----
        let diag_owner = grid.rank_of(pr_k, pc_k);
        let row_group = grid.row_group(pr_k);
        let l11 = if grid.pr == pr_k {
            let data = if comm.rank() == diag_owner {
                // Pack L11 (kb×kb) from my local storage.
                let panel_cols = panel_local_cols(grid, cols, k0, kb);
                let mut buf = vec![0.0f64; kb * kb];
                for (c, &lc) in panel_cols.iter().enumerate() {
                    for r in 0..kb {
                        let lr = grid.local_row(k0 + r);
                        buf[c * kb + r] = local[lc * ld + lr];
                    }
                }
                Some(buf)
            } else {
                None
            };
            comm.broadcast_f64_among(&row_group, diag_owner, gen + 600, data.as_deref())
        } else {
            Vec::new()
        };

        // Trailing local columns (global col ≥ k0+kb).
        let trailing_cols: Vec<usize> =
            cols.iter().enumerate().filter(|(_, &gj)| gj >= k0 + kb).map(|(lc, _)| lc).collect();

        // U12: on process row pr_k, solve L11·u = a(k0..k0+kb, c) per column.
        let mut u12 = vec![0.0f64; kb * trailing_cols.len()];
        if grid.pr == pr_k {
            for (t, &lc) in trailing_cols.iter().enumerate() {
                for r in 0..kb {
                    let lr = grid.local_row(k0 + r);
                    u12[t * kb + r] = local[lc * ld + lr];
                }
                for r in 0..kb {
                    let y = u12[t * kb + r];
                    if y == 0.0 {
                        continue;
                    }
                    for rr in r + 1..kb {
                        u12[t * kb + rr] -= l11[r * kb + rr] * y;
                    }
                }
                // Write U12 back into the local storage (it is part of U).
                for r in 0..kb {
                    let lr = grid.local_row(k0 + r);
                    local[lc * ld + lr] = u12[t * kb + r];
                }
            }
        }
        // Broadcast U12 down each process column from (pr_k, my pc).
        let my_col_group = grid.col_group(grid.pc);
        let u12_root = grid.rank_of(pr_k, grid.pc);
        let u12 = comm.broadcast_f64_among(
            &my_col_group,
            u12_root,
            gen + 601,
            if comm.rank() == u12_root { Some(&u12) } else { None },
        );

        // ---- Phase 4: broadcast L21 along process rows; local GEMM. ----
        // My trailing rows (global row ≥ k0+kb).
        let trailing_rows: Vec<usize> =
            rows.iter().enumerate().filter(|(_, &gi)| gi >= k0 + kb).map(|(lr, _)| lr).collect();
        let my_row_group = grid.row_group(grid.pr);
        let l21_root = grid.rank_of(grid.pr, pc_k);
        let l21 = {
            let data = if comm.rank() == l21_root {
                let panel_cols = panel_local_cols(grid, cols, k0, kb);
                let mut buf = vec![0.0f64; trailing_rows.len() * kb];
                for (c, &lc) in panel_cols.iter().enumerate() {
                    for (t, &lr) in trailing_rows.iter().enumerate() {
                        buf[c * trailing_rows.len() + t] = local[lc * ld + lr];
                    }
                }
                Some(buf)
            } else {
                None
            };
            comm.broadcast_f64_among(&my_row_group, l21_root, gen + 602, data.as_deref())
        };

        // A22_local -= L21_local · U12_local.
        let tr = trailing_rows.len();
        for (t_c, &lc) in trailing_cols.iter().enumerate() {
            for jj in 0..kb {
                let u = u12[t_c * kb + jj];
                if u == 0.0 {
                    continue;
                }
                let lcol = &l21[jj * tr..(jj + 1) * tr];
                for (t_r, &lr) in trailing_rows.iter().enumerate() {
                    local[lc * ld + lr] -= lcol[t_r] * u;
                }
            }
        }
    }
    piv
}

/// Local indices of the panel's columns (on the owning process column).
fn panel_local_cols(_grid: &Grid, cols: &[usize], k0: usize, kb: usize) -> Vec<usize> {
    cols.iter().enumerate().filter(|(_, &gj)| gj >= k0 && gj < k0 + kb).map(|(lc, _)| lc).collect()
}

/// Swaps global rows `ga` and `gb` across the given local columns, within
/// this rank's process column (pairwise exchange between the two owning
/// process rows; no-op for bystanders).
#[allow(clippy::too_many_arguments)]
fn swap_rows_segment(
    comm: &mut Communicator,
    grid: &Grid,
    _rows: &[usize],
    local: &mut [f64],
    ld: usize,
    ga: usize,
    gb: usize,
    local_cols: &[usize],
    generation: u64,
) {
    if ga == gb {
        return;
    }
    let pr_a = grid.owner_row_of(ga);
    let pr_b = grid.owner_row_of(gb);
    let own_a = grid.pr == pr_a;
    let own_b = grid.pr == pr_b;
    if !own_a && !own_b {
        return;
    }
    if own_a && own_b {
        let (lra, lrb) = (grid.local_row(ga), grid.local_row(gb));
        for &lc in local_cols {
            local.swap(lc * ld + lra, lc * ld + lrb);
        }
        return;
    }
    let (my_row, peer_pr) = if own_a { (ga, pr_b) } else { (gb, pr_a) };
    let lr = grid.local_row(my_row);
    let mine: Vec<f64> = local_cols.iter().map(|&lc| local[lc * ld + lr]).collect();
    let peer = grid.rank_of(peer_pr, grid.pc);
    let theirs = comm.exchange_f64(peer, generation, &mine);
    debug_assert_eq!(theirs.len(), mine.len());
    for (&lc, v) in local_cols.iter().zip(theirs) {
        local[lc * ld + lr] = v;
    }
}

/// Distributed triangular solves with replicated right-hand side.
#[allow(clippy::needless_range_loop)] // block indices mirror the math
fn solve(
    comm: &mut Communicator,
    grid: &Grid,
    rows: &[usize],
    _cols: &[usize],
    local: &[f64],
    piv: &[usize],
    b: &[f64],
) -> Vec<f64> {
    let (n, nb) = (grid.n, grid.nb);
    let ld = rows.len();
    let blocks = n.div_ceil(nb);
    let mut y = b.to_vec();
    for (kk, &p) in piv.iter().enumerate() {
        y.swap(kk, p);
    }

    // Forward: L y = Pb, block by block.
    for k in 0..blocks {
        let k0 = k * nb;
        let kb = nb.min(n - k0);
        let pc_k = grid.owner_col_of(k0);
        let pr_k = grid.owner_row_of(k0);
        let diag_owner = grid.rank_of(pr_k, pc_k);
        let gen = (blocks + k) as u64 * 1000;

        // Diagonal-block solve on its owner, then world broadcast.
        let z = if comm.rank() == diag_owner {
            let mut zb = y[k0..k0 + kb].to_vec();
            for j in 0..kb {
                let zj = zb[j];
                if zj == 0.0 {
                    continue;
                }
                let lc = grid.local_col(k0 + j);
                for r in j + 1..kb {
                    let lr = grid.local_row(k0 + r);
                    zb[r] -= local[lc * ld + lr] * zj;
                }
            }
            Some(zb)
        } else {
            None
        };
        let z = comm.broadcast_f64(diag_owner, gen, z.as_deref());
        y[k0..k0 + kb].copy_from_slice(&z);

        // Delta for rows below, contributed by the panel's process column.
        let mut delta = vec![0.0f64; n];
        if grid.pc == pc_k {
            for (j, &zj) in z.iter().enumerate() {
                if zj == 0.0 {
                    continue;
                }
                let lc = grid.local_col(k0 + j);
                for (lr, &gi) in rows.iter().enumerate() {
                    if gi >= k0 + kb {
                        delta[gi] += local[lc * ld + lr] * zj;
                    }
                }
            }
        }
        let delta = comm.allreduce_sum(&delta);
        for (yi, d) in y.iter_mut().zip(&delta) {
            *yi -= d;
        }
    }

    // Backward: U x = y, blocks in reverse.
    let mut x = y;
    for k in (0..blocks).rev() {
        let k0 = k * nb;
        let kb = nb.min(n - k0);
        let pc_k = grid.owner_col_of(k0);
        let pr_k = grid.owner_row_of(k0);
        let diag_owner = grid.rank_of(pr_k, pc_k);
        let gen = (2 * blocks + k) as u64 * 1000;

        let xb = if comm.rank() == diag_owner {
            let mut xb = x[k0..k0 + kb].to_vec();
            for j in (0..kb).rev() {
                let lc = grid.local_col(k0 + j);
                let lrj = grid.local_row(k0 + j);
                xb[j] /= local[lc * ld + lrj];
                let xj = xb[j];
                if xj == 0.0 {
                    continue;
                }
                for r in 0..j {
                    let lr = grid.local_row(k0 + r);
                    xb[r] -= local[lc * ld + lr] * xj;
                }
            }
            Some(xb)
        } else {
            None
        };
        let xb = comm.broadcast_f64(diag_owner, gen, xb.as_deref());
        x[k0..k0 + kb].copy_from_slice(&xb);

        let mut delta = vec![0.0f64; n];
        if grid.pc == pc_k {
            for (j, &xj) in xb.iter().enumerate() {
                if xj == 0.0 {
                    continue;
                }
                let lc = grid.local_col(k0 + j);
                for (lr, &gi) in rows.iter().enumerate() {
                    if gi < k0 {
                        delta[gi] += local[lc * ld + lr] * xj;
                    }
                }
            }
        }
        let delta = comm.allreduce_sum(&delta);
        for (xi, d) in x.iter_mut().zip(&delta) {
            *xi -= d;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use hpc_kernels::lu;
    use proptest::prelude::*;

    fn run_grid(n: usize, nb: usize, p: usize, q: usize, seed: u64) -> Vec<Grid2dResult> {
        let config = Grid2dConfig { n, block_size: nb, p, q, seed };
        World::run(p * q, move |comm| run(comm, config))
    }

    #[test]
    fn one_by_one_grid_matches_shared_memory() {
        let n = 48;
        let out = run_grid(n, 8, 1, 1, 5);
        assert!(out[0].passed, "residual {}", out[0].scaled_residual);
        let a = Matrix::random(n, n, 5);
        let b: Vec<f64> = Matrix::random(n, 1, 5u64.wrapping_add(0x9E37_79B9)).as_slice().to_vec();
        let x_ref = lu::solve(a, &b, 8).expect("non-singular");
        for (xd, xr) in out[0].x.iter().zip(&x_ref) {
            assert!((xd - xr).abs() < 1e-8, "{xd} vs {xr}");
        }
    }

    #[test]
    fn various_grids_agree_with_each_other() {
        let n = 60;
        let nb = 8;
        let seed = 31;
        let reference = run_grid(n, nb, 1, 1, seed)[0].x.clone();
        for (p, q) in [(2usize, 1usize), (1, 3), (2, 2), (3, 2), (2, 3)] {
            let out = run_grid(n, nb, p, q, seed);
            for r in &out {
                assert!(r.passed, "grid {p}x{q}: residual {}", r.scaled_residual);
                for (a, b) in r.x.iter().zip(&reference) {
                    assert!((a - b).abs() < 1e-8, "grid {p}x{q}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn non_dividing_sizes_and_tall_grids() {
        // n=37 with nb=5 and a 3×2 grid: ragged blocks everywhere.
        let out = run_grid(37, 5, 3, 2, 7);
        for r in &out {
            assert!(r.passed, "residual {}", r.scaled_residual);
        }
    }

    #[test]
    fn grid_with_more_rows_than_blocks() {
        // 2 block rows on a 4-row grid: two process rows own nothing.
        let out = run_grid(16, 8, 4, 1, 3);
        assert!(out[0].passed, "residual {}", out[0].scaled_residual);
    }

    #[test]
    fn agrees_with_the_1xq_implementation() {
        let n = 54;
        let seed = 77;
        let cfg1d = crate::hpl::DistributedHplConfig { n, block_size: 9, seed };
        let out1d = World::run(3, move |comm| crate::hpl::run(comm, cfg1d));
        let out2d = run_grid(n, 9, 1, 3, seed);
        for (a, b) in out2d[0].x.iter().zip(&out1d[0].x) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "world size must equal")]
    fn wrong_grid_shape_panics() {
        let config = Grid2dConfig { n: 16, block_size: 4, p: 2, q: 2, seed: 1 };
        World::run(3, move |comm| run(comm, config));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Arbitrary shapes, blocks, and grids pass the HPL residual test
        /// and agree across ranks.
        #[test]
        fn prop_grid_hpl_valid(
            n in 6usize..48,
            nb in 2usize..12,
            p in 1usize..4,
            q in 1usize..4,
            seed in 0u64..40,
        ) {
            let out = run_grid(n, nb, p, q, seed);
            for r in &out {
                prop_assert!(
                    r.passed,
                    "n={n} nb={nb} grid={p}x{q}: residual {}",
                    r.scaled_residual
                );
                prop_assert_eq!(&r.x, &out[0].x);
            }
        }
    }
}
