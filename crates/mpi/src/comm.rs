//! The communicator: point-to-point messaging and collectives.
//!
//! Semantics follow MPI where it matters for the algorithms built on top:
//!
//! * messages between a fixed (source, destination) pair are
//!   non-overtaking (channel FIFO order);
//! * `recv` matches on (source, tag), buffering out-of-order arrivals;
//! * collectives are "called by every rank" operations; each call site
//!   must use a tag distinct from concurrently outstanding traffic.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Message payloads: the two element types the distributed kernels need.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Double-precision data (matrix panels, vectors).
    F64(Vec<f64>),
    /// Index data (pivot vectors, counts).
    Usize(Vec<usize>),
}

#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: u64,
    payload: Payload,
}

/// One rank's endpoint in the world.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Out-of-order arrivals waiting for a matching `recv`.
    pending: Vec<Envelope>,
}

/// Reserved tag space for internal collective plumbing.
const INTERNAL: u64 = 1 << 62;

impl Communicator {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `payload` to `dst` with a user tag.
    ///
    /// # Panics
    /// Panics if `dst` is out of range, if the tag intrudes on the internal
    /// tag space, or if the destination has already exited.
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        assert!(tag < INTERNAL, "tag {tag} collides with internal tag space");
        self.send_raw(dst, tag, payload);
    }

    fn send_raw(&self, dst: usize, tag: u64, payload: Payload) {
        self.senders[dst]
            .send(Envelope { src: self.rank, tag, payload })
            .expect("destination rank exited before receiving");
    }

    /// Receives the next message from `src` with `tag`, blocking.
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        assert!(tag < INTERNAL, "tag {tag} collides with internal tag space");
        self.recv_raw(src, tag)
    }

    fn recv_raw(&mut self, src: usize, tag: u64) -> Payload {
        if let Some(pos) = self.pending.iter().position(|e| e.src == src && e.tag == tag) {
            return self.pending.swap_remove(pos).payload;
        }
        loop {
            let env = self.inbox.recv().expect("world torn down while a rank was still receiving");
            if env.src == src && env.tag == tag {
                return env.payload;
            }
            self.pending.push(env);
        }
    }

    /// `send` for `f64` slices.
    pub fn send_f64(&self, dst: usize, tag: u64, data: &[f64]) {
        self.send(dst, tag, Payload::F64(data.to_vec()));
    }

    /// `recv` for `f64` data.
    ///
    /// # Panics
    /// Panics if the matching message carries index data instead.
    pub fn recv_f64(&mut self, src: usize, tag: u64) -> Vec<f64> {
        match self.recv(src, tag) {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload from {src} tag {tag}, got {other:?}"),
        }
    }

    /// `send` for index slices.
    pub fn send_usize(&self, dst: usize, tag: u64, data: &[usize]) {
        self.send(dst, tag, Payload::Usize(data.to_vec()));
    }

    /// `recv` for index data.
    ///
    /// # Panics
    /// Panics if the matching message carries `f64` data instead.
    pub fn recv_usize(&mut self, src: usize, tag: u64) -> Vec<usize> {
        match self.recv(src, tag) {
            Payload::Usize(v) => v,
            other => panic!("expected Usize payload from {src} tag {tag}, got {other:?}"),
        }
    }

    // --- Collectives. Each call consumes one internal tag generation.    ---
    // All ranks must call collectives in the same order (MPI's rule).

    /// Synchronizes all ranks: no rank leaves before every rank has entered.
    pub fn barrier(&mut self, generation: u64) {
        let tag = INTERNAL | (generation << 8);
        // Gather-to-0 then broadcast: linear fan-in/out is fine in-process.
        if self.rank == 0 {
            for src in 1..self.size {
                let _ = self.recv_raw(src, tag);
            }
            for dst in 1..self.size {
                self.send_raw(dst, tag | 1, Payload::Usize(vec![]));
            }
        } else {
            self.send_raw(0, tag, Payload::Usize(vec![]));
            let _ = self.recv_raw(0, tag | 1);
        }
    }

    /// Broadcasts `data` from `root` to every rank; returns the data.
    pub fn broadcast_f64(
        &mut self,
        root: usize,
        generation: u64,
        data: Option<&[f64]>,
    ) -> Vec<f64> {
        let tag = INTERNAL | (generation << 8) | 2;
        if self.rank == root {
            let data = data.expect("root must supply the broadcast data");
            for dst in 0..self.size {
                if dst != root {
                    self.send_raw(dst, tag, Payload::F64(data.to_vec()));
                }
            }
            data.to_vec()
        } else {
            match self.recv_raw(root, tag) {
                Payload::F64(v) => v,
                other => panic!("broadcast payload mismatch: {other:?}"),
            }
        }
    }

    /// Broadcasts index data from `root`.
    pub fn broadcast_usize(
        &mut self,
        root: usize,
        generation: u64,
        data: Option<&[usize]>,
    ) -> Vec<usize> {
        let tag = INTERNAL | (generation << 8) | 3;
        if self.rank == root {
            let data = data.expect("root must supply the broadcast data");
            for dst in 0..self.size {
                if dst != root {
                    self.send_raw(dst, tag, Payload::Usize(data.to_vec()));
                }
            }
            data.to_vec()
        } else {
            match self.recv_raw(root, tag) {
                Payload::Usize(v) => v,
                other => panic!("broadcast payload mismatch: {other:?}"),
            }
        }
    }

    /// Element-wise sum across all ranks; every rank gets the result.
    pub fn allreduce_sum(&mut self, local: &[f64]) -> Vec<f64> {
        let tag = INTERNAL | (1 << 40);
        if self.rank == 0 {
            let mut acc = local.to_vec();
            for src in 1..self.size {
                match self.recv_raw(src, tag) {
                    Payload::F64(v) => {
                        assert_eq!(v.len(), acc.len(), "allreduce length mismatch");
                        for (a, b) in acc.iter_mut().zip(v) {
                            *a += b;
                        }
                    }
                    other => panic!("allreduce payload mismatch: {other:?}"),
                }
            }
            for dst in 1..self.size {
                self.send_raw(dst, tag | 1, Payload::F64(acc.clone()));
            }
            acc
        } else {
            self.send_raw(0, tag, Payload::F64(local.to_vec()));
            match self.recv_raw(0, tag | 1) {
                Payload::F64(v) => v,
                other => panic!("allreduce payload mismatch: {other:?}"),
            }
        }
    }

    /// Max-with-location reduction: every rank gets `(max value, rank that
    /// held it, index the holder reported)`. Ties break to the lower rank,
    /// which keeps the result deterministic.
    pub fn allreduce_max_loc(&mut self, value: f64, index: usize) -> (f64, usize, usize) {
        let tag = INTERNAL | (1 << 41);
        if self.rank == 0 {
            let mut best = (value, 0usize, index);
            for src in 1..self.size {
                match self.recv_raw(src, tag) {
                    Payload::F64(v) => {
                        let (val, idx) = (v[0], v[1] as usize);
                        if val > best.0 {
                            best = (val, src, idx);
                        }
                    }
                    other => panic!("maxloc payload mismatch: {other:?}"),
                }
            }
            let msg = vec![best.0, best.1 as f64, best.2 as f64];
            for dst in 1..self.size {
                self.send_raw(dst, tag | 1, Payload::F64(msg.clone()));
            }
            best
        } else {
            self.send_raw(0, tag, Payload::F64(vec![value, index as f64]));
            match self.recv_raw(0, tag | 1) {
                Payload::F64(v) => (v[0], v[1] as usize, v[2] as usize),
                other => panic!("maxloc payload mismatch: {other:?}"),
            }
        }
    }

    // --- Group collectives: the same operations over a subset of ranks. ---
    // `group` must list the participating ranks identically (same order) on
    // every participant, and every member must call the operation with the
    // same generation. Groups operating concurrently must be disjoint.

    fn group_pos(&self, group: &[usize]) -> usize {
        group.iter().position(|&r| r == self.rank).expect("caller must be a member of the group")
    }

    /// Broadcast within a group from `root` (a world rank inside `group`).
    pub fn broadcast_f64_among(
        &mut self,
        group: &[usize],
        root: usize,
        generation: u64,
        data: Option<&[f64]>,
    ) -> Vec<f64> {
        debug_assert!(group.contains(&root), "root must be in the group");
        let _ = self.group_pos(group);
        let tag = INTERNAL | (generation << 8) | 5;
        if self.rank == root {
            let data = data.expect("root must supply the broadcast data");
            for &dst in group {
                if dst != root {
                    self.send_raw(dst, tag, Payload::F64(data.to_vec()));
                }
            }
            data.to_vec()
        } else {
            match self.recv_raw(root, tag) {
                Payload::F64(v) => v,
                other => panic!("group broadcast payload mismatch: {other:?}"),
            }
        }
    }

    /// Max-with-location reduction within a group; every member gets
    /// `(max value, world rank holding it, holder's index)`.
    pub fn allreduce_max_loc_among(
        &mut self,
        group: &[usize],
        generation: u64,
        value: f64,
        index: usize,
    ) -> (f64, usize, usize) {
        let _ = self.group_pos(group);
        let tag = INTERNAL | (generation << 8) | 6;
        let head = group[0];
        if self.rank == head {
            let mut best = (value, self.rank, index);
            for &src in &group[1..] {
                match self.recv_raw(src, tag) {
                    Payload::F64(v) => {
                        let (val, idx) = (v[0], v[1] as usize);
                        // Tie-break to the lower *group position* for
                        // determinism; positions are processed in order.
                        if val > best.0 {
                            best = (val, src, idx);
                        }
                    }
                    other => panic!("group maxloc payload mismatch: {other:?}"),
                }
            }
            let msg = vec![best.0, best.1 as f64, best.2 as f64];
            for &dst in &group[1..] {
                self.send_raw(dst, tag | 1, Payload::F64(msg.clone()));
            }
            best
        } else {
            self.send_raw(head, tag, Payload::F64(vec![value, index as f64]));
            match self.recv_raw(head, tag | 1) {
                Payload::F64(v) => (v[0], v[1] as usize, v[2] as usize),
                other => panic!("group maxloc payload mismatch: {other:?}"),
            }
        }
    }

    /// Element-wise sum within a group; every member gets the result.
    pub fn allreduce_sum_among(
        &mut self,
        group: &[usize],
        generation: u64,
        local: &[f64],
    ) -> Vec<f64> {
        let _ = self.group_pos(group);
        let tag = INTERNAL | (generation << 8) | 7;
        let head = group[0];
        if self.rank == head {
            let mut acc = local.to_vec();
            for &src in &group[1..] {
                match self.recv_raw(src, tag) {
                    Payload::F64(v) => {
                        assert_eq!(v.len(), acc.len(), "group allreduce length mismatch");
                        for (a, b) in acc.iter_mut().zip(v) {
                            *a += b;
                        }
                    }
                    other => panic!("group allreduce payload mismatch: {other:?}"),
                }
            }
            for &dst in &group[1..] {
                self.send_raw(dst, tag | 1, Payload::F64(acc.clone()));
            }
            acc
        } else {
            self.send_raw(head, tag, Payload::F64(local.to_vec()));
            match self.recv_raw(head, tag | 1) {
                Payload::F64(v) => v,
                other => panic!("group allreduce payload mismatch: {other:?}"),
            }
        }
    }

    /// Pairwise exchange: both ranks send and receive one `f64` buffer.
    /// Both sides must use the same generation; a rank may exchange with
    /// itself (returns its own data).
    pub fn exchange_f64(&mut self, peer: usize, generation: u64, data: &[f64]) -> Vec<f64> {
        if peer == self.rank {
            return data.to_vec();
        }
        let tag = INTERNAL | (generation << 8) | 8;
        self.send_raw(peer, tag, Payload::F64(data.to_vec()));
        match self.recv_raw(peer, tag) {
            Payload::F64(v) => v,
            other => panic!("exchange payload mismatch: {other:?}"),
        }
    }

    /// Gathers variable-length `f64` chunks to `root`; root receives them
    /// in rank order, others receive an empty vector.
    pub fn gather_f64(&mut self, root: usize, generation: u64, local: &[f64]) -> Vec<Vec<f64>> {
        let tag = INTERNAL | (generation << 8) | 4;
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = local.to_vec();
            #[allow(clippy::needless_range_loop)] // recv order is rank order
            for src in 0..self.size {
                if src == root {
                    continue;
                }
                match self.recv_raw(src, tag) {
                    Payload::F64(v) => out[src] = v,
                    other => panic!("gather payload mismatch: {other:?}"),
                }
            }
            out
        } else {
            self.send_raw(root, tag, Payload::F64(local.to_vec()));
            Vec::new()
        }
    }
}

/// The world: spawns `size` ranks, runs the program, joins the threads.
pub struct World;

impl World {
    /// Runs `program` on `size` ranks; returns each rank's result in rank
    /// order.
    ///
    /// # Panics
    /// Panics if `size` is zero or any rank panics.
    pub fn run<F, T>(size: usize, program: F) -> Vec<T>
    where
        F: Fn(&mut Communicator) -> T + Send + Sync,
        T: Send,
    {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut inboxes = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            inboxes.push(rx);
        }
        let program = &program;
        let senders = &senders;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut comm = Communicator {
                        rank,
                        size,
                        senders: senders.clone(),
                        inbox,
                        pending: Vec::new(),
                    };
                    program(&mut comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise a rank's panic with its original payload so
                    // the failure message points at the real cause.
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.allreduce_sum(&[5.0])[0]
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_f64(next, 7, &[comm.rank() as f64]);
            comm.recv_f64(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn recv_matches_by_tag_out_of_order() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send_f64(1, 2, &[2.0]);
                comm.send_f64(1, 1, &[1.0]);
                0.0
            } else {
                // Receive tag 1 first: the tag-2 message must be buffered.
                let a = comm.recv_f64(0, 1)[0];
                let b = comm.recv_f64(0, 2)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn fifo_between_same_pair_and_tag() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..16 {
                    comm.send_f64(1, 3, &[i as f64]);
                }
                Vec::new()
            } else {
                (0..16).map(|_| comm.recv_f64(0, 3)[0]).collect::<Vec<f64>>()
            }
        });
        let expected: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(out[1], expected);
    }

    #[test]
    fn allreduce_sum_vector() {
        let out = World::run(5, |comm| {
            let local = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&local)
        });
        for r in out {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_max_loc_finds_owner() {
        let out = World::run(6, |comm| {
            // Rank 4 holds the largest value, at local index rank*10.
            let value = if comm.rank() == 4 { 100.0 } else { comm.rank() as f64 };
            comm.allreduce_max_loc(value, comm.rank() * 10)
        });
        for (v, owner, idx) in out {
            assert_eq!(v, 100.0);
            assert_eq!(owner, 4);
            assert_eq!(idx, 40);
        }
    }

    #[test]
    fn allreduce_max_loc_ties_break_low_rank() {
        let out = World::run(4, |comm| comm.allreduce_max_loc(1.0, comm.rank()));
        for (_, owner, idx) in out {
            assert_eq!(owner, 0);
            assert_eq!(idx, 0);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::run(4, |comm| {
            let data = if comm.rank() == 2 { Some(&[9.0, 8.0][..]) } else { None };
            comm.broadcast_f64(2, 0, data)
        });
        for r in out {
            assert_eq!(r, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn broadcast_usize_round_trip() {
        let out = World::run(3, |comm| {
            let data = if comm.rank() == 0 { Some(&[1usize, 2, 3][..]) } else { None };
            comm.broadcast_usize(0, 1, data)
        });
        for r in out {
            assert_eq!(r, vec![1, 2, 3]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::run(4, |comm| {
            let local = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gather_f64(0, 2, &local)
        });
        assert_eq!(out[0].len(), 4);
        for (rank, chunk) in out[0].iter().enumerate() {
            assert_eq!(chunk.len(), rank + 1);
            assert!(chunk.iter().all(|&v| v == rank as f64));
        }
        assert!(out[1].is_empty());
    }

    #[test]
    fn group_broadcast_stays_within_group() {
        // Two disjoint groups broadcast concurrently with the same generation.
        let out = World::run(4, |comm| {
            let group: Vec<usize> = if comm.rank() < 2 { vec![0, 1] } else { vec![2, 3] };
            let root = group[0];
            let data = if comm.rank() == root { Some(vec![root as f64 * 10.0]) } else { None };
            comm.broadcast_f64_among(&group, root, 0, data.as_deref())
        });
        assert_eq!(out[0], vec![0.0]);
        assert_eq!(out[1], vec![0.0]);
        assert_eq!(out[2], vec![20.0]);
        assert_eq!(out[3], vec![20.0]);
    }

    #[test]
    fn group_maxloc_and_sum() {
        let out = World::run(6, |comm| {
            // Groups by parity: {0,2,4} and {1,3,5}.
            let group: Vec<usize> = (0..6).filter(|r| r % 2 == comm.rank() % 2).collect();
            let maxloc = comm.allreduce_max_loc_among(&group, 0, comm.rank() as f64, 7);
            let sum = comm.allreduce_sum_among(&group, 1, &[1.0, comm.rank() as f64]);
            (maxloc, sum)
        });
        // Even group max is rank 4; odd group max is rank 5.
        assert_eq!(out[0].0, (4.0, 4, 7));
        assert_eq!(out[2].0, (4.0, 4, 7));
        assert_eq!(out[1].0, (5.0, 5, 7));
        // Sums: evens 0+2+4=6; odds 1+3+5=9.
        assert_eq!(out[0].1, vec![3.0, 6.0]);
        assert_eq!(out[1].1, vec![3.0, 9.0]);
    }

    #[test]
    fn exchange_swaps_buffers() {
        let out = World::run(2, |comm| {
            let mine = vec![comm.rank() as f64; 3];
            comm.exchange_f64(1 - comm.rank(), 0, &mine)
        });
        assert_eq!(out[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(out[1], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn exchange_with_self_is_identity() {
        let out = World::run(1, |comm| comm.exchange_f64(0, 0, &[42.0]));
        assert_eq!(out[0], vec![42.0]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier(0);
            // After the barrier, every rank must observe all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
            comm.barrier(1);
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_f64(5, 0, &[1.0]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "internal tag space")]
    fn reserved_tag_rejected() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_f64(1, u64::MAX, &[1.0]);
            } else {
                let _ = comm.recv_f64(0, u64::MAX);
            }
        });
    }
}
