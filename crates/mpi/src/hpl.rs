//! Distributed HPL on the mini-MPI runtime.
//!
//! §IV-A of the paper, on HPL: "It uses LU factorization with row partial
//! pivoting … The data is distributed on a two-dimensional grid using a
//! cyclic scheme for better load balance and scalability."
//!
//! This implementation instantiates HPL's process grid as `1×Q` — column
//! block-cyclic, a grid shape the reference HPL itself supports — which
//! keeps each pivot search local (every rank holds full columns) while
//! exercising the genuinely distributed parts: panel factorization by the
//! owning rank, pivot/panel broadcast, row interchanges applied by every
//! rank, a distributed trailing update, and distributed forward/backward
//! substitution with per-block contribution broadcasts.
//!
//! Correctness is validated by HPL's own scaled residual.

use crate::comm::Communicator;
use hpc_kernels::hpl::{scaled_residual, RESIDUAL_THRESHOLD};
use hpc_kernels::matrix::Matrix;
use std::time::Instant;

/// Configuration of a distributed HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedHplConfig {
    /// Problem order N.
    pub n: usize,
    /// Column block width NB.
    pub block_size: usize,
    /// Seed for the problem generator.
    pub seed: u64,
}

impl DistributedHplConfig {
    /// A config with defaults matching the shared-memory driver.
    pub fn new(n: usize) -> Self {
        DistributedHplConfig { n, block_size: 32, seed: 42 }
    }
}

/// Per-rank result of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedHplResult {
    /// The solution vector (replicated on every rank).
    pub x: Vec<f64>,
    /// Wall seconds for factor+solve on this rank.
    pub seconds: f64,
    /// Achieved GFLOPS per the official formula (rank-local timing).
    pub gflops: f64,
    /// HPL's scaled residual (validated against the full matrix).
    pub scaled_residual: f64,
    /// Whether the residual test passed.
    pub passed: bool,
}

/// Ownership map for the `1×Q` column block-cyclic distribution.
#[derive(Debug, Clone, Copy)]
struct Layout {
    n: usize,
    nb: usize,
    q: usize,
}

impl Layout {
    fn owner_of_block(&self, block: usize) -> usize {
        block % self.q
    }

    fn owner_of_col(&self, j: usize) -> usize {
        self.owner_of_block(j / self.nb)
    }

    /// Local column index of global column `j` on its owner.
    fn local_col(&self, j: usize) -> usize {
        let block = j / self.nb;
        (block / self.q) * self.nb + j % self.nb
    }

    /// Number of local columns on `rank`.
    #[cfg(test)]
    fn local_cols(&self, rank: usize) -> usize {
        (0..self.n).filter(|&j| self.owner_of_col(j) == rank).count()
    }

    /// Global column indices owned by `rank`, ascending.
    fn global_cols(&self, rank: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.owner_of_col(j) == rank).collect()
    }
}

/// Runs distributed HPL on this rank. Call from within [`crate::World::run`]
/// with the same config on every rank.
pub fn run(comm: &mut Communicator, config: DistributedHplConfig) -> DistributedHplResult {
    assert!(config.n > 0, "problem order must be positive");
    assert!(config.block_size > 0, "block size must be positive");
    let layout = Layout { n: config.n, nb: config.block_size, q: comm.size() };
    let n = config.n;

    // Generate the full problem deterministically on every rank (same seed
    // ⇒ same matrix), then keep only the local columns. The reference HPL
    // generates per-process too (its generator is replicated by design).
    let full = Matrix::random(n, n, config.seed);
    let b: Vec<f64> =
        Matrix::random(n, 1, config.seed.wrapping_add(0x9E37_79B9)).as_slice().to_vec();

    let my_cols = layout.global_cols(comm.rank());
    let mut local = vec![0.0f64; my_cols.len() * n];
    for (lc, &j) in my_cols.iter().enumerate() {
        local[lc * n..(lc + 1) * n].copy_from_slice(full.col(j));
    }

    let start = Instant::now();
    let piv = factor(comm, layout, &mut local);
    let x = solve(comm, layout, &local, &piv, &b);
    let seconds = start.elapsed().as_secs_f64().max(1e-9);

    // Validation against the original full matrix (every rank can do it —
    // the problem is replicated by construction).
    let scaled = scaled_residual(&full, &x, &b);
    let nf = n as f64;
    let flops = (2.0 / 3.0) * nf * nf * nf + 2.0 * nf * nf;
    DistributedHplResult {
        x,
        seconds,
        gflops: flops / seconds / 1e9,
        scaled_residual: scaled,
        passed: scaled <= RESIDUAL_THRESHOLD,
    }
}

/// Distributed right-looking LU. Returns the full pivot vector (replicated).
fn factor(comm: &mut Communicator, layout: Layout, local: &mut [f64]) -> Vec<usize> {
    let (n, nb, _q) = (layout.n, layout.nb, layout.q);
    let mut piv = vec![0usize; n];

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        let block = k0 / nb;
        let owner = layout.owner_of_block(block);
        let generation = block as u64;

        // --- Panel factorization on the owner (columns are fully local). ---
        let (panel, block_piv) = if comm.rank() == owner {
            let lc0 = layout.local_col(k0);
            let (p, bp) = factor_panel(local, n, lc0, k0, kb);
            (Some(p), Some(bp))
        } else {
            (None, None)
        };

        // --- Broadcast pivots and the factored panel. ---
        let block_piv = comm.broadcast_usize(owner, generation, block_piv.as_deref());
        piv[k0..k0 + kb].copy_from_slice(&block_piv);
        let panel = comm.broadcast_f64(owner, generation, panel.as_deref());
        let ld = n - k0;
        debug_assert_eq!(panel.len(), ld * kb);

        // --- Apply the row interchanges to every non-panel local column. ---
        let my_cols = layout.global_cols(comm.rank());
        for (lc, &j) in my_cols.iter().enumerate() {
            if j >= k0 && j < k0 + kb && comm.rank() == owner {
                continue; // the owner's panel columns are already swapped
            }
            let col = &mut local[lc * n..(lc + 1) * n];
            for (k, &p) in block_piv.iter().enumerate() {
                col.swap(k0 + k, p);
            }
        }

        // --- Distributed trailing update on local columns right of panel. ---
        for (lc, &j) in my_cols.iter().enumerate() {
            if j < k0 + kb {
                continue;
            }
            let col = &mut local[lc * n..(lc + 1) * n];
            // y = L11⁻¹ · A12[:, j]
            for k in 0..kb {
                let y_k = col[k0 + k];
                if y_k == 0.0 {
                    continue;
                }
                let lcol = &panel[k * ld..(k + 1) * ld];
                for i in k + 1..kb {
                    col[k0 + i] -= lcol[i] * y_k;
                }
            }
            // A22[:, j] -= L21 · y
            for k in 0..kb {
                let y_k = col[k0 + k];
                if y_k == 0.0 {
                    continue;
                }
                let lcol = &panel[k * ld + kb..(k + 1) * ld];
                let dst = &mut col[k0 + kb..];
                for (d, l) in dst.iter_mut().zip(lcol) {
                    *d -= l * y_k;
                }
            }
        }

        k0 += kb;
    }
    piv
}

/// Factors the panel starting at local column `lc0` (global `k0`, width
/// `kb`) in place; returns the packed panel (ld = n−k0, column-major) and
/// the global pivot rows.
fn factor_panel(
    local: &mut [f64],
    n: usize,
    lc0: usize,
    k0: usize,
    kb: usize,
) -> (Vec<f64>, Vec<usize>) {
    let mut piv = vec![0usize; kb];
    for k in 0..kb {
        let gk = k0 + k;
        // Pivot search in panel column k, rows gk..n (fully local).
        let col = &local[(lc0 + k) * n..(lc0 + k + 1) * n];
        let mut p = gk;
        let mut max = col[gk].abs();
        for (i, v) in col.iter().enumerate().skip(gk + 1) {
            if v.abs() > max {
                max = v.abs();
                p = i;
            }
        }
        assert!(max > 0.0, "distributed HPL hit a singular panel at step {gk}");
        piv[k] = p;
        // Swap rows gk and p across the panel's columns.
        if p != gk {
            for c in 0..kb {
                local.swap((lc0 + c) * n + gk, (lc0 + c) * n + p);
            }
        }
        // Scale multipliers and update the rest of the panel.
        let pivot = local[(lc0 + k) * n + gk];
        for i in gk + 1..n {
            local[(lc0 + k) * n + i] /= pivot;
        }
        for c in k + 1..kb {
            let ukc = local[(lc0 + c) * n + gk];
            if ukc == 0.0 {
                continue;
            }
            for i in gk + 1..n {
                let lik = local[(lc0 + k) * n + i];
                local[(lc0 + c) * n + i] -= lik * ukc;
            }
        }
    }
    // Pack the panel: rows k0..n of each panel column.
    let ld = n - k0;
    let mut panel = vec![0.0f64; ld * kb];
    for c in 0..kb {
        panel[c * ld..(c + 1) * ld].copy_from_slice(&local[(lc0 + c) * n + k0..(lc0 + c + 1) * n]);
    }
    (panel, piv)
}

/// Distributed triangular solves. `b` is replicated; returns the replicated
/// solution.
fn solve(
    comm: &mut Communicator,
    layout: Layout,
    local: &[f64],
    piv: &[usize],
    b: &[f64],
) -> Vec<f64> {
    let (n, nb) = (layout.n, layout.nb);
    let mut y = b.to_vec();
    // Apply pivots (replicated knowledge).
    for (k, &p) in piv.iter().enumerate() {
        y.swap(k, p);
    }

    // Forward substitution, block by block: the owning rank solves its
    // diagonal block and broadcasts (y_block, delta for the rows below).
    let blocks = n.div_ceil(nb);
    for block in 0..blocks {
        let k0 = block * nb;
        let kb = nb.min(n - k0);
        let owner = layout.owner_of_block(block);
        let generation = (blocks + block) as u64; // distinct from factor tags
        let msg = if comm.rank() == owner {
            let lc0 = layout.local_col(k0);
            // Solve the unit-lower diagonal block.
            let mut yb = y[k0..k0 + kb].to_vec();
            for k in 0..kb {
                let yk = yb[k];
                if yk == 0.0 {
                    continue;
                }
                let col = &local[(lc0 + k) * n..(lc0 + k + 1) * n];
                for i in k + 1..kb {
                    yb[i] -= col[k0 + i] * yk;
                }
            }
            // Contribution to the rows below: delta = L21 · yb.
            let mut delta = vec![0.0f64; n - k0 - kb];
            for k in 0..kb {
                let yk = yb[k];
                if yk == 0.0 {
                    continue;
                }
                let col = &local[(lc0 + k) * n..(lc0 + k + 1) * n];
                for (d, &l) in delta.iter_mut().zip(&col[k0 + kb..]) {
                    *d += l * yk;
                }
            }
            let mut msg = yb;
            msg.extend_from_slice(&delta);
            Some(msg)
        } else {
            None
        };
        let msg = comm.broadcast_f64(owner, generation, msg.as_deref());
        y[k0..k0 + kb].copy_from_slice(&msg[..kb]);
        for (yi, d) in y[k0 + kb..].iter_mut().zip(&msg[kb..]) {
            *yi -= d;
        }
    }

    // Back substitution, blocks in reverse.
    let mut x = y;
    for block in (0..blocks).rev() {
        let k0 = block * nb;
        let kb = nb.min(n - k0);
        let owner = layout.owner_of_block(block);
        let generation = (2 * blocks + block) as u64;
        let msg = if comm.rank() == owner {
            let lc0 = layout.local_col(k0);
            // Solve the upper diagonal block.
            let mut xb = x[k0..k0 + kb].to_vec();
            for k in (0..kb).rev() {
                let col = &local[(lc0 + k) * n..(lc0 + k + 1) * n];
                xb[k] /= col[k0 + k];
                let xk = xb[k];
                if xk == 0.0 {
                    continue;
                }
                for i in 0..k {
                    xb[i] -= col[k0 + i] * xk;
                }
            }
            // Contribution to the rows above: delta = U01 · xb.
            let mut delta = vec![0.0f64; k0];
            for k in 0..kb {
                let xk = xb[k];
                if xk == 0.0 {
                    continue;
                }
                let col = &local[(lc0 + k) * n..(lc0 + k + 1) * n];
                for (d, &u) in delta.iter_mut().zip(&col[..k0]) {
                    *d += u * xk;
                }
            }
            let mut msg = xb;
            msg.extend_from_slice(&delta);
            Some(msg)
        } else {
            None
        };
        let msg = comm.broadcast_f64(owner, generation, msg.as_deref());
        x[k0..k0 + kb].copy_from_slice(&msg[..kb]);
        for (xi, d) in x[..k0].iter_mut().zip(&msg[kb..]) {
            *xi -= d;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use hpc_kernels::lu;
    use proptest::prelude::*;

    fn run_world(n: usize, nb: usize, ranks: usize, seed: u64) -> Vec<DistributedHplResult> {
        let config = DistributedHplConfig { n, block_size: nb, seed };
        World::run(ranks, move |comm| run(comm, config))
    }

    #[test]
    fn single_rank_matches_shared_memory_solver() {
        let n = 64;
        let config = DistributedHplConfig::new(n);
        let out = run_world(n, config.block_size, 1, config.seed);
        assert!(out[0].passed, "residual {}", out[0].scaled_residual);

        // Shared-memory oracle on the same problem.
        let a = Matrix::random(n, n, config.seed);
        let b: Vec<f64> =
            Matrix::random(n, 1, config.seed.wrapping_add(0x9E37_79B9)).as_slice().to_vec();
        let x_ref = lu::solve(a, &b, 32).expect("non-singular");
        for (xd, xr) in out[0].x.iter().zip(&x_ref) {
            assert!((xd - xr).abs() < 1e-8, "{xd} vs {xr}");
        }
    }

    #[test]
    fn multi_rank_solution_is_replicated_and_valid() {
        for ranks in [2usize, 3, 4] {
            let out = run_world(96, 16, ranks, 7);
            for r in &out {
                assert!(r.passed, "ranks={ranks}: residual {}", r.scaled_residual);
                assert_eq!(r.x, out[0].x, "solution must be replicated");
                assert!(r.gflops > 0.0);
            }
        }
    }

    #[test]
    fn block_size_not_dividing_n() {
        // n=70, nb=16 leaves a 6-wide tail block.
        let out = run_world(70, 16, 3, 11);
        assert!(out[0].passed, "residual {}", out[0].scaled_residual);
    }

    #[test]
    fn more_ranks_than_blocks_is_fine() {
        // 32 columns in 2 blocks across 5 ranks: three ranks own nothing.
        let out = run_world(32, 16, 5, 3);
        assert!(out[0].passed, "residual {}", out[0].scaled_residual);
    }

    #[test]
    fn distributed_matches_shared_for_various_ranks() {
        let n = 48;
        let a = Matrix::random(n, n, 21);
        let b: Vec<f64> = Matrix::random(n, 1, 21u64.wrapping_add(0x9E37_79B9)).as_slice().to_vec();
        let x_ref = lu::solve(a, &b, 8).expect("non-singular");
        for ranks in [1usize, 2, 4] {
            let out = run_world(n, 8, ranks, 21);
            for (xd, xr) in out[0].x.iter().zip(&x_ref) {
                assert!((xd - xr).abs() < 1e-8, "ranks={ranks}");
            }
        }
    }

    #[test]
    fn layout_round_trips() {
        let l = Layout { n: 100, nb: 8, q: 3 };
        let mut seen = [false; 100];
        for rank in 0..3 {
            for &j in &l.global_cols(rank) {
                assert_eq!(l.owner_of_col(j), rank);
                assert!(!seen[j], "column {j} owned twice");
                seen[j] = true;
            }
            assert_eq!(l.global_cols(rank).len(), l.local_cols(rank));
        }
        assert!(seen.iter().all(|&s| s), "every column owned");
        // Local indices are dense and ordered.
        let cols = l.global_cols(1);
        for (expected_local, &j) in cols.iter().enumerate() {
            assert_eq!(l.local_col(j), expected_local);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Distributed HPL passes its residual test for arbitrary shapes.
        #[test]
        fn prop_distributed_hpl_valid(
            n in 8usize..72,
            nb in 4usize..24,
            ranks in 1usize..5,
            seed in 0u64..50,
        ) {
            let out = run_world(n, nb, ranks, seed);
            for r in &out {
                prop_assert!(r.passed, "n={n} nb={nb} ranks={ranks}: {}", r.scaled_residual);
            }
        }
    }
}
