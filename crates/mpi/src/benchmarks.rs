//! Distributed STREAM and I/O benchmarks over the mini-MPI runtime.
//!
//! The paper runs STREAM and IOzone as MPI jobs: every rank works on its
//! own slice and the job reports the *aggregate* rate. These drivers do the
//! same — each rank executes the real kernel from `hpc-kernels`, then the
//! per-rank rates are combined with an `allreduce`, and (as in the MPI
//! versions of both benchmarks) a barrier brackets the timed region so the
//! aggregate is honest about stragglers.

use crate::comm::Communicator;
use hpc_kernels::iobench::{self, IoBenchConfig, IoOperation};
use hpc_kernels::stream::{self, StreamConfig};
use std::time::Instant;

/// Result of a distributed STREAM run (identical on every rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedStreamResult {
    /// Sum of per-rank best Triad bandwidths, MB/s.
    pub aggregate_triad_mbps: f64,
    /// The slowest rank's wall time for the whole kernel set, seconds.
    pub max_seconds: f64,
    /// This rank's own Triad bandwidth, MB/s.
    pub local_triad_mbps: f64,
}

/// Runs STREAM on every rank and reduces the Triad bandwidths.
pub fn stream(comm: &mut Communicator, config: StreamConfig) -> DistributedStreamResult {
    comm.barrier(100);
    let start = Instant::now();
    let local = stream::run(config);
    let local_mbps = local.triad_mbps();
    let elapsed = start.elapsed().as_secs_f64();

    let sums = comm.allreduce_sum(&[local_mbps]);
    // Max over ranks via max-loc on the elapsed time.
    let (max_seconds, _, _) = comm.allreduce_max_loc(elapsed, comm.rank());
    comm.barrier(101);
    DistributedStreamResult {
        aggregate_triad_mbps: sums[0],
        max_seconds,
        local_triad_mbps: local_mbps,
    }
}

/// Result of a distributed write test (identical on every rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedIoResult {
    /// Aggregate write throughput: total bytes / slowest rank's time, MB/s.
    pub aggregate_write_mbps: f64,
    /// The slowest rank's write time, seconds.
    pub max_seconds: f64,
    /// This rank's own write throughput, MB/s.
    pub local_write_mbps: f64,
}

/// Runs the IOzone-style write test on every rank concurrently — real
/// filesystem contention — and reports the aggregate the way the MPI
/// version of IOzone does: total bytes over the slowest writer's time.
pub fn io_write(comm: &mut Communicator, per_rank_bytes: u64) -> DistributedIoResult {
    let config = IoBenchConfig {
        file_size: per_rank_bytes,
        record_size: (64 << 10).min(per_rank_bytes as usize),
        dir: None,
        operations: vec![IoOperation::Write],
        fsync: false,
    };
    comm.barrier(102);
    let result = iobench::run(&config).expect("scratch directory is writable");
    let timing = result.timing(IoOperation::Write).expect("write was configured");
    let (max_seconds, _, _) = comm.allreduce_max_loc(timing.seconds, comm.rank());
    comm.barrier(103);

    let total_bytes = per_rank_bytes as f64 * comm.size() as f64;
    DistributedIoResult {
        aggregate_write_mbps: total_bytes / max_seconds / 1e6,
        max_seconds,
        local_write_mbps: timing.bytes_per_sec / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn distributed_stream_aggregates_across_ranks() {
        let out = World::run(3, |comm| stream(comm, StreamConfig::small()));
        // Every rank reports the same aggregate.
        for r in &out {
            assert_eq!(r.aggregate_triad_mbps, out[0].aggregate_triad_mbps);
            assert!(r.max_seconds > 0.0);
            assert!(r.local_triad_mbps > 0.0);
        }
        // The aggregate is the sum of the locals.
        let sum: f64 = out.iter().map(|r| r.local_triad_mbps).sum();
        assert!((out[0].aggregate_triad_mbps - sum).abs() < 1e-6 * sum);
        // And the max time is at least every local time.
        assert!(out.iter().all(|r| r.max_seconds >= 0.0));
    }

    #[test]
    fn distributed_io_reports_aggregate_over_slowest() {
        let per_rank = 256u64 << 10;
        let out = World::run(2, move |comm| io_write(comm, per_rank));
        for r in &out {
            assert_eq!(r.aggregate_write_mbps, out[0].aggregate_write_mbps);
            assert!(r.aggregate_write_mbps > 0.0);
            assert!(r.local_write_mbps > 0.0);
        }
        // Aggregate uses total bytes over max time, so it can't exceed the
        // sum of local rates (stragglers only drag it down).
        let sum: f64 = out.iter().map(|r| r.local_write_mbps).sum();
        assert!(out[0].aggregate_write_mbps <= sum * 1.001);
    }

    #[test]
    fn single_rank_distributed_equals_local() {
        let out = World::run(1, |comm| stream(comm, StreamConfig::small()));
        assert!((out[0].aggregate_triad_mbps - out[0].local_triad_mbps).abs() < 1e-9);
    }
}
