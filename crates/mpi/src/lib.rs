//! # mini-mpi — a thread-backed message-passing runtime
//!
//! The paper's benchmarks are MPI programs ("Energy Efficiency of HPL …
//! Number of MPI Processes"). This crate provides the message-passing
//! substrate so the suite can run *as* a distributed program: an MPI-like
//! subset (point-to-point send/recv, barrier, broadcast, reductions,
//! gather) where ranks are threads and the fabric is crossbeam channels.
//!
//! On top of it, two distributed dense solvers implement exactly what the
//! paper describes for HPL (§IV-A): "The data is distributed on a
//! two-dimensional grid using a cyclic scheme for better load balance and
//! scalability."
//!
//! * [`hpl`] — the `1×Q` process grid (column block-cyclic): every pivot
//!   search is local, while panel broadcast and the distributed trailing
//!   update are real message traffic.
//! * [`hpl2d`] — the general `P×Q` grid with block-cyclic distribution in
//!   *both* dimensions: max-loc pivot reductions down process columns,
//!   pairwise row interchanges between process rows, panel/U₁₂ broadcasts
//!   along rows/columns, and local GEMM updates — HPL's full communication
//!   pattern.
//!
//! [`benchmarks`] adds the distributed STREAM and I/O drivers.
//!
//! ```
//! use mini_mpi::World;
//!
//! let sums = World::run(4, |comm| {
//!     let mine = (comm.rank() + 1) as f64;
//!     comm.allreduce_sum(&[mine])[0]
//! });
//! assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod comm;
pub mod hpl;
pub mod hpl2d;

pub use comm::{Communicator, World};
